"""Scheduler abstraction.

In the population-protocol model the order of interactions is chosen by an
adversarial *scheduler* constrained only by a fairness condition.  Engine
schedulers propose ordered agent pairs; the simulator applies the protocol's
rule to each proposal.

Schedulers may inspect the current configuration (the proofs' adversaries
do) but must not mutate it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.errors import SchedulerError


class Scheduler(ABC):
    """Chooses which ordered pair of agents interacts next.

    Parameters
    ----------
    population:
        The population being scheduled; must have at least two agents.
    seed:
        Seed for the scheduler's private random source (unused by fully
        deterministic schedulers but accepted uniformly so harnesses can
        treat all schedulers alike).
    """

    #: Human-readable scheduler name.
    display_name: str = "scheduler"

    #: Whether every infinite schedule this class produces is weakly fair.
    weakly_fair: bool = False

    #: Whether infinite schedules are globally fair (with probability 1 for
    #: randomized schedulers, per the paper's reading of global fairness).
    globally_fair: bool = False

    #: Whether :meth:`next_pair` reads its ``config`` argument.  Schedulers
    #: that declare ``False`` promise to ignore it entirely, which lets the
    #: fast backend (:mod:`repro.engine.fast`) sample pairs in batches
    #: without materializing intermediate configurations; such schedulers
    #: may be handed ``config=None``.  The conservative default is ``True``.
    inspects_configuration: bool = True

    #: Whether every proposal is an independent uniform draw over ordered
    #: pairs of distinct agents (the model's canonical randomized
    #: scheduler).  Count-based backends (:mod:`repro.engine.counts`) rely
    #: on this to sample interacting *state* pairs directly from the
    #: configuration's multiset, without agent identities.  Schedulers
    #: that bias, order or restrict pairs must leave it ``False``.
    uniform_pairs: bool = False

    def __init__(self, population: Population, seed: int | None = None) -> None:
        if population.size < 2:
            raise SchedulerError(
                "scheduling needs at least two agents, got "
                f"population of size {population.size}"
            )
        self.population = population
        self.seed = seed
        self._rng = random.Random(seed)

    @abstractmethod
    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        """Return the next ordered pair ``(initiator, responder)``."""

    def next_pairs(
        self, config: Configuration | None, count: int
    ) -> list[tuple[AgentId, AgentId]]:
        """Return the next ``count`` ordered pairs as a batch.

        The batch must be *stream-identical* to ``count`` successive
        :meth:`next_pair` calls: same pairs, same consumption of the
        scheduler's random source.  The default implementation simply
        loops; randomized schedulers may override it to shave per-call
        overhead, provided they keep the random stream identical.

        Only schedulers with ``inspects_configuration = False`` are batched
        by the engine; the engine then passes ``config=None`` so that an
        incorrectly declared scheduler fails loudly instead of silently
        reading a stale configuration.
        """
        next_pair = self.next_pair
        return [next_pair(config) for _ in range(count)]

    def reset(self) -> None:
        """Restore any internal progress state (not the random seed)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.display_name!r}>"


class FairnessMonitor:
    """Tracks which unordered agent pairs have interacted.

    Used in tests to confirm that schedulers deliver the fairness they
    advertise, and by adversarial schedulers to honour weak-fairness
    deadlines.
    """

    def __init__(self, population: Population) -> None:
        self.population = population
        self._pending: set[frozenset[AgentId]] = {
            frozenset(p) for p in population.unordered_pairs()
        }
        self._all: frozenset[frozenset[AgentId]] = frozenset(self._pending)
        self.rounds_completed = 0

    def observe(self, initiator: AgentId, responder: AgentId) -> None:
        """Record an interaction; completes a round when all pairs met."""
        self._pending.discard(frozenset((initiator, responder)))
        if not self._pending:
            self.rounds_completed += 1
            self._pending = set(self._all)

    @property
    def pending_pairs(self) -> set[frozenset[AgentId]]:
        """Unordered pairs that have not met in the current round."""
        return set(self._pending)

    def round_complete(self) -> bool:
        """Whether the current round has just been reset (all pairs met)."""
        return not self._pending or self._pending == set(self._all)
