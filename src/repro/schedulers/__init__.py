"""Schedulers: fair, randomized and adversarial interaction orders."""

from repro.schedulers.adversarial import (
    EventuallyFairScheduler,
    FixedSequenceScheduler,
    HomonymPreservingScheduler,
)
from repro.schedulers.base import FairnessMonitor, Scheduler
from repro.schedulers.graph_restricted import (
    GraphRestrictedScheduler,
    complete_edges,
    path_edges,
    star_edges,
    validate_edges,
)
from repro.schedulers.matching import MatchingScheduler, round_robin_matchings
from repro.schedulers.random_matching import RandomMatchingScheduler
from repro.schedulers.random_pair import (
    LeaderBiasedScheduler,
    RandomPairScheduler,
)
from repro.schedulers.round_robin import (
    InterleavedRoundRobinScheduler,
    RoundRobinScheduler,
)

__all__ = [
    "EventuallyFairScheduler",
    "FairnessMonitor",
    "FixedSequenceScheduler",
    "GraphRestrictedScheduler",
    "HomonymPreservingScheduler",
    "InterleavedRoundRobinScheduler",
    "LeaderBiasedScheduler",
    "MatchingScheduler",
    "RandomMatchingScheduler",
    "RandomPairScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "complete_edges",
    "path_edges",
    "round_robin_matchings",
    "star_edges",
    "validate_edges",
]
