"""The matching-phase scheduler: Proposition 1's adversary.

Proposition 1 proves that symmetric naming is impossible under weak fairness
without a leader.  Its proof constructs a weakly fair execution organised in
*phases*: in each phase the agents are matched in disjoint pairs and each
matched pair interacts; successive phases use different matchings so that
eventually every agent has interacted with every other.  Because symmetric
rules map equal states to equal states, an even population started uniformly
stays perfectly symmetric forever.

The phase structure is a 1-factorization of the complete graph ``K_n``
(for even ``n``), computed with the classic round-robin-tournament ("circle
method") construction: fix agent ``n - 1``, rotate the rest.  For odd ``n``
the standard bye extension is used - each phase is then a near-perfect
matching and one agent sits out, which still visits every pair once per
``n`` phases (the proof only needs even populations, but the scheduler
remains a valid weakly fair scheduler for any size).
"""

from __future__ import annotations

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.schedulers.base import Scheduler


def round_robin_matchings(n: int) -> list[list[tuple[int, int]]]:
    """1-factorization of ``K_n`` via the circle method.

    For even ``n`` returns ``n - 1`` perfect matchings that partition all
    pairs.  For odd ``n`` returns ``n`` near-perfect matchings (one agent
    rests per phase) that also cover every pair exactly once.
    """
    if n < 2:
        return []
    players = list(range(n))
    bye = None
    if n % 2 == 1:
        players.append(-1)  # dummy opponent marks the resting agent
        bye = -1
    m = len(players)
    rounds: list[list[tuple[int, int]]] = []
    circle = players[:-1]
    fixed = players[-1]
    for _ in range(m - 1):
        phase: list[tuple[int, int]] = []
        lineup = circle + [fixed]
        for i in range(m // 2):
            a, b = lineup[i], lineup[m - 1 - i]
            if bye is not None and (a == bye or b == bye):
                continue
            phase.append((min(a, b), max(a, b)))
        rounds.append(phase)
        circle = circle[-1:] + circle[:-1]
    return rounds


class MatchingScheduler(Scheduler):
    """Schedules interactions phase by phase along a 1-factorization.

    Within a phase the matched pairs interact one after another (the model
    serializes simultaneous interactions, paper Section 2); across phases
    the matchings rotate, so every pair interacts once per full rotation:
    the schedule is weakly fair.

    Against any *symmetric* protocol on an even, uniformly initialized,
    leaderless population this scheduler preserves full symmetry forever,
    realizing the impossibility of Proposition 1.
    """

    display_name = "matching phases (Prop. 1 adversary)"
    weakly_fair = True
    globally_fair = False
    inspects_configuration = False

    def __init__(self, population: Population, seed: int | None = None) -> None:
        super().__init__(population, seed)
        self._phases = round_robin_matchings(population.size)
        self._phase_index = 0
        self._pair_index = 0
        self._orient_flip = False

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        phase = self._phases[self._phase_index]
        while not phase:  # defensive: odd-size bye rounds never empty here
            self._advance_phase()
            phase = self._phases[self._phase_index]
        x, y = phase[self._pair_index]
        self._pair_index += 1
        if self._pair_index >= len(phase):
            self._pair_index = 0
            self._advance_phase()
        # Alternate orientations across rotations so that, even for
        # asymmetric protocols, both ordered versions of each pair occur.
        return (y, x) if self._orient_flip else (x, y)

    def _advance_phase(self) -> None:
        self._phase_index += 1
        if self._phase_index >= len(self._phases):
            self._phase_index = 0
            self._orient_flip = not self._orient_flip

    def reset(self) -> None:
        self._phase_index = 0
        self._pair_index = 0
        self._orient_flip = False

    @property
    def phases(self) -> list[list[tuple[AgentId, AgentId]]]:
        """The matchings, one list of disjoint pairs per phase."""
        return [list(phase) for phase in self._phases]
