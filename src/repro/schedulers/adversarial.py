"""Adversarial schedulers.

These schedulers remain weakly fair (every pair within a bounded window)
while actively working against convergence, in the spirit of the existential
adversaries the paper's negative proofs construct.  They are used to
stress-test the weak-fairness protocols (Props. 12, 14, 16): a protocol
correct under weak fairness must converge under *every* such scheduler.
"""

from __future__ import annotations

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.schedulers.base import FairnessMonitor, Scheduler
from repro.engine.protocol import PopulationProtocol


class HomonymPreservingScheduler(Scheduler):
    """A weakly fair scheduler that postpones symmetry-breaking meetings.

    Strategy: keep a round-based fairness obligation (every unordered pair
    must meet once per round).  Within a round, prefer pending pairs whose
    interaction is *null* in the current configuration; only when no null
    pending pair remains does it concede a state-changing meeting, choosing
    one that keeps as many homonyms as possible.

    Because each round schedules every pair exactly once, every infinite
    schedule is weakly fair; yet the adversary delays progress maximally
    within that constraint.
    """

    display_name = "homonym-preserving adversary"
    weakly_fair = True
    globally_fair = False

    def __init__(
        self,
        population: Population,
        protocol: PopulationProtocol,
        seed: int | None = None,
    ) -> None:
        super().__init__(population, seed)
        self._protocol = protocol
        self._monitor = FairnessMonitor(population)

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        pending = sorted(
            (tuple(sorted(pair)) for pair in self._monitor.pending_pairs),
        )
        best: tuple[int, int, tuple[AgentId, AgentId]] | None = None
        for x, y in pending:
            for initiator, responder in ((x, y), (y, x)):
                p = config.state_of(initiator)
                q = config.state_of(responder)
                p2, q2 = self._protocol.transition(p, q)
                if (p2, q2) == (p, q):
                    self._monitor.observe(initiator, responder)
                    return initiator, responder
                after = config.apply(initiator, responder, (p2, q2))
                score = (
                    len(after.homonym_agents()),
                    -len(set(after.mobile_states)),
                )
                if best is None or score > best[:2]:
                    best = (*score, (initiator, responder))
        assert best is not None  # pending is never empty within a round
        initiator, responder = best[2]
        self._monitor.observe(initiator, responder)
        return initiator, responder

    def reset(self) -> None:
        self._monitor = FairnessMonitor(self.population)


class EventuallyFairScheduler(Scheduler):
    """An adversarial prefix followed by a fair suffix.

    Self-stabilizing protocols must converge from *any* configuration;
    equivalently, convergence must survive an arbitrary finite prefix of
    adversarial scheduling.  This scheduler drives an arbitrary (possibly
    unfair) ``prefix`` scheduler for ``prefix_length`` interactions and then
    hands over to ``suffix`` - fairness of the infinite schedule is that of
    the suffix, as fairness is a property of infinite behaviours only.
    """

    display_name = "adversarial prefix + fair suffix"

    def __init__(
        self,
        population: Population,
        prefix: Scheduler,
        suffix: Scheduler,
        prefix_length: int,
        seed: int | None = None,
    ) -> None:
        super().__init__(population, seed)
        if prefix_length < 0:
            raise ValueError(f"prefix_length must be >= 0, got {prefix_length}")
        self._prefix = prefix
        self._suffix = suffix
        self._prefix_length = prefix_length
        self._served = 0
        self.weakly_fair = suffix.weakly_fair
        self.globally_fair = suffix.globally_fair

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        if self._served < self._prefix_length:
            self._served += 1
            return self._prefix.next_pair(config)
        return self._suffix.next_pair(config)

    def reset(self) -> None:
        self._served = 0
        self._prefix.reset()
        self._suffix.reset()


class FixedSequenceScheduler(Scheduler):
    """Replays an explicit finite sequence of ordered pairs, then repeats.

    Used by tests to realize the exact executions the paper's proofs build
    (e.g. the reduced executions of Section 3.1).  Fairness depends on the
    sequence; the constructor computes whether one cycle covers all pairs.
    """

    display_name = "fixed sequence"
    inspects_configuration = False

    def __init__(
        self,
        population: Population,
        sequence: list[tuple[AgentId, AgentId]],
        seed: int | None = None,
    ) -> None:
        super().__init__(population, seed)
        if not sequence:
            raise ValueError("sequence must contain at least one pair")
        for x, y in sequence:
            population.validate_agent(x)
            population.validate_agent(y)
            if x == y:
                raise ValueError(f"agent {x} cannot interact with itself")
        self._sequence = list(sequence)
        self._position = 0
        covered = {frozenset(p) for p in sequence}
        required = {frozenset(p) for p in population.unordered_pairs()}
        self.weakly_fair = covered >= required

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        pair = self._sequence[self._position]
        self._position = (self._position + 1) % len(self._sequence)
        return pair

    def reset(self) -> None:
        self._position = 0
