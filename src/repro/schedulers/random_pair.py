"""Uniform-random pair scheduler.

Picks each ordered pair of distinct agents uniformly at random.  This is
the widely-studied randomized scheduler (paper's reference [8]) and yields
globally fair executions with probability 1 (reference [39]), which is the
paper's operational reading of global fairness.
"""

from __future__ import annotations

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.schedulers.base import Scheduler


class RandomPairScheduler(Scheduler):
    """Uniform random ordered pairs; globally fair with probability 1."""

    display_name = "uniform random pairs"
    weakly_fair = True  # with probability 1
    globally_fair = True  # with probability 1
    inspects_configuration = False
    uniform_pairs = True

    def __init__(self, population: Population, seed: int | None = None) -> None:
        super().__init__(population, seed)
        # The agent tuple is resolved lazily: counts-native backends
        # (leap windows entered via the fluid tier, populations of
        # 10^9+) only read the scheduler's seed and fairness flags, and
        # the O(N) tuple would dwarf memory at those sizes.
        self._agents_cache: tuple[AgentId, ...] | None = None

    @property
    def _agents(self) -> tuple[AgentId, ...]:
        if self._agents_cache is None:
            self._agents_cache = self.population.agents
        return self._agents_cache

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        initiator, responder = self._rng.sample(self._agents, 2)
        return initiator, responder

    def next_pairs(
        self, config: Configuration | None, count: int
    ) -> list[tuple[AgentId, AgentId]]:
        """Batched sampling with the same random stream as ``next_pair``.

        For populations larger than ``random.sample``'s pool-swap cutoff
        (21 elements at ``k = 2``) the stdlib draws two rejection-sampled
        indices via ``getrandbits``; that arithmetic is inlined here to
        skip two method-call layers per pair while consuming the Mersenne
        stream bit-for-bit identically (property-tested against
        ``next_pair``).  Small populations just loop the scalar path.
        """
        agents = self._agents
        n = len(agents)
        if n <= 21:  # random.sample uses its pool-swap branch here
            sample = self._rng.sample
            return [tuple(sample(agents, 2)) for _ in range(count)]
        getrandbits = self._rng.getrandbits
        k = n.bit_length()
        pairs: list[tuple[AgentId, AgentId]] = []
        append = pairs.append
        for _ in range(count):
            i = getrandbits(k)
            while i >= n:
                i = getrandbits(k)
            j = getrandbits(k)
            while j >= n or j == i:
                j = getrandbits(k)
            append((agents[i], agents[j]))
        return pairs


class LeaderBiasedScheduler(Scheduler):
    """Random pairs with a configurable probability of involving the leader.

    The paper's leader-based protocols (Protocols 1-3) make progress only
    in leader interactions; in a uniform-random schedule the leader takes
    part in only ``~2/N`` of meetings.  This scheduler lets experiments
    explore how convergence cost depends on leader availability (e.g. a base
    station polling frequently), while remaining globally fair with
    probability 1 for any bias strictly between 0 and 1.

    Parameters
    ----------
    leader_bias:
        Probability that a scheduled meeting involves the leader.
    """

    display_name = "leader-biased random pairs"
    weakly_fair = True  # with probability 1
    globally_fair = True  # with probability 1
    inspects_configuration = False

    def __init__(
        self,
        population: Population,
        seed: int | None = None,
        leader_bias: float = 0.5,
    ) -> None:
        super().__init__(population, seed)
        if population.leader is None:
            raise ValueError("LeaderBiasedScheduler needs a leader")
        if not 0.0 < leader_bias < 1.0:
            raise ValueError(
                f"leader_bias must be in (0, 1) to stay fair, got {leader_bias}"
            )
        self._leader = population.leader
        self._mobile = population.mobile_agents
        self._bias = leader_bias

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        if len(self._mobile) < 2 or self._rng.random() < self._bias:
            mobile = self._rng.choice(self._mobile)
            if self._rng.random() < 0.5:
                return self._leader, mobile
            return mobile, self._leader
        initiator, responder = self._rng.sample(self._mobile, 2)
        return initiator, responder
