"""Interaction-graph-restricted scheduling.

The paper (like the original population-protocol model it adopts) assumes
*complete* interaction: any two agents may meet.  This module restricts
meetings to the edges of an arbitrary undirected interaction graph, which
makes the completeness assumption testable: Proposition 12's protocol
relies on homonyms eventually meeting, so on a graph where two same-named
agents share no edge the protocol silently fails - naming in the paper's
space bounds genuinely needs the complete graph (cf. the paper's reference
[52] for the graph-general, non-space-optimal setting).

The scheduler remains weakly fair *relative to the graph*: every edge is
scheduled infinitely often.
"""

from __future__ import annotations

from collections import deque

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.errors import SchedulerError
from repro.schedulers.base import Scheduler

#: An undirected interaction edge.
Edge = tuple[AgentId, AgentId]


def complete_edges(population: Population) -> list[Edge]:
    """The complete interaction graph (the paper's assumption)."""
    return list(population.unordered_pairs())


def path_edges(population: Population) -> list[Edge]:
    """A path graph over the agents, leader (if any) at the end."""
    agents = population.agents
    return [(agents[i], agents[i + 1]) for i in range(len(agents) - 1)]


def star_edges(population: Population, center: AgentId = 0) -> list[Edge]:
    """A star graph: every agent only meets ``center``."""
    population.validate_agent(center)
    return [
        (min(center, a), max(center, a))
        for a in population.agents
        if a != center
    ]


def validate_edges(population: Population, edges: list[Edge]) -> None:
    """Check the edge list names valid, distinct agents and is connected
    (a disconnected population can never be jointly named)."""
    if not edges:
        raise SchedulerError("the interaction graph has no edges")
    adjacency: dict[AgentId, set[AgentId]] = {
        a: set() for a in population.agents
    }
    for x, y in edges:
        population.validate_agent(x)
        population.validate_agent(y)
        if x == y:
            raise SchedulerError(f"self-loop on agent {x}")
        adjacency[x].add(y)
        adjacency[y].add(x)
    # Connectivity via BFS.
    start = population.agents[0]
    reached = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in reached:
                reached.add(neighbour)
                queue.append(neighbour)
    if len(reached) != population.size:
        missing = sorted(set(population.agents) - reached)
        raise SchedulerError(
            f"interaction graph is disconnected; unreachable: {missing}"
        )


class GraphRestrictedScheduler(Scheduler):
    """Uniform-random meetings over the edges of an interaction graph.

    With the complete edge set this is exactly
    :class:`~repro.schedulers.random_pair.RandomPairScheduler`; with
    anything sparser it models geographically constrained mobility and is
    weakly fair *per edge* (every edge meets infinitely often, w.p. 1).
    """

    display_name = "graph-restricted random meetings"
    weakly_fair = True  # per edge, with probability 1
    globally_fair = True  # w.r.t. the restricted transition system
    inspects_configuration = False

    def __init__(
        self,
        population: Population,
        edges: list[Edge],
        seed: int | None = None,
    ) -> None:
        super().__init__(population, seed)
        validate_edges(population, edges)
        self._edges = list(edges)

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        x, y = self._rng.choice(self._edges)
        if self._rng.random() < 0.5:
            return x, y
        return y, x

    @property
    def edges(self) -> list[Edge]:
        """The interaction graph's edges."""
        return list(self._edges)
