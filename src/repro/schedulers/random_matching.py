"""Random-matching scheduler: the randomized twin of Proposition 1's
adversary.

Each phase draws a fresh uniformly random (near-)perfect matching of the
agents and plays its pairs one after another.  Every pair appears in
infinitely many matchings with probability 1, so the schedule is weakly
fair almost surely - yet it is *not* globally fair: matchings synchronize
the population, and against any symmetric protocol started uniformly (even
size, no leader) the population stays perfectly symmetric at every phase
boundary *despite the randomness*.

This demonstrates a subtle reading of Proposition 1: what blocks symmetric
naming under weak fairness is not determinism of the schedule but its
matching (round-synchronous) structure.  Randomized pair selection helps
only because it breaks the rounds, not because it is random.
"""

from __future__ import annotations

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.schedulers.base import Scheduler


class RandomMatchingScheduler(Scheduler):
    """Phases of uniformly random disjoint pairs (synchronous rounds)."""

    display_name = "random matchings (synchronous rounds)"
    weakly_fair = True  # with probability 1
    globally_fair = False
    inspects_configuration = False

    def __init__(self, population: Population, seed: int | None = None) -> None:
        super().__init__(population, seed)
        self._phase: list[tuple[AgentId, AgentId]] = []
        self._position = 0

    def _draw_phase(self) -> None:
        agents = list(self.population.agents)
        self._rng.shuffle(agents)
        if len(agents) % 2 == 1:
            agents.pop()  # one agent rests this round
        self._phase = [
            (agents[i], agents[i + 1]) for i in range(0, len(agents), 2)
        ]
        self._position = 0

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        if self._position >= len(self._phase):
            self._draw_phase()
        pair = self._phase[self._position]
        self._position += 1
        return pair

    def reset(self) -> None:
        self._phase = []
        self._position = 0

    @property
    def phase_length(self) -> int:
        """Interactions per phase (pairs in a matching)."""
        return self.population.size // 2
