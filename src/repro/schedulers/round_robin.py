"""Deterministic weakly fair schedulers.

Weak fairness requires every pair of agents to interact infinitely often.
Cycling through all ordered pairs achieves this by construction, with an
optional per-cycle shuffle that keeps the schedule weakly fair while
removing the fixed phase structure.
"""

from __future__ import annotations

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.schedulers.base import Scheduler


class RoundRobinScheduler(Scheduler):
    """Cycles through every ordered pair of agents, forever.

    Deterministic and weakly fair: each unordered pair interacts (in both
    orders) exactly once per cycle of ``size * (size - 1)`` interactions.

    Parameters
    ----------
    shuffle_each_cycle:
        When true, the pair order is reshuffled (with the scheduler's seeded
        random source) at the start of every cycle; the schedule remains
        weakly fair.
    """

    display_name = "round robin"
    weakly_fair = True
    globally_fair = False
    inspects_configuration = False

    def __init__(
        self,
        population: Population,
        seed: int | None = None,
        shuffle_each_cycle: bool = False,
    ) -> None:
        super().__init__(population, seed)
        self._pairs: list[tuple[AgentId, AgentId]] = list(
            population.ordered_pairs()
        )
        self._shuffle = shuffle_each_cycle
        self._position = 0
        if self._shuffle:
            self._rng.shuffle(self._pairs)

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        pair = self._pairs[self._position]
        self._position += 1
        if self._position >= len(self._pairs):
            self._position = 0
            if self._shuffle:
                self._rng.shuffle(self._pairs)
        return pair

    def reset(self) -> None:
        self._position = 0

    @property
    def cycle_length(self) -> int:
        """Interactions per full cycle over all ordered pairs."""
        return len(self._pairs)


class InterleavedRoundRobinScheduler(Scheduler):
    """Round robin that alternates the initiator/responder orientation of
    each unordered pair between cycles.

    Guarantees every *unordered* pair meets once per cycle (half the cycle
    length of :class:`RoundRobinScheduler`), while both orientations still
    occur infinitely often across cycles - the strongest form of weak
    fairness used in the paper's proofs.
    """

    display_name = "interleaved round robin"
    weakly_fair = True
    globally_fair = False
    inspects_configuration = False

    def __init__(self, population: Population, seed: int | None = None) -> None:
        super().__init__(population, seed)
        self._pairs: list[tuple[AgentId, AgentId]] = list(
            population.unordered_pairs()
        )
        self._position = 0
        self._flip = False

    def next_pair(self, config: Configuration) -> tuple[AgentId, AgentId]:
        x, y = self._pairs[self._position]
        self._position += 1
        if self._position >= len(self._pairs):
            self._position = 0
            self._flip = not self._flip
        return (y, x) if self._flip else (x, y)

    def reset(self) -> None:
        self._position = 0
        self._flip = False
