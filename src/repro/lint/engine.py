"""The lint driver: sweep Table 1 or audit a single protocol.

:func:`run_lint` walks every feasible :class:`~repro.core.spec.ModelSpec`
cell at each requested bound, instantiates the registered protocol via
:func:`repro.core.registry.protocol_for`, and runs every selected rule on
it.  Protocol-scope rules (closure, symmetry, reachability) depend only
on the protocol instance, which the registry shares across several
cells, so their findings are cached per ``(protocol type, display name,
bound, rule)`` and emitted once.  Infeasible cells are checked too: the
registry must *refuse* to build a protocol there (the paper's
impossibility result), and a protocol coming back anyway is an error.

:func:`lint_protocol` audits one protocol outside the sweep - the entry
point for linting hand-built :class:`~repro.engine.protocol.TableProtocol`
instances, e.g. in tests that seed deliberate bugs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.registry import protocol_for
from repro.core.spec import ModelSpec, all_specs, table1_cell
from repro.engine.protocol import PopulationProtocol
from repro.errors import InfeasibleSpecError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.rules import RULES, LintBudgets, LintContext, LintRule

#: Default name-range bounds swept by ``repro lint``.
DEFAULT_BOUNDS: tuple[int, ...] = (3, 5, 8)


def select_rules(rule_ids: Sequence[str] | None = None) -> list[LintRule]:
    """Resolve a rule-id selection against the registry.

    ``None`` selects every registered rule.  Unknown ids raise
    ``ValueError`` listing the valid ones, so CLI typos fail loudly
    instead of silently linting nothing.
    """
    if rule_ids is None:
        return list(RULES.values())
    selected = []
    for rule_id in rule_ids:
        if rule_id not in RULES:
            known = ", ".join(sorted(RULES))
            raise ValueError(
                f"unknown lint rule {rule_id!r}; known rules: {known}"
            )
        selected.append(RULES[rule_id])
    return selected


def lint_protocol(
    protocol: PopulationProtocol,
    spec: ModelSpec | None = None,
    bound: int | None = None,
    rules: Sequence[str] | None = None,
    budgets: LintBudgets | None = None,
) -> LintReport:
    """Audit one protocol instance.

    With ``spec``/``bound`` the spec-scope rules (state budget, leader
    discipline, sink discipline) run against that Table 1 cell;
    without them they restrict to their spec-independent checks.
    """
    ctx = LintContext(
        protocol=protocol,
        spec=spec,
        bound=bound,
        cell=table1_cell(spec) if spec is not None else None,
        budgets=budgets if budgets is not None else LintBudgets(),
    )
    selected = select_rules(rules)
    report = LintReport(
        protocols_checked=1,
        bounds=(bound,) if bound is not None else (),
        rules_run=tuple(r.id for r in selected),
    )
    for lint_rule in selected:
        report.extend(lint_rule.fn(ctx))
    return report


def cached_lint_report(
    protocol: PopulationProtocol,
    spec: ModelSpec | None = None,
    bound: int | None = None,
    rules: Sequence[str] | None = None,
    budgets: LintBudgets | None = None,
    cache=None,
) -> LintReport:
    """:func:`lint_protocol`, memoized in a content-addressed cache.

    ``cache`` is a :class:`repro.serve.cache.ArtifactCache` (or any
    object with its ``get``/``put`` interface).  The report is keyed on
    the protocol's *content* fingerprint plus the audit parameters, so
    equal protocol instances - across processes sharing a cache root -
    reuse one stored report.  Protocols without a fingerprint, or calls
    without a cache, fall through to a plain :func:`lint_protocol`.
    """
    import hashlib

    if cache is None:
        return lint_protocol(protocol, spec, bound, rules, budgets)
    from repro.engine.fast import table_fingerprint

    fingerprint = table_fingerprint(protocol)
    if fingerprint is None:
        return lint_protocol(protocol, spec, bound, rules, budgets)
    parts = (
        "repro-lint-v1",
        fingerprint,
        spec.describe() if spec is not None else "none",
        str(bound),
        ",".join(rules) if rules is not None else "all",
        repr(budgets) if budgets is not None else "default",
    )
    key = hashlib.sha256("\x00".join(parts).encode()).hexdigest()
    stored = cache.get("lint", key)
    if isinstance(stored, LintReport):
        return stored
    report = lint_protocol(protocol, spec, bound, rules, budgets)
    cache.put("lint", key, report)
    return report


def run_lint(
    bounds: Iterable[int] = DEFAULT_BOUNDS,
    rules: Sequence[str] | None = None,
    specs: Iterable[ModelSpec] | None = None,
    budgets: LintBudgets | None = None,
) -> LintReport:
    """Exhaustively audit every protocol the registry can build.

    For each (spec, bound) cell: feasible cells must yield a protocol
    (registry failures are reported, not raised) and the selected rules
    run on it; infeasible cells must raise
    :class:`~repro.errors.InfeasibleSpecError`.
    """
    bounds = tuple(bounds)
    budgets = budgets if budgets is not None else LintBudgets()
    selected = select_rules(rules)
    spec_list = list(specs) if specs is not None else list(all_specs())
    report = LintReport(
        bounds=bounds, rules_run=tuple(r.id for r in selected)
    )
    # (protocol type, display name, bound, rule id) -> already reported.
    protocol_scope_seen: set[tuple[str, str, int, str]] = set()
    protocols_seen: set[tuple[str, str, int]] = set()
    for spec in spec_list:
        cell = table1_cell(spec)
        for bound in bounds:
            report.cells_checked += 1
            if not cell.feasible:
                diag = _check_infeasible_cell(spec, bound)
                if diag is not None:
                    report.extend([diag])
                continue
            try:
                protocol = protocol_for(spec, bound)
            except Exception as exc:
                report.extend(
                    [
                        Diagnostic(
                            rule="registry",
                            severity=Severity.ERROR,
                            message=(
                                "the registry failed to build a protocol "
                                f"for a feasible cell: {exc!r}"
                            ),
                            protocol="<registry>",
                            spec=spec.describe(),
                            bound=bound,
                        )
                    ]
                )
                continue
            ctx = LintContext(
                protocol=protocol,
                spec=spec,
                bound=bound,
                cell=cell,
                budgets=budgets,
            )
            identity = (type(protocol).__name__, protocol.display_name, bound)
            if identity not in protocols_seen:
                protocols_seen.add(identity)
                report.protocols_checked += 1
            for lint_rule in selected:
                if lint_rule.scope == "protocol":
                    key = identity + (lint_rule.id,)
                    if key in protocol_scope_seen:
                        continue
                    protocol_scope_seen.add(key)
                report.extend(lint_rule.fn(ctx))
    return report


def _check_infeasible_cell(spec: ModelSpec, bound: int) -> Diagnostic | None:
    """The registry must refuse infeasible cells (Proposition 9)."""
    try:
        protocol = protocol_for(spec, bound)
    except InfeasibleSpecError:
        return None
    except Exception as exc:
        return Diagnostic(
            rule="registry",
            severity=Severity.ERROR,
            message=(
                "an infeasible cell must raise InfeasibleSpecError, got "
                f"{exc!r}"
            ),
            protocol="<registry>",
            spec=spec.describe(),
            bound=bound,
        )
    return Diagnostic(
        rule="registry",
        severity=Severity.ERROR,
        message=(
            "the registry built a protocol for a cell the paper proves "
            "infeasible (symmetric rules, weak fairness, no leader)"
        ),
        protocol=protocol.display_name,
        spec=spec.describe(),
        bound=bound,
    )
