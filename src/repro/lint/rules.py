"""The lint rule registry and the rules themselves.

Each rule is a function from a :class:`LintContext` (one protocol, with
optional :class:`~repro.core.spec.ModelSpec` / bound context) to a list
of :class:`~repro.lint.diagnostics.Diagnostic`\\ s.  Rules register
through the :func:`rule` decorator under a stable kebab-case id and one
of two scopes:

``protocol``
    Depends only on the protocol instance - closure, symmetry of the
    actual table, reachability.  The engine caches these per (protocol,
    bound) so a protocol serving several Table 1 cells is analyzed once.
``spec``
    Compares the protocol against its model specification - the Table 1
    state budget, role/claim conformance, the Section 3.1 sink
    discipline.  Cheap, run per cell.

Rules report findings; they never raise on a bad protocol.  Exhaustive
sub-analyses run through a ladder: the symbolic counts-quotient engine
(:mod:`repro.analysis.symbolic`) first, the explicit labelled
enumeration as a fallback, and only when both exceed their
:class:`LintBudgets` caps does the rule emit an ``INFO`` diagnostic
recording the skip (with a structured ``skipped_budget`` field), so a
clean report documents its own coverage.  At the default budgets the
full registry sweep reports zero skips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.reachability import (
    arbitrary_initial_configurations,
    explore,
    uniform_initial_configurations,
)
from repro.analysis.sink import unique_sink
from repro.analysis.symbolic import (
    check_liveness as _symbolic_liveness,
    check_reach as _symbolic_reach,
    initial_state_sets,
    state_closure,
)
from repro.core.spec import CellResult, LeaderKind, ModelSpec, Symmetry
from repro.engine.population import Population
from repro.engine.problems import is_silent
from repro.engine.protocol import (
    PopulationProtocol,
    TableProtocol,
    _state_pairs,
    asymmetric_witnesses,
)
from repro.engine.state import State, is_leader_state
from repro.errors import VerificationError
from repro.lint.diagnostics import Diagnostic, Severity

#: How many concrete witnesses a single finding carries at most.
WITNESS_LIMIT = 5


@dataclass(frozen=True)
class LintBudgets:
    """Caps on the exhaustive sub-analyses.

    Protocols exceeding a cap are skipped by the affected rule with an
    ``INFO`` diagnostic (never silently): soundness over completeness.
    The defaults clear the full registry sweep at bounds {3, 5, 8} with
    zero skips - the frontier-incremental closure and the symbolic
    counts-quotient engine handle the ~10^4-state leader space of the
    self-stabilizing protocols directly.
    """

    #: Largest combined state space for the state-closure analyses
    #: (reachable-states, dead-table-entries).
    max_closure_states: int = 25_000
    #: Mobile population size for the configuration-graph search.
    reach_population: int = 3
    #: Largest number of initial configurations to explore from.
    max_reach_roots: int = 6_000
    #: Largest configuration-graph size explored.
    max_reach_nodes: int = 60_000


@dataclass
class LintContext:
    """Everything a rule may look at.

    ``spec``/``bound``/``cell`` are ``None`` when linting a standalone
    protocol outside the Table 1 sweep; spec-scope rules then skip their
    spec-dependent checks.
    """

    protocol: PopulationProtocol
    spec: ModelSpec | None = None
    bound: int | None = None
    cell: CellResult | None = None
    budgets: LintBudgets = field(default_factory=LintBudgets)

    def diag(
        self,
        rule_id: str,
        severity: Severity,
        message: str,
        witness=None,
        skipped_budget: str | None = None,
    ) -> Diagnostic:
        """Build a diagnostic carrying this context."""
        return Diagnostic(
            rule=rule_id,
            severity=severity,
            message=message,
            protocol=self.protocol.display_name,
            spec=self.spec.describe() if self.spec is not None else None,
            bound=self.bound,
            witness=witness,
            skipped_budget=skipped_budget,
        )


@dataclass(frozen=True)
class LintRule:
    """A registered rule: stable id, scope, one-line description."""

    id: str
    scope: str  # "protocol" | "spec"
    description: str
    fn: Callable[[LintContext], list[Diagnostic]]


#: The rule registry, in registration (= documentation) order.
RULES: dict[str, LintRule] = {}


def rule(rule_id: str, scope: str, description: str):
    """Register a lint rule under ``rule_id``."""

    def register(fn: Callable[[LintContext], list[Diagnostic]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULES[rule_id] = LintRule(rule_id, scope, description, fn)
        return fn

    return register


def _fmt_state(state: State) -> str:
    return repr(state)


# ----------------------------------------------------------------------
# Protocol-scope rules
# ----------------------------------------------------------------------


@rule(
    "closure",
    "protocol",
    "transitions stay inside the declared state spaces and preserve "
    "each position's mobile/leader role",
)
def check_closure(ctx: LintContext) -> list[Diagnostic]:
    """Every transition stays in-space and preserves roles."""
    protocol = ctx.protocol
    mobile = protocol.mobile_state_space()
    leader = protocol.leader_state_space()
    witnesses: list = []
    for p, q in _state_pairs(protocol):
        try:
            p2, q2 = protocol.transition(p, q)
        except Exception as exc:
            return [
                ctx.diag(
                    "closure",
                    Severity.ERROR,
                    f"transition({p!r}, {q!r}) raised {exc!r}",
                    witness=[_fmt_state(p), _fmt_state(q)],
                )
            ]
        for before, after in ((p, p2), (q, q2)):
            leaky = (
                after not in leader
                if is_leader_state(before)
                else after not in mobile
            )
            if leaky:
                witnesses.append(
                    {
                        "pair": [_fmt_state(p), _fmt_state(q)],
                        "result": [_fmt_state(p2), _fmt_state(q2)],
                        "escaped": _fmt_state(after),
                    }
                )
                break
        if len(witnesses) >= WITNESS_LIMIT:
            break
    if not witnesses:
        return []
    return [
        ctx.diag(
            "closure",
            Severity.ERROR,
            f"{len(witnesses)}+ transition(s) leave the declared state "
            "space or move a state across the mobile/leader role "
            "boundary",
            witness=witnesses,
        )
    ]


@rule(
    "symmetry",
    "protocol",
    "the symmetric/asymmetric declaration matches the actual transition "
    "table, in both directions",
)
def check_symmetry(ctx: LintContext) -> list[Diagnostic]:
    """The symmetry declaration matches the table, both ways."""
    protocol = ctx.protocol
    witnesses = asymmetric_witnesses(
        protocol,
        limit=WITNESS_LIMIT if protocol.symmetric else 1,
    )
    if protocol.symmetric and witnesses:
        rendered = []
        for p, q in witnesses[:WITNESS_LIMIT]:
            p2, q2 = protocol.transition(p, q)
            q3, p3 = protocol.transition(q, p)
            rendered.append(
                {
                    "pair": [_fmt_state(p), _fmt_state(q)],
                    "forward": [_fmt_state(p2), _fmt_state(q2)],
                    "mirrored": [_fmt_state(p3), _fmt_state(q3)],
                }
            )
        return [
            ctx.diag(
                "symmetry",
                Severity.ERROR,
                "declared symmetric but the transition table has "
                f"{len(witnesses)}+ asymmetric rule(s)",
                witness=rendered,
            )
        ]
    if not protocol.symmetric and not witnesses:
        # The converse direction is a paper-fidelity bug: Table 1's
        # asymmetric column exists *because* an asymmetric rule buys one
        # state - a secretly-symmetric table belongs in the other column.
        return [
            ctx.diag(
                "symmetry",
                Severity.ERROR,
                "declared asymmetric but every rule in the transition "
                "table is symmetric; the protocol belongs in Table 1's "
                "symmetric column",
            )
        ]
    return []


# The state-closure analysis lives in repro.analysis.symbolic (the
# frontier-incremental version pairs only *new* states against the known
# set per iteration, which is what lets the default closure budget cover
# the ~10^4-state leader spaces); these aliases keep the historical rule
# helper names importable.
_initial_state_sets = initial_state_sets
_state_closure = state_closure


@rule(
    "reachable-states",
    "protocol",
    "every declared mobile state is reachable from the declared initial "
    "configurations (wasted states contradict space-optimality)",
)
def check_reachable_states(ctx: LintContext) -> list[Diagnostic]:
    """No declared mobile state is dead weight."""
    protocol = ctx.protocol
    n_states = len(protocol.all_states())
    if n_states > ctx.budgets.max_closure_states:
        return [
            ctx.diag(
                "reachable-states",
                Severity.INFO,
                f"skipped: {n_states} states exceed the closure budget "
                f"of {ctx.budgets.max_closure_states}",
                skipped_budget="max_closure_states",
            )
        ]
    closure = _state_closure(protocol)
    if closure is None:
        return []  # escaped the declared spaces; `closure` rule reports it
    mobiles_reached, _leaders_reached = closure
    unreached = sorted(
        protocol.mobile_state_space() - mobiles_reached, key=repr
    )
    if not unreached:
        return []
    # Leader states are deliberately not flagged: large leader spaces
    # over-approximate the leader's bookkeeping range and the paper's
    # space measure counts mobile states only.
    return [
        ctx.diag(
            "reachable-states",
            Severity.WARNING,
            f"{len(unreached)} declared mobile state(s) are unreachable "
            "from the declared initial configurations",
            witness=[_fmt_state(s) for s in unreached[:WITNESS_LIMIT]],
        )
    ]


@rule(
    "dead-table-entries",
    "protocol",
    "explicit TableProtocol entries that can never fire: identity "
    "entries, unschedulable pairs, out-of-space or unreachable keys",
)
def check_dead_table_entries(ctx: LintContext) -> list[Diagnostic]:
    """Explicit table entries must be able to fire."""
    protocol = ctx.protocol
    if not isinstance(protocol, TableProtocol):
        return []
    mobile = protocol.mobile_state_space()
    leader = protocol.leader_state_space()
    known = mobile | leader
    dead: list[dict] = []
    closure = None
    if len(known) <= ctx.budgets.max_closure_states:
        closure = _state_closure(protocol)
    for (p, q), (p2, q2) in protocol.table.items():
        entry = {
            "pair": [_fmt_state(p), _fmt_state(q)],
            "result": [_fmt_state(p2), _fmt_state(q2)],
        }
        if (p2, q2) == (p, q):
            entry["reason"] = "identity entry (null by definition)"
        elif p not in known or q not in known:
            entry["reason"] = "key state outside the declared spaces"
        elif is_leader_state(p) and is_leader_state(q):
            entry["reason"] = (
                "leader/leader pair (a population has one leader)"
            )
        elif closure is not None and not all(
            s in closure[0] or s in closure[1] for s in (p, q)
        ):
            entry["reason"] = (
                "key state unreachable from the initial configurations"
            )
        else:
            continue
        dead.append(entry)
    if not dead:
        return []
    return [
        ctx.diag(
            "dead-table-entries",
            Severity.WARNING,
            f"{len(dead)} table entr{'y is' if len(dead) == 1 else 'ies are'}"
            " dead (can never fire as a non-null interaction)",
            witness=dead[:WITNESS_LIMIT],
        )
    ]


@rule(
    "silent-configs-named",
    "protocol",
    "every silent configuration reachable from the declared initial "
    "configurations assigns pairwise-distinct names",
)
def check_silent_configs_named(ctx: LintContext) -> list[Diagnostic]:
    """Reachable silent configurations carry distinct names.

    Ladder: the symbolic counts-quotient frontier first (multiset roots,
    exact, scales with the quotient), the explicit labelled exploration
    as a fallback (it has no well-formedness precondition, so it still
    covers protocols whose transitions escape the declared spaces), and
    an ``INFO`` skip only when both are out of budget.
    """
    protocol = ctx.protocol
    budgets = ctx.budgets
    n_mobile = budgets.reach_population
    population = Population(n_mobile, protocol.requires_leader)
    designated_leader = protocol.initial_leader_state()
    try:
        verdict = _symbolic_reach(
            protocol,
            n_mobile,
            leader_states=(
                [designated_leader]
                if designated_leader is not None
                else None
            ),
            max_nodes=budgets.max_reach_nodes,
            max_roots=budgets.max_reach_roots,
        )
    except VerificationError:
        pass  # out of budget or not quotient-compilable; go explicit
    else:
        if verdict.holds:
            return []
        witness = verdict.witness
        return [
            ctx.diag(
                "silent-configs-named",
                Severity.ERROR,
                f"a reachable silent configuration carries duplicate "
                f"names (N = {n_mobile}); silence is terminal, so naming "
                "can never be solved from it (counterexample "
                "replay-validated on the reference simulator)",
                witness={
                    "names": [
                        _fmt_state(s)
                        for s in witness.final.mobile_states
                    ],
                    "initial": [
                        _fmt_state(s)
                        for s in witness.initial.mobile_states
                    ],
                    "meetings": list(witness.meetings),
                },
            )
        ]
    if protocol.initial_mobile_state() is not None:
        roots_iter: Iterable = uniform_initial_configurations(
            protocol, population
        )
    else:
        designated_leader = protocol.initial_leader_state()
        leader_states = (
            [designated_leader] if designated_leader is not None else None
        )
        n_leaders = (
            1
            if designated_leader is not None
            else max(1, len(protocol.leader_state_space()))
        )
        n_roots = len(protocol.mobile_state_space()) ** n_mobile
        if protocol.requires_leader:
            n_roots *= n_leaders
        if n_roots > budgets.max_reach_roots:
            return [
                ctx.diag(
                    "silent-configs-named",
                    Severity.INFO,
                    f"skipped: {n_roots} initial configurations exceed "
                    f"the exploration budget of {budgets.max_reach_roots}",
                    skipped_budget="max_reach_roots",
                )
            ]
        roots_iter = arbitrary_initial_configurations(
            protocol, population, leader_states
        )
    try:
        graph = explore(
            protocol,
            population,
            roots_iter,
            max_nodes=budgets.max_reach_nodes,
        )
    except VerificationError as exc:
        return [
            ctx.diag(
                "silent-configs-named",
                Severity.INFO,
                f"skipped: {exc}",
                skipped_budget="max_reach_nodes",
            )
        ]
    colliding: list[list[str]] = []
    for config in graph.nodes:
        if not is_silent(protocol, config):
            continue
        names = config.mobile_states
        if len(set(names)) != len(names):
            colliding.append([_fmt_state(s) for s in names])
            if len(colliding) >= WITNESS_LIMIT:
                break
    if not colliding:
        return []
    return [
        ctx.diag(
            "silent-configs-named",
            Severity.ERROR,
            f"{len(colliding)}+ reachable silent configuration(s) carry "
            f"duplicate names (N = {n_mobile}); silence is terminal, so "
            "naming can never be solved from them",
            witness=colliding,
        )
    ]


# ----------------------------------------------------------------------
# Spec-scope rules
# ----------------------------------------------------------------------


@rule(
    "state-budget",
    "spec",
    "the mobile state count equals the Table 1 optimum (P or P+1) for "
    "the protocol's model specification",
)
def check_state_budget(ctx: LintContext) -> list[Diagnostic]:
    """Mobile state count equals the Table 1 optimum."""
    if ctx.cell is None or ctx.bound is None:
        return []
    optimal = ctx.cell.optimal_states(ctx.bound)
    if optimal is None:
        return []
    declared = ctx.protocol.num_mobile_states
    if declared == optimal:
        return []
    if declared > optimal:
        message = (
            f"{declared} mobile states exceed the Table 1 optimum of "
            f"{optimal} (= P{'+1' if ctx.cell.extra_states else ''}); the "
            "space-optimality claim is violated"
        )
    else:
        message = (
            f"{declared} mobile states undercut the proven lower bound "
            f"of {optimal}; either the protocol is broken or the paper's "
            "bound is - check the registry wiring"
        )
    return [
        ctx.diag(
            "state-budget",
            Severity.ERROR,
            message,
            witness={"declared": declared, "optimal": optimal},
        )
    ]


@rule(
    "leader-discipline",
    "spec",
    "leader requirements, initial states and the symmetry claim agree "
    "with the protocol's declarations and the model specification",
)
def check_leader_discipline(ctx: LintContext) -> list[Diagnostic]:
    """Leader/symmetry declarations agree with the model."""
    protocol = ctx.protocol
    diags: list[Diagnostic] = []
    leader_space = protocol.leader_state_space()
    if protocol.requires_leader and not leader_space:
        diags.append(
            ctx.diag(
                "leader-discipline",
                Severity.ERROR,
                "requires a leader but declares an empty leader state "
                "space",
            )
        )
    if not protocol.requires_leader and leader_space:
        diags.append(
            ctx.diag(
                "leader-discipline",
                Severity.WARNING,
                "declares leader states but does not require a leader; "
                "they can never be scheduled",
            )
        )
    init_mobile = protocol.initial_mobile_state()
    if (
        init_mobile is not None
        and init_mobile not in protocol.mobile_state_space()
    ):
        diags.append(
            ctx.diag(
                "leader-discipline",
                Severity.ERROR,
                "the designated initial mobile state is outside the "
                "mobile state space",
                witness=_fmt_state(init_mobile),
            )
        )
    init_leader = protocol.initial_leader_state()
    if init_leader is not None and init_leader not in leader_space:
        diags.append(
            ctx.diag(
                "leader-discipline",
                Severity.ERROR,
                "the designated initial leader state is outside the "
                "leader state space",
                witness=_fmt_state(init_leader),
            )
        )
    spec = ctx.spec
    if spec is not None:
        if spec.leader is LeaderKind.NONE and protocol.requires_leader:
            diags.append(
                ctx.diag(
                    "leader-discipline",
                    Severity.ERROR,
                    "the model has no leader but the protocol requires "
                    "one",
                )
            )
        # The converse (a leader model served by a leaderless protocol)
        # is legitimate: the paper reuses leaderless protocols when the
        # leader buys nothing (e.g. Proposition 13 under a leader).
        if (
            spec.symmetry is Symmetry.SYMMETRIC
            and not protocol.symmetric
        ):
            diags.append(
                ctx.diag(
                    "leader-discipline",
                    Severity.ERROR,
                    "the model only admits symmetric rules but the "
                    "protocol declares asymmetric ones",
                )
            )
    return diags


@rule(
    "sink-discipline",
    "spec",
    "under the Section 3.1 premises (symmetric rules, weak fairness, "
    "arbitrary init) the protocol has a unique sink with an immediate "
    "self-loop (Proposition 6)",
)
def check_sink_discipline(ctx: LintContext) -> list[Diagnostic]:
    """Proposition 6's unique-sink property under its premises."""
    protocol = ctx.protocol
    spec = ctx.spec
    # Proposition 6 is proved for correct symmetric naming protocols in
    # the self-stabilizing weak-fairness setting; outside those premises
    # multiple homonym cycles are legitimate (e.g. the global-fairness
    # leaderless protocol's period-2 cycle).
    if spec is None or not protocol.symmetric:
        return []
    from repro.core.spec import Fairness, MobileInit

    if (
        spec.fairness is not Fairness.WEAK
        or spec.mobile_init is not MobileInit.ARBITRARY
    ):
        return []
    try:
        unique_sink(protocol)
    except VerificationError as exc:
        return [
            ctx.diag(
                "sink-discipline",
                Severity.ERROR,
                f"Proposition 6 violated: {exc}",
            )
        ]
    return []


@rule(
    "weak-liveness",
    "spec",
    "under weak fairness the protocol admits no weakly fair livelock or "
    "duplicate-name parking (symbolic counts-quotient fiber search at "
    "N = reach_population)",
)
def check_weak_liveness(ctx: LintContext) -> list[Diagnostic]:
    """Weak-fairness naming holds at the lint population size.

    Runs the symbolic liveness checker with spec-matched roots.  The
    NON_INITIALIZED leader cells are deliberately left to ``repro
    check``: their root space is the full declared leader state space
    (~10^4 states at P = 8), which is on-demand verification territory,
    not a per-sweep lint premise.
    """
    protocol = ctx.protocol
    spec = ctx.spec
    budgets = ctx.budgets
    from repro.core.spec import Fairness, MobileInit

    if spec is None or spec.fairness is not Fairness.WEAK:
        return []
    if (
        protocol.requires_leader
        and spec.leader is not LeaderKind.INITIALIZED
    ):
        return []  # full-leader-space roots: `repro check` territory
    mobile_mode = (
        "uniform"
        if spec.mobile_init is MobileInit.UNIFORM
        else "arbitrary"
    )
    leader_states = None
    if protocol.requires_leader:
        designated = protocol.initial_leader_state()
        if designated is None:
            return []  # INITIALIZED cell without a designated leader
        leader_states = [designated]
    try:
        verdict = _symbolic_liveness(
            protocol,
            budgets.reach_population,
            mobile_mode=mobile_mode,
            leader_states=leader_states,
            max_nodes=budgets.max_reach_nodes,
            max_roots=budgets.max_reach_roots,
        )
    except VerificationError as exc:
        return [
            ctx.diag(
                "weak-liveness",
                Severity.INFO,
                f"skipped: {exc}",
                skipped_budget="max_reach_nodes",
            )
        ]
    if verdict.holds:
        return []
    witness = verdict.witness
    return [
        ctx.diag(
            "weak-liveness",
            Severity.ERROR,
            f"{verdict.reason} (N = {budgets.reach_population}; "
            "counterexample schedule replay-validated on the reference "
            "simulator)",
            witness={
                "kind": witness.kind,
                "initial": [
                    _fmt_state(s) for s in witness.initial.mobile_states
                ],
                "meetings": list(witness.meetings),
                "rounds": list(witness.round_ends),
            },
        )
    ]
