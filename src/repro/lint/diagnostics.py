"""Diagnostic records and reports for the protocol lint engine.

A :class:`Diagnostic` is one finding of one lint rule on one protocol:
machine-readable (stable rule id, severity, optional concrete witness)
and human-readable (message, protocol/spec/bound context).  A
:class:`LintReport` aggregates the findings of a lint run, renders them
as text or JSON (via :mod:`repro.reporting.jsonio`), and maps them to a
process exit code for the CI gate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.reporting.jsonio import dumps as _json_dumps


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings contradict the paper's claims or the execution
    model (a broken run is possible); ``WARNING`` findings are wasteful
    or suspicious but not incorrect (dead table entries, unreachable
    states); ``INFO`` findings record what the linter *skipped* (budget
    caps on exhaustive analyses), so a clean report still documents its
    own coverage.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    ``witness`` carries the concrete evidence (a state pair, a
    configuration's states, a count mismatch) as JSON-serializable data
    so reports can be archived and diffed; ``None`` for findings whose
    message is self-contained.
    """

    rule: str
    severity: Severity
    message: str
    protocol: str
    spec: str | None = None
    bound: int | None = None
    witness: Any = None
    #: Set when the finding records a *skipped* analysis: the name of
    #: the :class:`~repro.lint.rules.LintBudgets` field that was
    #: exceeded.  Machine-readable so CI can assert "no skips" on the
    #: JSON report instead of grepping message text.
    skipped_budget: str | None = None

    def render(self) -> str:
        """One-line text rendering, ``file:line``-style prefixed."""
        where = self.protocol
        if self.bound is not None:
            where += f" (P={self.bound})"
        if self.spec is not None:
            where += f" [{self.spec}]"
        line = f"{self.severity.value}: {self.rule}: {where}: {self.message}"
        if self.skipped_budget is not None:
            line += f" [budget: {self.skipped_budget}]"
        if self.witness is not None:
            line += f"\n    witness: {self.witness!r}"
        return line


@dataclass
class LintReport:
    """Aggregated outcome of a lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: (spec, bound) cells swept; 0 for single-protocol lints.
    cells_checked: int = 0
    #: Distinct protocol instances analyzed.
    protocols_checked: int = 0
    #: The bounds swept, for the report header.
    bounds: tuple[int, ...] = ()
    #: Ids of the rules that ran.
    rules_run: tuple[str, ...] = ()

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        """Append a rule's findings to the report."""
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def budget_skips(self) -> list[Diagnostic]:
        """Findings that record a skipped analysis (budget exceeded)."""
        return [
            d for d in self.diagnostics if d.skipped_budget is not None
        ]

    def exit_code(self, strict: bool = False) -> int:
        """Process exit code: errors always fail; ``strict`` also fails
        on warnings.  INFO findings (coverage notes) never fail."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def render_text(self, show_info: bool = True) -> str:
        """Multi-line human-readable report."""
        lines: list[str] = []
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.rule, d.protocol),
        )
        for diag in ordered:
            if diag.severity is Severity.INFO and not show_info:
                continue
            lines.append(diag.render())
        if lines:
            lines.append("")
        scope = (
            f"{self.cells_checked} spec cells, "
            f"{self.protocols_checked} protocol instances"
            + (
                f", bounds {{{', '.join(str(b) for b in self.bounds)}}}"
                if self.bounds
                else ""
            )
        )
        lines.append(
            f"lint: {scope}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} note(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """JSON rendering (via the shared experiment serializer)."""
        return _json_dumps(self)
