"""``repro lint``: the static-analysis CI gate.

Sweeps every Table 1 model specification at the requested bounds,
running every (or a selected subset of) lint rule on each protocol the
registry builds.  Exit code 0 means no errors (``--strict`` also
promotes warnings to failures); nonzero otherwise - suitable for CI.
"""

from __future__ import annotations

import argparse

from repro.lint.diagnostics import LintReport
from repro.lint.engine import DEFAULT_BOUNDS, run_lint, select_rules
from repro.lint.rules import RULES, LintBudgets


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Statically audit every registered naming protocol across "
            "all Table 1 model specifications."
        ),
    )
    parser.add_argument(
        "--bounds",
        type=int,
        nargs="+",
        default=list(DEFAULT_BOUNDS),
        metavar="P",
        help="name-range bounds to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI gate)",
    )
    parser.add_argument(
        "--fail-on-skips",
        action="store_true",
        help=(
            "fail when any analysis was skipped for budget reasons "
            "(diagnostics with a structured skipped_budget field); the "
            "CI zero-skip gate"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--no-info",
        action="store_true",
        help="hide INFO-level coverage notes in the text report",
    )
    parser.add_argument(
        "--max-closure-states",
        type=int,
        default=LintBudgets.max_closure_states,
        help="state-space cap for closure analyses (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> int:
    width = max(len(rule_id) for rule_id in RULES)
    for lint_rule in RULES.values():
        print(
            f"{lint_rule.id:<{width}}  [{lint_rule.scope:<8}] "
            f"{lint_rule.description}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro lint``; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    try:
        select_rules(args.rules)
    except ValueError as exc:
        print(f"repro lint: {exc}")
        return 2
    budgets = LintBudgets(max_closure_states=args.max_closure_states)
    report: LintReport = run_lint(
        bounds=args.bounds, rules=args.rules, budgets=budgets
    )
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text(show_info=not args.no_info))
    code = report.exit_code(strict=args.strict)
    if code == 0 and args.fail_on_skips and report.budget_skips:
        skipped = sorted(
            {d.skipped_budget for d in report.budget_skips if d.skipped_budget}
        )
        print(
            f"lint: {len(report.budget_skips)} analysis skip(s) "
            f"[budgets: {', '.join(skipped)}] and --fail-on-skips is set"
        )
        return 1
    return code


if __name__ == "__main__":
    raise SystemExit(main())
