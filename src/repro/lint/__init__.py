"""Static well-formedness analysis for the paper's naming protocols.

The lint engine audits every protocol reachable from
:func:`repro.core.registry.protocol_for` - across all 24 Table 1 model
specifications and a sweep of name-range bounds - against the claims the
paper makes about them: transition closure and role discipline, the
symmetric/asymmetric declaration (both directions), the P-vs-P+1 state
budget, reachability of the declared states, dead transition-table
entries, and the naming invariant on reachable silent configurations.

Use :func:`run_lint` for the full sweep (the ``repro lint`` CLI and CI
gate) or :func:`lint_protocol` for one protocol, e.g. a hand-built
:class:`~repro.engine.protocol.TableProtocol` in a test.  The runtime
counterpart - the execution-invariant sanitizer threaded through the
simulation backends - lives in :mod:`repro.engine.sanitize`.
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.engine import (
    DEFAULT_BOUNDS,
    lint_protocol,
    run_lint,
    select_rules,
)
from repro.lint.rules import RULES, LintBudgets, LintContext, LintRule, rule

__all__ = [
    "DEFAULT_BOUNDS",
    "Diagnostic",
    "LintBudgets",
    "LintContext",
    "LintReport",
    "LintRule",
    "RULES",
    "Severity",
    "lint_protocol",
    "rule",
    "run_lint",
    "select_rules",
]
