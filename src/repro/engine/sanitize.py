"""Runtime invariant sanitizer for the simulation backends.

Every backend maintains a different representation of the same object - a
population of agents evolving under pairwise rules - and each
representation carries invariants that no correct run may violate:

* **population-size** - the number of agents (the sum of all counts)
  never changes;
* **negative-count** - no state's count goes below zero;
* **state-range** - every agent holds a state inside the protocol's
  declared space for its role (interned indices stay in range on the
  array backends);
* **post-silence-change** - a silent configuration is terminal, so no
  non-null interaction may follow one.

``sanitize=True`` on :func:`repro.engine.fast.make_simulator` (or
:func:`repro.engine.ensemble.run_ensemble`) arms these checks inside
every backend.  Violations raise :class:`~repro.errors.SanitizerError`
carrying the backend name, the invariant id and the offending step.  The
checks read simulation state but never consume randomness or alter
control flow, so sanitized runs are bit-identical to unsanitized ones -
the differential tests in ``tests/engine/test_sanitize.py`` enforce it.

The helpers below are deliberately standalone functions: the hot loops
call them at convergence-check cadence (reference/fast) or once per
envelope refresh / kernel step / window refresh (counts/batch/
leap/bleap), and the fault-injection tests monkeypatch them to simulate
kernel corruption.  On the windowed backends the *post-silence-change*
invariant is adapted to window granularity: on ``leap`` a whole
multinomial window (or exact burst) that fires any event after silence
trips the tracker, since individual interactions are never materialized
there; on ``bleap`` it is enforced structurally - a row observed silent
is finalized and dropped from the active matrix at that same refresh,
so no later window can touch it - while the counts-row invariants are
checked per refresh via :func:`check_counts_rows`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SanitizerError


def check_population_size(
    backend: str, expected: int, actual: int, interaction: int
) -> None:
    """Raise unless the configuration still describes ``expected`` agents."""
    if actual != expected:
        raise SanitizerError(
            f"{backend} backend: population size changed from {expected} "
            f"to {actual} at interaction {interaction}",
            backend=backend,
            invariant="population-size",
            interaction=interaction,
        )


def check_states_in_space(
    backend: str,
    states: Sequence,
    leader_index: int | None,
    mobile_space: frozenset,
    leader_space: frozenset,
    interaction: int,
) -> None:
    """Raise unless every agent's state respects its role's declared space."""
    for agent, state in enumerate(states):
        if agent == leader_index:
            if state not in leader_space:
                raise SanitizerError(
                    f"{backend} backend: leader holds {state!r}, outside "
                    f"the declared leader space, at interaction "
                    f"{interaction}",
                    backend=backend,
                    invariant="state-range",
                    interaction=interaction,
                )
        elif state not in mobile_space:
            raise SanitizerError(
                f"{backend} backend: mobile agent {agent} holds {state!r}, "
                f"outside the declared mobile space, at interaction "
                f"{interaction}",
                backend=backend,
                invariant="state-range",
                interaction=interaction,
            )


def check_index_vector(
    backend: str,
    state_idx: Sequence[int],
    n_states: int,
    mobile_indices: frozenset,
    leader_agent: int | None,
    interaction: int,
) -> None:
    """Raise unless every interned index is in range and role-correct."""
    for agent, idx in enumerate(state_idx):
        if not 0 <= idx < n_states:
            raise SanitizerError(
                f"{backend} backend: agent {agent} holds interned index "
                f"{idx}, outside [0, {n_states}), at interaction "
                f"{interaction}",
                backend=backend,
                invariant="state-range",
                interaction=interaction,
            )
        if agent != leader_agent and idx not in mobile_indices:
            raise SanitizerError(
                f"{backend} backend: mobile agent {agent} holds "
                f"leader-only index {idx} at interaction {interaction}",
                backend=backend,
                invariant="state-range",
                interaction=interaction,
            )


def check_counts_vector(
    backend: str,
    counts: Iterable[int],
    expected_total: int,
    interaction: int,
) -> None:
    """Raise on a negative count or a non-conserved total."""
    total = 0
    for index, count in enumerate(counts):
        if count < 0:
            raise SanitizerError(
                f"{backend} backend: count of interned state {index} is "
                f"{count} at interaction {interaction}",
                backend=backend,
                invariant="negative-count",
                interaction=interaction,
            )
        total += count
    check_population_size(backend, expected_total, total, interaction)


def check_counts_rows(
    backend: str,
    rows,
    row_ids,
    expected_total: int,
    step: int,
) -> None:
    """Vectorized :func:`check_counts_vector` over a batch counts matrix.

    ``rows`` is the ``(R_active, S)`` NumPy slice of active replicates and
    ``row_ids`` their original replicate indices (for the error message).
    """
    if rows.size == 0:
        return
    if (rows < 0).any():
        bad = int(row_ids[(rows < 0).any(axis=1).argmax()])
        raise SanitizerError(
            f"{backend} backend: replicate {bad} holds a negative count "
            f"at kernel step {step}",
            backend=backend,
            invariant="negative-count",
            interaction=step,
        )
    sums = rows.sum(axis=1)
    if (sums != expected_total).any():
        where = (sums != expected_total).argmax()
        bad = int(row_ids[where])
        raise SanitizerError(
            f"{backend} backend: replicate {bad} describes "
            f"{int(sums[where])} agents instead of {expected_total} at "
            f"kernel step {step}",
            backend=backend,
            invariant="population-size",
            interaction=step,
        )


class SilenceTracker:
    """Detects state changes after a configuration was observed silent.

    A silent configuration (every realizable meeting null) is terminal;
    any later non-null interaction means either the engine corrupted
    state or a fault was injected.  Backends call :meth:`note_silent`
    whenever a silence check passes, :meth:`reset` when an external
    mutation (fault injection) legitimately wakes the run, and
    :meth:`note_change` on every non-null interaction.
    """

    __slots__ = ("backend", "_silent")

    def __init__(self, backend: str) -> None:
        self.backend = backend
        self._silent = False

    def note_silent(self) -> None:
        """Record that the configuration passed a silence check."""
        self._silent = True

    def reset(self) -> None:
        """Forget observed silence (an injected fault woke the run)."""
        self._silent = False

    def note_change(self, interaction: int) -> None:
        """Record a non-null interaction; raises if silence was seen."""
        if self._silent:
            raise SanitizerError(
                f"{self.backend} backend: non-null interaction "
                f"{interaction} after the configuration was observed "
                "silent",
                backend=self.backend,
                invariant="post-silence-change",
                interaction=interaction,
            )
