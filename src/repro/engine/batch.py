"""The batched ensemble backend: R replicate runs advanced in lockstep.

The experiment suites (convergence-rate curves, Table 1 certification,
expected-naming-time estimates) are ensembles: hundreds of independent
replicates of the *same* protocol on the *same* population size, differing
only in their random seed.  The per-run backends - even the O(1)
:class:`~repro.engine.counts.CountSimulator` - pay Python-interpreter
overhead per replicate per event.  This module removes it: because every
replicate lives on the same interned state space, an ensemble is a single
``(R, S)`` counts **matrix** ``C`` whose row ``r`` is replicate ``r``'s
counts vector, and one NumPy kernel step advances *every* unfinished
replicate by exactly one non-null event.

Kernel step (all arrays masked to the active rows)
--------------------------------------------------

1.  **True weights.**  ``w[r, f] = C[r, i_f] * (C[r, j_f] - [i_f = j_f])``
    for every non-null pair ``f`` of the precompiled
    :class:`~repro.engine.fast.TransitionTable`; ``W[r] = w[r].sum()``.
    This generalizes the counts backend's sampler to a row axis - and
    because the weights are recomputed from the *current* counts each
    step, no envelope or thinning is needed: every draw is already exact.
2.  **Silence.**  Rows with ``W == 0`` are frozen forever (every
    realizable meeting is null); they leave the kernel via the row mask,
    without resizing the matrix.
3.  **Geometric gap.**  The run of nulls before the next non-null event
    is ``Geometric(p)`` with ``p = W / N(N-1)``, drawn for all rows at
    once by inverse transform: ``gap = 1 + floor(ln u1 / ln(1 - p))``.
    Rows whose gap crosses the interaction budget stop (a naming run
    that is not yet silent cannot be converged, so no final check is
    needed beyond the silent case).
4.  **Event.**  The event index is categorical over the row's weights:
    ``f = #{cum w <= u2 * W}``; each row's counts move by row ``f`` of
    the precompiled per-pair delta matrix (``-1`` at the meeting pair,
    ``+1`` at the result pair), applied to all rows in one fancy-index
    add.

The kernel's cost is per *step* (one non-null event per active row),
independent of N: the weight gather runs off a flat index table that is
rebuilt only when the active-row set shrinks, and per-row uniforms are
prefetched in blocks (:data:`REFILL_STEPS`) so the per-step Python
overhead stays a handful of whole-array NumPy calls.

Randomness and reproducibility
------------------------------

Every row draws from its **own** :class:`numpy.random.Generator`, seeded
with its scheduler's seed, and consumes exactly two uniforms per kernel
step it participates in.  A row's trajectory is therefore a function of
its seed alone - independent of the other rows in the batch, of the batch
size, and of how an ensemble is chunked across worker processes.  Serial,
parallel and single-run executions of the same seed are bit-identical.

Exactness contract (the documented sampling-equivalence tolerance)
------------------------------------------------------------------

Like the counts backend, the lockstep path is *distribution-exact*: it
simulates the identical counts Markov chain, with identical
convergence-check semantics (checks fire at ``check_interval``
boundaries; a silent-and-distinct row converges at the first boundary at
or after its last event, capped at the budget).  It is **not**
stream-identical to any per-run backend - it consumes a different
randomness stream - so per-seed results agree with per-run ``counts``
execution in *verdict* (named/silent, duplicate-frozen, budget-exhausted
is a.s. identical for almost-surely-converging workloads) while
interaction counts are independent draws from the same distribution.
Tests bound per-seed interaction counts within an order of magnitude and
compare the ensembles distributionally (KS), mirroring
``tests/engine/test_counts.py``.

Ensembles the lockstep view cannot honour - non-uniform schedulers,
fault hooks, traces/observers, problems that are not the
permutation-invariant naming problem, open-role protocols, missing
NumPy - fall back to per-run :class:`~repro.engine.counts.CountSimulator`
execution (which continues down the ladder ``counts -> fast ->
reference``), with a :class:`~repro.errors.BackendFallbackWarning` naming
the reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.counts import (
    CountSimulator,
    intern_initial,
    materialize_counts_lazy,
)
from repro.engine.fast import BACKENDS, DEFAULT_COMPILE_LIMIT, warn_fallback
from repro.engine.leap import _leap_plan_for
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
)
from repro.engine.trace import Trace
from repro.errors import ConvergenceError, SimulationError
from repro.schedulers.base import Scheduler

try:  # NumPy powers the lockstep kernel; without it the backend delegates.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None

#: Kernel steps between per-row uniform-buffer refills.  Each active row
#: consumes two uniforms per step, so a refill draws ``2 * REFILL_STEPS``
#: values from each live row's generator.  Sizing trade-off: the refill
#: is the kernel's only per-row Python loop, so larger blocks amortize
#: it over more steps; draws prefetched past a row's end are simply
#: discarded (each row owns its generator, so the waste cannot perturb
#: any other row).  128 halves the loop frequency of the original 64
#: while keeping the buffer small (2 KiB per row); at R = 256 that is
#: the difference between ~4 and ~2 generator calls per kernel step.
REFILL_STEPS = 128

#: Column layout of :attr:`LockstepRaw.scalars` - one int64 row per
#: replicate, fixed width, so a whole ensemble's non-matrix outcome fits
#: one (R, :data:`N_SCALARS`) block that shared-memory workers can write
#: in place (see :mod:`repro.engine.parallel`).  ``leader_pos`` encodes
#: ``None`` as ``-1``; the leap columns stay zero on the exact batch
#: kernel (``has_leap`` on the raw says whether they are meaningful).
SCALAR_FIELDS = (
    "interactions",
    "events",
    "conv_at",
    "leader_pos",
    "leaps",
    "leap_interactions",
    "repairs",
    "ssa_rows",
)
N_SCALARS = len(SCALAR_FIELDS)

#: Scalar column indices by name (module-level so the parallel layer and
#: both lockstep kernels agree on one layout).
COL = {name: k for k, name in enumerate(SCALAR_FIELDS)}


@dataclass
class LockstepRaw:
    """A lockstep kernel's outcome before result materialization.

    ``counts`` is the final (R, S) counts matrix, ``scalars`` the
    (R, :data:`N_SCALARS`) per-replicate outcome block laid out by
    :data:`SCALAR_FIELDS`.  This is the whole result: the parallel
    layer transports exactly these two arrays over shared memory
    (workers write their row-slices in place) and
    :func:`materialize_raw` turns any row range into
    :class:`~repro.engine.simulator.SimulationResult` objects - the
    same function the serial path uses, so serial and sharded
    materialization are one code path.
    """

    counts: "object"  # (R, S) int64 ndarray
    scalars: "object"  # (R, N_SCALARS) int64 ndarray
    has_leap: bool
    wall_seconds: float

    @property
    def n_rows(self) -> int:
        return len(self.counts)


def materialize_raw(
    table,
    n_mobile: int,
    population: Population,
    display_name: str,
    raw: LockstepRaw,
    max_interactions: int,
    raise_on_timeout: bool,
    shards: int | None = None,
    shm_bytes: int | None = None,
    copy_bytes_saved: int | None = None,
) -> list[SimulationResult]:
    """Build per-replicate results from a kernel's raw arrays.

    Shared by the serial lockstep paths and the shared-memory parallel
    layer (which calls it on attached views), so both produce identical
    :class:`SimulationResult` objects: final configurations are lazy
    :class:`~repro.engine.counts.CountsConfiguration` representatives
    (O(S) per row - the O(N) expansion happens only if a caller looks),
    wall clock is attributed in equal per-row shares, and the optional
    ``shards``/``shm_bytes``/``copy_bytes_saved`` annotations land in
    each row's :class:`RunStats`.
    """
    n_rows = raw.n_rows
    share = raw.wall_seconds / n_rows if n_rows else 0.0
    scalars = raw.scalars
    has_leap = raw.has_leap
    results = []
    for r in range(n_rows):
        row = scalars[r]
        interactions = int(row[COL["interactions"]])
        non_null = int(row[COL["events"]])
        conv = int(row[COL["conv_at"]])
        converged_at = conv if conv >= 0 else None
        converged = converged_at is not None
        if not converged and raise_on_timeout:
            raise ConvergenceError(
                f"{display_name} did not converge "
                f"within {max_interactions} interactions",
                interactions=interactions,
            )
        leader_pos = int(row[COL["leader_pos"]])
        if has_leap:
            n_leaps = int(row[COL["leaps"]])
            leaps = n_leaps
            mean_tau = (
                int(row[COL["leap_interactions"]]) / n_leaps
                if n_leaps
                else 0.0
            )
            repairs = int(row[COL["repairs"]])
            ssa_fallback_rows = int(row[COL["ssa_rows"]])
        else:
            leaps = mean_tau = repairs = ssa_fallback_rows = None
        results.append(
            SimulationResult(
                converged=converged,
                interactions=interactions,
                non_null_interactions=non_null,
                final_configuration=materialize_counts_lazy(
                    table,
                    n_mobile,
                    raw.counts[r],
                    leader_pos if leader_pos >= 0 else None,
                ),
                population=population,
                trace=None,
                convergence_interaction=converged_at,
                faults_injected=0,
                stats=RunStats(
                    wall_seconds=share,
                    interactions_per_second=(
                        interactions / share if share > 0 else 0.0
                    ),
                    null_fraction=(
                        (interactions - non_null) / interactions
                        if interactions
                        else 0.0
                    ),
                    leaps=leaps,
                    mean_tau=mean_tau,
                    repairs=repairs,
                    ssa_fallback_rows=ssa_fallback_rows,
                    shards=shards,
                    shm_bytes=shm_bytes,
                    copy_bytes_saved=copy_bytes_saved,
                ),
            )
        )
    return results


class BatchedEnsembleSimulator:
    """Lockstep simulator for ensembles of replicate runs.

    Accepts the same constructor arguments and exposes the same
    single-run :meth:`run` contract as the other backends (registered as
    ``BACKENDS["batch"]``), plus :meth:`run_replicates`, which advances
    R replicates as one ``(R, S)`` counts matrix.  Runs served natively
    are statistically equivalent to the per-run counts backend (same
    Markov chain, same convergence semantics); ensembles the lockstep
    view cannot honour delegate to per-run
    :class:`~repro.engine.counts.CountSimulator` execution with a
    :class:`~repro.errors.BackendFallbackWarning`.
    :attr:`last_run_lockstep` reports which path served the last call.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`~repro.engine.simulator.Simulator`.  The
        constructor's scheduler seeds the single-run :meth:`run` path;
        :meth:`run_replicates` takes one scheduler per replicate.
    compile_limit:
        Largest state-space size eagerly compiled (shared with the fast
        and counts backends); larger protocols delegate.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        the lockstep kernel checks every active row of the counts matrix
        (nonnegative entries summing to the population size) at every
        kernel step and once on the final matrix; delegated runs inherit
        the counts backend's sanitizer.  Checks never consume
        randomness, so per-seed results are unchanged.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        sanitize: bool = False,
    ) -> None:
        # The counts simulator validates the wiring, compiles the shared
        # table/plan, and serves as the per-run fallback delegate (which
        # may itself continue down the ladder to fast/reference).
        self._counts = CountSimulator(
            protocol, population, scheduler, problem, check_interval,
            compile_limit, sanitize=sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._counts.check_interval
        self.sanitize = sanitize
        self._requested_check_interval = check_interval
        self._compile_limit = compile_limit
        self._table = self._counts._table
        self._plan = self._counts._plan
        #: Whether the most recent run/run_replicates used the lockstep
        #: kernel.
        self.last_run_lockstep = False

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Single-run contract (BACKENDS["batch"])
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute one run (a lockstep batch of size R = 1).

        Same parameters and semantics as :meth:`Simulator.run`; runs the
        lockstep kernel cannot honour delegate to the internal counts
        simulator (and onward down the backend ladder).
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        interned, leaders, reason = self._batch_preconditions(
            [initial], trace=trace, fault_hook=fault_hook, observer=observer
        )
        if reason is not None:
            warn_fallback("batch", "counts", reason)
            self.last_run_lockstep = False
            return self._counts.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_lockstep = True
        return self._run_lockstep(
            interned,
            leaders,
            [getattr(self.scheduler, "seed", None)],
            max_interactions,
            raise_on_timeout,
        )[0]

    # ------------------------------------------------------------------
    # Ensemble contract
    # ------------------------------------------------------------------

    def run_replicates(
        self,
        initials: "Sequence[Configuration]",
        schedulers: list[Scheduler],
        max_interactions: int = 1_000_000,
        raise_on_timeout: bool = False,
        fault_hook: FaultHook | None = None,
    ) -> list[SimulationResult]:
        """Run one replicate per (initial, scheduler) pair, in lockstep.

        Returns one :class:`SimulationResult` per replicate, in input
        order.  Replicate ``r`` draws only from a generator seeded with
        ``schedulers[r].seed``, so its result is independent of the other
        replicates and identical to a single-run :meth:`run` with the
        same seed.  Ensembles the lockstep kernel cannot honour fall back
        to per-run counts execution (one
        :class:`~repro.engine.counts.CountSimulator` per replicate).

        ``initials`` may be any sequence, including a lazy one (see
        :class:`repro.engine.ensemble._LazyInitials`): the native
        lockstep path consumes it in a single pass, interning each
        configuration as it is produced, so O(N)-sized configurations
        never need to exist all at once.
        """
        if len(initials) != len(schedulers):
            raise SimulationError(
                f"{len(initials)} initial configurations for "
                f"{len(schedulers)} schedulers"
            )
        if not len(initials):
            return []
        interned, leaders, reason = self._batch_preconditions(
            initials, schedulers=schedulers, fault_hook=fault_hook
        )
        if reason is not None:
            warn_fallback("batch", "counts", reason)
            self.last_run_lockstep = False
            results = []
            for initial, scheduler in zip(initials, schedulers):
                simulator = CountSimulator(
                    self.protocol,
                    self.population,
                    scheduler,
                    self.problem,
                    self._requested_check_interval,
                    self._compile_limit,
                    sanitize=self.sanitize,
                )
                results.append(
                    simulator.run(
                        initial,
                        max_interactions=max_interactions,
                        fault_hook=fault_hook,
                        raise_on_timeout=raise_on_timeout,
                    )
                )
            return results
        self.last_run_lockstep = True
        return self._run_lockstep(
            interned,
            leaders,
            [getattr(s, "seed", None) for s in schedulers],
            max_interactions,
            raise_on_timeout,
        )

    # ------------------------------------------------------------------
    # Lockstep preconditions
    # ------------------------------------------------------------------

    def _batch_preconditions(
        self,
        initials: "Sequence[Configuration]",
        schedulers: list[Scheduler] | None = None,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        observer: Observer | None = None,
    ) -> tuple[
        list[list[int]] | None, list[int | None] | None, str | None
    ]:
        """Intern every initial configuration, or explain why we cannot.

        Returns ``(rows, leader_positions, reason)``.  Size validation,
        interning and leader-position collection all happen in one pass
        over ``initials``, so lazy initial sequences are realized exactly
        once on the native path (each configuration can be garbage
        collected as soon as its counts row exists).
        """
        if _np is None:
            return None, None, (
                "NumPy is not installed (the lockstep kernel needs it)"
            )
        if self._table is None:
            return None, None, (
                "the protocol's state space could not be compiled to a "
                "transition table (unhashable, unenumerable or oversized)"
            )
        if not self._plan.closed:
            return None, None, (
                "a rule moves a state across the mobile/leader role "
                "boundary, so counts alone cannot identify the leader"
            )
        for scheduler in schedulers if schedulers is not None else [
            self.scheduler
        ]:
            if not getattr(scheduler, "uniform_pairs", False):
                return None, None, (
                    f"scheduler {scheduler.display_name!r} is not the "
                    "uniform-random pair scheduler (lockstep sampling "
                    "assumes independent uniform ordered pairs)"
                )
        if fault_hook is not None:
            return None, None, (
                "fault hooks rewrite per-agent configurations"
            )
        if trace is not None or observer is not None:
            return None, None, (
                "traces and observers need agent identities"
            )
        problem = self.problem
        if problem is not None:
            # The lockstep kernel evaluates convergence straight off the
            # counts rows, which is only exact for the naming predicate
            # (distinct names + silence); other problems would need a
            # per-row materialization per check boundary.
            if type(problem) is not NamingProblem:
                return None, None, (
                    "the lockstep kernel only certifies the naming "
                    "problem; other problems run per-replicate"
                )
            if not getattr(problem, "permutation_invariant", False):
                return None, None, (
                    "the problem is not permutation-invariant, so it "
                    "cannot be evaluated on a canonical representative"
                )
        rows: list[list[int]] = []
        leaders: list[int | None] = []
        for initial in initials:
            if len(initial) != self.population.size:
                raise SimulationError(
                    f"initial configuration has {len(initial)} agents, "
                    f"population has {self.population.size}"
                )
            counts, reason = intern_initial(
                self._table, self._plan.n_mobile, initial
            )
            if reason is not None:
                return None, None, reason
            rows.append(counts)
            leaders.append(initial.leader_index)
        return rows, leaders, None

    # ------------------------------------------------------------------
    # The lockstep kernel
    # ------------------------------------------------------------------

    def run_replicates_raw(
        self,
        initials: "Sequence[Configuration]",
        schedulers: list[Scheduler],
        max_interactions: int = 1_000_000,
        fault_hook: FaultHook | None = None,
    ) -> tuple[LockstepRaw | None, str | None]:
        """Run replicates natively, returning raw arrays instead of results.

        The entry point of the shared-memory parallel layer
        (:mod:`repro.engine.parallel`): on success the returned
        :class:`LockstepRaw` holds the final (R, S) counts matrix and
        the (R, N_SCALARS) outcome block, which a worker writes straight
        into a shared buffer - no per-replicate result objects, no
        pickling.  When the lockstep preconditions do not hold, returns
        ``(None, reason)`` **without** warning or falling back; the
        caller decides how to degrade (the parallel layer reruns the
        chunk through :meth:`run_replicates`, which warns once and
        delegates down the ladder).
        """
        if len(initials) != len(schedulers):
            raise SimulationError(
                f"{len(initials)} initial configurations for "
                f"{len(schedulers)} schedulers"
            )
        if not len(initials):
            return None, "empty replicate set"
        interned, leaders, reason = self._batch_preconditions(
            initials, schedulers=schedulers, fault_hook=fault_hook
        )
        if reason is not None:
            self.last_run_lockstep = False
            return None, reason
        self.last_run_lockstep = True
        return (
            self._lockstep_raw(
                interned,
                leaders,
                [getattr(s, "seed", None) for s in schedulers],
                max_interactions,
            ),
            None,
        )

    def _run_lockstep(
        self,
        rows: list[list[int]],
        leader_positions: list[int | None],
        seeds: list[int | None],
        max_interactions: int,
        raise_on_timeout: bool,
    ) -> list[SimulationResult]:
        """Advance all rows, then materialize per-replicate results."""
        raw = self._lockstep_raw(
            rows, leader_positions, seeds, max_interactions
        )
        return materialize_raw(
            self._table,
            self._plan.n_mobile,
            self.population,
            self.protocol.display_name,
            raw,
            max_interactions,
            raise_on_timeout,
        )

    def _lockstep_raw(
        self,
        rows: list[list[int]],
        leader_positions: list[int | None],
        seeds: list[int | None],
        max_interactions: int,
    ) -> LockstepRaw:
        """Advance all rows to silence, convergence or the budget."""
        np = _np
        started = time.perf_counter()
        plan = self._plan
        n_mobile = plan.n_mobile
        pair_i, pair_j, diag = plan.pair_i, plan.pair_j, plan.diag
        size = self.population.size
        total_pairs = size * (size - 1)
        check_interval = self.check_interval
        checking = self.problem is not None
        budget = max_interactions

        n_rows = len(rows)
        n_states = self._table.n_states
        C = np.asarray(rows, dtype=np.int64)
        C_flat = C.reshape(-1)
        pos = np.zeros(n_rows, dtype=np.int64)  # interactions, nulls included
        events = np.zeros(n_rows, dtype=np.int64)  # non-null interactions
        conv_at = np.full(n_rows, -1, dtype=np.int64)  # -1: not converged

        # Per-pair aggregate delta rows (-1 at the meeting pair, +1 at
        # the result pair): one gather + one in-place add applies a
        # whole step, replacing the four-way np.add.at scatter whose
        # unbuffered per-index loop dominated the step at small widths.
        delta_mat = _leap_plan_for(self.protocol, plan).deltas
        pair_cols = np.concatenate((pair_i, pair_j))
        n_pairs = pair_i.shape[0]

        # Per-row generators: a row's stream is a function of its own
        # seed, so results are invariant under batching and chunking.
        generators = [np.random.default_rng(seed) for seed in seeds]

        # Hot-loop state is *front-compacted*: the first ``n_act`` rows
        # of every working array are the live rows (aligned with
        # ``idx``), so the common no-drop step runs on contiguous view
        # slices of preallocated buffers - no per-step gather/scatter
        # into the full matrix, no per-step allocations, and the flat
        # gather index table is a fixed prefix slice.  ``pos``/``events``
        # are written back only when a row is dropped; a surviving row's
        # event count is simply the number of steps it participated in
        # (one event per step), tracked by ``steps_done``.
        idx = np.arange(n_rows, dtype=np.int64)
        C_act = C.copy()  # live working rows; written back to C on drop
        C_act_flat = C_act.reshape(-1)
        all_cols = (
            np.arange(n_rows, dtype=np.int64) * n_states
        )[:, None] + pair_cols
        # ``pos`` is carried as float64 in the hot loop: positions stay
        # exact (they are integers far below 2^53) and the geometric-gap
        # arithmetic then runs entirely inside one preallocated float
        # buffer, with no per-step astype allocation.
        pos_f = np.zeros(n_rows, dtype=np.float64)
        buffer = np.empty((n_rows, 2 * REFILL_STEPS))
        log_u1 = np.empty((n_rows, REFILL_STEPS))
        cnt_full = np.empty((n_rows, 2 * n_pairs), dtype=np.int64)
        w_full = np.empty((n_rows, n_pairs), dtype=np.int64)
        cum_full = np.empty((n_rows, n_pairs), dtype=np.int64)
        f_full = np.empty(n_rows, dtype=np.float64)
        t_full = np.empty(n_rows, dtype=np.float64)
        pick_full = np.empty((n_rows, n_pairs), dtype=bool)
        fi_full = np.empty(n_rows, dtype=np.int64)
        d_full = np.empty((n_rows, n_states), dtype=np.int64)
        n_act = n_rows
        step_in_buffer = REFILL_STEPS  # forces a refill on the first step
        steps_done = 0
        neg_inv_total = -1.0 / total_pairs

        def compact(keep: "np.ndarray") -> None:
            """Move the surviving rows to the front of every buffer."""
            nonlocal n_act
            survivors = int(keep.sum())
            C_act[:survivors] = C_act[:n_act][keep]
            pos_f[:survivors] = pos_f[:n_act][keep]
            buffer[:survivors] = buffer[:n_act][keep]
            log_u1[:survivors] = log_u1[:n_act][keep]
            cum_full[:survivors] = cum_full[:n_act][keep]
            n_act = survivors

        def views(n: int):
            """The hot-loop view bundle over the first ``n`` rows.

            Rebuilt only when the active set shrinks: every view is a
            GC-tracked allocation, and creating tens of them per step
            kept the young-generation collector cycling (and rescanning
            freshly materialized result tuples) for the whole kernel.
            """
            cnt = cnt_full[:n]
            cum = cum_full[:n]
            t = t_full[:n]
            weight = cum[:, -1] if n_pairs else np.zeros(n, dtype=np.int64)
            return (
                C_act[:n],
                cnt,
                cnt[:, :n_pairs],
                cnt[:, n_pairs:],
                w_full[:n],
                cum,
                weight,
                f_full[:n],
                t,
                t[:, None],
                pick_full[:n],
                fi_full[:n],
                d_full[:n],
                pos_f[:n],
                all_cols[:n],
                log_u1[:n],
                buffer[:n],
            )

        (
            C_v, cnt_v, ci_v, cj_v, w_v, cum_v, weight, fb, t_v, t_col,
            pick_v, fi_v, d_v, pos_v, cols_v, log_v, buf_v,
        ) = views(n_act)

        sanitizing = self.sanitize
        err_state = np.errstate(divide="ignore")
        err_state.__enter__()  # hoisted: ln(0) = -inf is expected at p = 1
        try:
            while n_act:
                if sanitizing:
                    # Kernel-step cadence: the previous step's add is
                    # the only writer of C_act, so corruption surfaces
                    # here.
                    _sanitize.check_counts_rows(
                        "batch", C_v, idx, size, steps_done
                    )
                C_act_flat.take(cols_v, out=cnt_v)
                np.subtract(cj_v, diag, out=w_v)
                np.multiply(ci_v, w_v, out=w_v)
                w_v.cumsum(axis=1, out=cum_v)
                # A silent row (weight 0, including the n_pairs == 0
                # degenerate protocol) is not tested for here: its
                # geometric gap comes out +inf, so the budget branch
                # below catches and finalizes it.  The uniforms it
                # consumes on the way are drawn from its own generator,
                # which is never touched again - every other row's
                # stream, and so every result, is unchanged.

                # -- two uniforms per active row per step, from its own
                # generator, via a buffered refill; the log of the u1
                # half is taken once per refill, vectorized --
                if step_in_buffer == REFILL_STEPS:
                    for i in range(n_act):
                        buf_v[i] = generators[idx[i]].random(
                            2 * REFILL_STEPS
                        )
                    np.log(
                        np.maximum(buf_v[:, 0::2], 1e-300), out=log_v
                    )
                    step_in_buffer = 0
                u1_log = log_v[:, step_in_buffer]
                u2 = buf_v[:, 2 * step_in_buffer + 1]
                step_in_buffer += 1

                # -- geometric gap to the next non-null event, by inverse
                # transform; p == 1 gives ln(0) = -inf and so gap 1,
                # while a silent row (p == 0) gives gap +inf.  ``u1`` is
                # clamped away from 0 so the finite ratios never
                # overflow: with weight >= 1 the gap is at most
                # ~690 * N(N-1), comfortably inside float64's exact-int
                # range.  ``fb`` ends the block holding the candidate
                # new positions (pos + floor(gap) + 1) --
                np.multiply(weight, neg_inv_total, out=fb)
                np.log1p(fb, out=fb)
                np.divide(u1_log, fb, out=fb)
                np.floor(fb, out=fb)
                np.add(fb, 1.0, out=fb)
                np.add(fb, pos_v, out=fb)

                # -- budget exhausted mid-gap (or silent: gap +inf);
                # finalize and drop the row --
                if fb.max() > budget:
                    over = fb > budget
                    oidx = idx[over]
                    events[oidx] = steps_done
                    C[oidx] = C_v[over]
                    pos[oidx] = budget
                    if checking:
                        # Naming is solved iff silent with all mobile
                        # counts <= 1; the verdict can only be delivered
                        # at a check boundary, the first one at/after
                        # the last event (capped at the budget) - the
                        # position the per-run backends report.  A row
                        # that merely ran out of budget ends not
                        # silent, so its check cannot pass.
                        wz = weight[over] == 0
                        if wz.any():
                            sidx = oidx[wz]
                            spos = pos_v[over][wz].astype(np.int64)
                            distinct = (
                                C[sidx, :n_mobile] < 2
                            ).all(axis=1)
                            at = np.minimum(
                                spos + (-spos) % check_interval, budget
                            )
                            converged = sidx[distinct]
                            conv_at[converged] = at[distinct]
                            pos[converged] = at[distinct]
                    keep = ~over
                    idx = idx[keep]
                    npos_kept = fb[keep]
                    u2 = u2[keep]  # fancy copy, taken before compaction
                    compact(keep)
                    if not n_act:
                        continue
                    (
                        C_v, cnt_v, ci_v, cj_v, w_v, cum_v, weight, fb,
                        t_v, t_col, pick_v, fi_v, d_v, pos_v, cols_v,
                        log_v, buf_v,
                    ) = views(n_act)
                    pos_v[:] = npos_kept
                else:
                    pos_v[:] = fb

                # -- categorical event pick over the row's true weights --
                np.multiply(u2, weight, out=t_v)
                np.less_equal(cum_v, t_col, out=pick_v)
                np.add.reduce(pick_v, axis=1, out=fi_v)

                # -- apply the transitions: each row moves by its
                # event's aggregate delta row, added in place to the
                # compacted working rows --
                delta_mat.take(fi_v, axis=0, out=d_v)
                np.add(C_v, d_v, out=C_v)
                steps_done += 1
        finally:
            err_state.__exit__(None, None, None)

        if sanitizing:
            _sanitize.check_counts_rows(
                "batch",
                C,
                np.arange(n_rows, dtype=np.int64),
                size,
                steps_done,
            )

        elapsed = time.perf_counter() - started
        scalars = np.zeros((n_rows, N_SCALARS), dtype=np.int64)
        scalars[:, COL["interactions"]] = pos
        scalars[:, COL["events"]] = events
        scalars[:, COL["conv_at"]] = conv_at
        scalars[:, COL["leader_pos"]] = [
            -1 if p is None else p for p in leader_positions
        ]
        return LockstepRaw(
            counts=C,
            scalars=scalars,
            has_leap=False,
            wall_seconds=elapsed,
        )


BACKENDS["batch"] = BatchedEnsembleSimulator
