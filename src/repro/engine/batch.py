"""The batched ensemble backend: R replicate runs advanced in lockstep.

The experiment suites (convergence-rate curves, Table 1 certification,
expected-naming-time estimates) are ensembles: hundreds of independent
replicates of the *same* protocol on the *same* population size, differing
only in their random seed.  The per-run backends - even the O(1)
:class:`~repro.engine.counts.CountSimulator` - pay Python-interpreter
overhead per replicate per event.  This module removes it: because every
replicate lives on the same interned state space, an ensemble is a single
``(R, S)`` counts **matrix** ``C`` whose row ``r`` is replicate ``r``'s
counts vector, and one NumPy kernel step advances *every* unfinished
replicate by exactly one non-null event.

Kernel step (all arrays masked to the active rows)
--------------------------------------------------

1.  **True weights.**  ``w[r, f] = C[r, i_f] * (C[r, j_f] - [i_f = j_f])``
    for every non-null pair ``f`` of the precompiled
    :class:`~repro.engine.fast.TransitionTable`; ``W[r] = w[r].sum()``.
    This generalizes the counts backend's sampler to a row axis - and
    because the weights are recomputed from the *current* counts each
    step, no envelope or thinning is needed: every draw is already exact.
2.  **Silence.**  Rows with ``W == 0`` are frozen forever (every
    realizable meeting is null); they leave the kernel via the row mask,
    without resizing the matrix.
3.  **Geometric gap.**  The run of nulls before the next non-null event
    is ``Geometric(p)`` with ``p = W / N(N-1)``, drawn for all rows at
    once by inverse transform: ``gap = 1 + floor(ln u1 / ln(1 - p))``.
    Rows whose gap crosses the interaction budget stop (a naming run
    that is not yet silent cannot be converged, so no final check is
    needed beyond the silent case).
4.  **Event.**  The event index is categorical over the row's weights:
    ``f = #{cum w <= u2 * W}``; the four count updates per row are
    scattered into ``C`` with duplicate-safe ``np.add.at``.

Randomness and reproducibility
------------------------------

Every row draws from its **own** :class:`numpy.random.Generator`, seeded
with its scheduler's seed, and consumes exactly two uniforms per kernel
step it participates in.  A row's trajectory is therefore a function of
its seed alone - independent of the other rows in the batch, of the batch
size, and of how an ensemble is chunked across worker processes.  Serial,
parallel and single-run executions of the same seed are bit-identical.

Exactness contract (the documented sampling-equivalence tolerance)
------------------------------------------------------------------

Like the counts backend, the lockstep path is *distribution-exact*: it
simulates the identical counts Markov chain, with identical
convergence-check semantics (checks fire at ``check_interval``
boundaries; a silent-and-distinct row converges at the first boundary at
or after its last event, capped at the budget).  It is **not**
stream-identical to any per-run backend - it consumes a different
randomness stream - so per-seed results agree with per-run ``counts``
execution in *verdict* (named/silent, duplicate-frozen, budget-exhausted
is a.s. identical for almost-surely-converging workloads) while
interaction counts are independent draws from the same distribution.
Tests bound per-seed interaction counts within an order of magnitude and
compare the ensembles distributionally (KS), mirroring
``tests/engine/test_counts.py``.

Ensembles the lockstep view cannot honour - non-uniform schedulers,
fault hooks, traces/observers, problems that are not the
permutation-invariant naming problem, open-role protocols, missing
NumPy - fall back to per-run :class:`~repro.engine.counts.CountSimulator`
execution (which continues down the ladder ``counts -> fast ->
reference``), with a :class:`~repro.errors.BackendFallbackWarning` naming
the reason.
"""

from __future__ import annotations

import time

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.counts import (
    CountSimulator,
    intern_initial,
    materialize_counts,
)
from repro.engine.fast import BACKENDS, DEFAULT_COMPILE_LIMIT, warn_fallback
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
)
from repro.engine.trace import Trace
from repro.errors import ConvergenceError, SimulationError
from repro.schedulers.base import Scheduler

try:  # NumPy powers the lockstep kernel; without it the backend delegates.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None

#: Kernel steps between per-row uniform-buffer refills.  Each active row
#: consumes two uniforms per step, so a refill draws ``2 * REFILL_STEPS``
#: values from each live row's generator - large enough to amortize the
#: per-row Python call, small enough not to waste draws on finished rows.
REFILL_STEPS = 64


class BatchedEnsembleSimulator:
    """Lockstep simulator for ensembles of replicate runs.

    Accepts the same constructor arguments and exposes the same
    single-run :meth:`run` contract as the other backends (registered as
    ``BACKENDS["batch"]``), plus :meth:`run_replicates`, which advances
    R replicates as one ``(R, S)`` counts matrix.  Runs served natively
    are statistically equivalent to the per-run counts backend (same
    Markov chain, same convergence semantics); ensembles the lockstep
    view cannot honour delegate to per-run
    :class:`~repro.engine.counts.CountSimulator` execution with a
    :class:`~repro.errors.BackendFallbackWarning`.
    :attr:`last_run_lockstep` reports which path served the last call.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`~repro.engine.simulator.Simulator`.  The
        constructor's scheduler seeds the single-run :meth:`run` path;
        :meth:`run_replicates` takes one scheduler per replicate.
    compile_limit:
        Largest state-space size eagerly compiled (shared with the fast
        and counts backends); larger protocols delegate.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        the lockstep kernel checks every active row of the counts matrix
        (nonnegative entries summing to the population size) at every
        kernel step and once on the final matrix; delegated runs inherit
        the counts backend's sanitizer.  Checks never consume
        randomness, so per-seed results are unchanged.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        sanitize: bool = False,
    ) -> None:
        # The counts simulator validates the wiring, compiles the shared
        # table/plan, and serves as the per-run fallback delegate (which
        # may itself continue down the ladder to fast/reference).
        self._counts = CountSimulator(
            protocol, population, scheduler, problem, check_interval,
            compile_limit, sanitize=sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._counts.check_interval
        self.sanitize = sanitize
        self._requested_check_interval = check_interval
        self._compile_limit = compile_limit
        self._table = self._counts._table
        self._plan = self._counts._plan
        #: Whether the most recent run/run_replicates used the lockstep
        #: kernel.
        self.last_run_lockstep = False

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Single-run contract (BACKENDS["batch"])
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute one run (a lockstep batch of size R = 1).

        Same parameters and semantics as :meth:`Simulator.run`; runs the
        lockstep kernel cannot honour delegate to the internal counts
        simulator (and onward down the backend ladder).
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        interned, reason = self._batch_preconditions(
            [initial], trace=trace, fault_hook=fault_hook, observer=observer
        )
        if reason is not None:
            warn_fallback("batch", "counts", reason)
            self.last_run_lockstep = False
            return self._counts.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_lockstep = True
        return self._run_lockstep(
            interned,
            [initial.leader_index],
            [getattr(self.scheduler, "seed", None)],
            max_interactions,
            raise_on_timeout,
        )[0]

    # ------------------------------------------------------------------
    # Ensemble contract
    # ------------------------------------------------------------------

    def run_replicates(
        self,
        initials: list[Configuration],
        schedulers: list[Scheduler],
        max_interactions: int = 1_000_000,
        raise_on_timeout: bool = False,
        fault_hook: FaultHook | None = None,
    ) -> list[SimulationResult]:
        """Run one replicate per (initial, scheduler) pair, in lockstep.

        Returns one :class:`SimulationResult` per replicate, in input
        order.  Replicate ``r`` draws only from a generator seeded with
        ``schedulers[r].seed``, so its result is independent of the other
        replicates and identical to a single-run :meth:`run` with the
        same seed.  Ensembles the lockstep kernel cannot honour fall back
        to per-run counts execution (one
        :class:`~repro.engine.counts.CountSimulator` per replicate).
        """
        if len(initials) != len(schedulers):
            raise SimulationError(
                f"{len(initials)} initial configurations for "
                f"{len(schedulers)} schedulers"
            )
        if not initials:
            return []
        for initial in initials:
            if len(initial) != self.population.size:
                raise SimulationError(
                    f"initial configuration has {len(initial)} agents, "
                    f"population has {self.population.size}"
                )
        interned, reason = self._batch_preconditions(
            initials, schedulers=schedulers, fault_hook=fault_hook
        )
        if reason is not None:
            warn_fallback("batch", "counts", reason)
            self.last_run_lockstep = False
            results = []
            for initial, scheduler in zip(initials, schedulers):
                simulator = CountSimulator(
                    self.protocol,
                    self.population,
                    scheduler,
                    self.problem,
                    self._requested_check_interval,
                    self._compile_limit,
                    sanitize=self.sanitize,
                )
                results.append(
                    simulator.run(
                        initial,
                        max_interactions=max_interactions,
                        fault_hook=fault_hook,
                        raise_on_timeout=raise_on_timeout,
                    )
                )
            return results
        self.last_run_lockstep = True
        return self._run_lockstep(
            interned,
            [initial.leader_index for initial in initials],
            [getattr(s, "seed", None) for s in schedulers],
            max_interactions,
            raise_on_timeout,
        )

    # ------------------------------------------------------------------
    # Lockstep preconditions
    # ------------------------------------------------------------------

    def _batch_preconditions(
        self,
        initials: list[Configuration],
        schedulers: list[Scheduler] | None = None,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        observer: Observer | None = None,
    ) -> tuple[list[list[int]] | None, str | None]:
        """Intern every initial configuration, or explain why we cannot."""
        if _np is None:
            return None, "NumPy is not installed (the lockstep kernel needs it)"
        if self._table is None:
            return None, (
                "the protocol's state space could not be compiled to a "
                "transition table (unhashable, unenumerable or oversized)"
            )
        if not self._plan.closed:
            return None, (
                "a rule moves a state across the mobile/leader role "
                "boundary, so counts alone cannot identify the leader"
            )
        for scheduler in schedulers if schedulers is not None else [
            self.scheduler
        ]:
            if not getattr(scheduler, "uniform_pairs", False):
                return None, (
                    f"scheduler {scheduler.display_name!r} is not the "
                    "uniform-random pair scheduler (lockstep sampling "
                    "assumes independent uniform ordered pairs)"
                )
        if fault_hook is not None:
            return None, "fault hooks rewrite per-agent configurations"
        if trace is not None or observer is not None:
            return None, "traces and observers need agent identities"
        problem = self.problem
        if problem is not None:
            # The lockstep kernel evaluates convergence straight off the
            # counts rows, which is only exact for the naming predicate
            # (distinct names + silence); other problems would need a
            # per-row materialization per check boundary.
            if type(problem) is not NamingProblem:
                return None, (
                    "the lockstep kernel only certifies the naming "
                    "problem; other problems run per-replicate"
                )
            if not getattr(problem, "permutation_invariant", False):
                return None, (
                    "the problem is not permutation-invariant, so it "
                    "cannot be evaluated on a canonical representative"
                )
        rows: list[list[int]] = []
        for initial in initials:
            counts, reason = intern_initial(
                self._table, self._plan.n_mobile, initial
            )
            if reason is not None:
                return None, reason
            rows.append(counts)
        return rows, None

    # ------------------------------------------------------------------
    # The lockstep kernel
    # ------------------------------------------------------------------

    def _run_lockstep(
        self,
        rows: list[list[int]],
        leader_positions: list[int | None],
        seeds: list[int | None],
        max_interactions: int,
        raise_on_timeout: bool,
    ) -> list[SimulationResult]:
        """Advance all rows to silence, convergence or the budget."""
        np = _np
        started = time.perf_counter()
        plan = self._plan
        n_mobile = plan.n_mobile
        pair_i, pair_j, diag = plan.pair_i, plan.pair_j, plan.diag
        res_i, res_j = plan.res_i, plan.res_j
        size = self.population.size
        total_pairs = size * (size - 1)
        check_interval = self.check_interval
        checking = self.problem is not None
        budget = max_interactions

        n_rows = len(rows)
        n_states = self._table.n_states
        C = np.asarray(rows, dtype=np.int64)
        C_flat = C.reshape(-1)
        pos = np.zeros(n_rows, dtype=np.int64)  # interactions, nulls included
        events = np.zeros(n_rows, dtype=np.int64)  # non-null interactions
        conv_at = np.full(n_rows, -1, dtype=np.int64)  # -1: not converged

        # The four scatter columns of every non-null pair, one row per
        # event index: [pair_i, pair_j, res_i, res_j], with the matching
        # unit deltas (-1, -1, +1, +1), pre-tiled for the full batch.
        col_quad = np.stack((pair_i, pair_j, res_i, res_j), axis=1)
        deltas = np.tile(np.array([-1, -1, 1, 1], dtype=np.int64), n_rows)
        # Both count gathers in one fancy-index call per step.
        pair_cols = np.concatenate((pair_i, pair_j))
        n_pairs = pair_i.shape[0]

        # Per-row generators: a row's stream is a function of its own
        # seed, so results are invariant under batching and chunking.
        generators = [np.random.default_rng(seed) for seed in seeds]

        # Hot-loop state lives in arrays *compacted to the active rows*
        # (aligned with ``idx``), so the common no-drop step runs on
        # whole arrays with no per-step gather/scatter.  ``pos``/``events``
        # are written back only when a row is dropped; a surviving row's
        # event count is simply the number of steps it participated in
        # (one event per step), tracked by ``steps_done``.
        idx = np.arange(n_rows, dtype=np.int64)
        rows2d = idx[:, None]
        base = idx * n_states
        pos_act = np.zeros(n_rows, dtype=np.int64)
        buffer = np.empty((n_rows, 2 * REFILL_STEPS))
        log_u1 = np.empty((n_rows, REFILL_STEPS))
        step_in_buffer = REFILL_STEPS  # forces a refill on the first step
        steps_done = 0
        neg_inv_total = -1.0 / total_pairs

        sanitizing = self.sanitize
        err_state = np.errstate(divide="ignore")
        err_state.__enter__()  # hoisted: ln(0) = -inf is expected at p = 1
        try:
            while idx.size:
                if sanitizing:
                    # Kernel-step cadence: the previous step's scatter is
                    # the only writer of C, so corruption surfaces here.
                    _sanitize.check_counts_rows(
                        "batch", C[idx], idx, size, steps_done
                    )
                counts = C[rows2d, pair_cols]
                w = counts[:, :n_pairs] * (counts[:, n_pairs:] - diag)
                cum = np.cumsum(w, axis=1)
                # A protocol with no non-null pairs at all (n_pairs == 0)
                # is silent everywhere; every row freezes on entry.
                weight = (
                    cum[:, -1]
                    if n_pairs
                    else np.zeros(idx.size, dtype=np.int64)
                )

                # -- silence: frozen forever; finalize and drop the row --
                if not weight.all():
                    silent = weight == 0
                    sidx = idx[silent]
                    spos = pos_act[silent]
                    events[sidx] = steps_done
                    if checking:
                        # Naming is solved iff silent with all mobile
                        # counts <= 1; the verdict can only be delivered
                        # at a check boundary, the first one at/after the
                        # last event (capped at the budget) - the position
                        # the per-run backends report.
                        distinct = (C[sidx, :n_mobile] < 2).all(axis=1)
                        at = np.minimum(
                            spos + (-spos) % check_interval, budget
                        )
                        converged = sidx[distinct]
                        conv_at[converged] = at[distinct]
                        pos[converged] = at[distinct]
                        pos[sidx[~distinct]] = budget
                    else:
                        pos[sidx] = budget
                    keep = ~silent
                    idx = idx[keep]
                    if not idx.size:
                        break
                    rows2d = idx[:, None]
                    base = idx * n_states
                    pos_act = pos_act[keep]
                    buffer = buffer[keep]
                    log_u1 = log_u1[keep]
                    cum = cum[keep]
                    weight = cum[:, -1]

                # -- two uniforms per active row per step, from its own
                # generator, via a buffered refill; the log of the u1
                # half is taken once per refill, vectorized --
                if step_in_buffer == REFILL_STEPS:
                    for i, r in enumerate(idx):
                        buffer[i] = generators[r].random(2 * REFILL_STEPS)
                    np.log(
                        np.maximum(buffer[:, 0::2], 1e-300), out=log_u1
                    )
                    step_in_buffer = 0
                u1_log = log_u1[:, step_in_buffer]
                u2 = buffer[:, 2 * step_in_buffer + 1]
                step_in_buffer += 1

                # -- geometric gap to the next non-null event, by inverse
                # transform; p == 1 gives ln(0) = -inf and so gap 1.
                # ``u1`` is clamped away from 0 so the ratio never
                # overflows: with weight >= 1 the gap is at most
                # ~690 * N(N-1), comfortably inside int64 --
                gap = (
                    u1_log / np.log1p(weight * neg_inv_total)
                ).astype(np.int64)
                npos = pos_act + gap + 1

                # -- budget exhausted mid-gap: the row ends not silent,
                # so a naming check cannot pass; freeze at the budget --
                if npos.max() > budget:
                    over = npos > budget
                    oidx = idx[over]
                    pos[oidx] = budget
                    events[oidx] = steps_done
                    keep = ~over
                    idx = idx[keep]
                    if not idx.size:
                        continue
                    rows2d = idx[:, None]
                    base = idx * n_states
                    pos_act = pos_act[keep]
                    buffer = buffer[keep]
                    log_u1 = log_u1[keep]
                    cum = cum[keep]
                    weight = cum[:, -1]
                    npos = npos[keep]
                    u2 = u2[keep]
                pos_act = npos

                # -- categorical event pick over the row's true weights --
                f = (cum <= (u2 * weight)[:, None]).sum(axis=1)

                # -- apply the transitions: four unit updates per row,
                # scattered in one duplicate-safe (unbuffered) call --
                flat = base[:, None] + col_quad[f]
                np.add.at(
                    C_flat, flat.reshape(-1), deltas[: 4 * flat.shape[0]]
                )
                steps_done += 1
        finally:
            err_state.__exit__(None, None, None)

        if sanitizing:
            _sanitize.check_counts_rows(
                "batch",
                C,
                np.arange(n_rows, dtype=np.int64),
                size,
                steps_done,
            )

        elapsed = time.perf_counter() - started
        # Attribute each replicate an equal share of the batch's wall
        # clock, so ensemble-aggregated totals reflect the real elapsed
        # time and mean per-run rates sum to the batch throughput.
        share = elapsed / n_rows if n_rows else 0.0
        results = []
        for r in range(n_rows):
            interactions = int(pos[r])
            non_null = int(events[r])
            converged_at = int(conv_at[r]) if conv_at[r] >= 0 else None
            converged = converged_at is not None
            if not converged and raise_on_timeout:
                raise ConvergenceError(
                    f"{self.protocol.display_name} did not converge "
                    f"within {max_interactions} interactions",
                    interactions=interactions,
                )
            results.append(
                SimulationResult(
                    converged=converged,
                    interactions=interactions,
                    non_null_interactions=non_null,
                    final_configuration=materialize_counts(
                        self._table,
                        n_mobile,
                        [int(k) for k in C[r]],
                        leader_positions[r],
                    ),
                    population=self.population,
                    trace=None,
                    convergence_interaction=converged_at,
                    faults_injected=0,
                    stats=RunStats(
                        wall_seconds=share,
                        interactions_per_second=(
                            interactions / share if share > 0 else 0.0
                        ),
                        null_fraction=(
                            (interactions - non_null) / interactions
                            if interactions
                            else 0.0
                        ),
                    ),
                )
            )
        return results


BACKENDS["batch"] = BatchedEnsembleSimulator
