"""Ensemble runs: many seeds, one summary.

The experiments repeatedly follow the same pattern - build a fresh
scheduler per seed, run to certified convergence, aggregate.  This module
makes that pattern a public API so downstream users measure their own
protocols the same way the reproduction measures the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.stats import Summary, summarize
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import SimulationResult, Simulator
from repro.errors import ConvergenceError
from repro.schedulers.base import Scheduler

#: Builds a fresh scheduler for a seed.
SchedulerFactory = Callable[[Population, int], Scheduler]

#: Builds the initial configuration for a seed.
InitialFactory = Callable[[Population, int], Configuration]


@dataclass
class EnsembleResult:
    """Aggregated outcome of an ensemble of runs."""

    results: list[SimulationResult] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)

    @property
    def convergence_rate(self) -> float:
        """Fraction of runs that reached certified convergence."""
        if not self.results:
            return 0.0
        return sum(r.converged for r in self.results) / len(self.results)

    def convergence_summary(self) -> Summary:
        """Summary of interactions-to-convergence over converged runs.

        Raises :class:`ConvergenceError` when no run converged.
        """
        sample = [
            r.convergence_interaction
            for r in self.results
            if r.converged and r.convergence_interaction is not None
        ]
        if not sample:
            raise ConvergenceError("no run in the ensemble converged")
        return summarize(sample)

    def failed_seeds(self) -> list[int]:
        """Seeds whose runs did not converge."""
        return [
            seed
            for seed, result in zip(self.seeds, self.results)
            if not result.converged
        ]


def run_ensemble(
    protocol: PopulationProtocol,
    population: Population,
    scheduler_factory: SchedulerFactory,
    initial_factory: InitialFactory,
    problem: Problem,
    seeds: Sequence[int],
    max_interactions: int = 1_000_000,
    require_convergence: bool = False,
) -> EnsembleResult:
    """Run the protocol once per seed and aggregate.

    Parameters
    ----------
    scheduler_factory, initial_factory:
        Called with ``(population, seed)`` for every seed, so runs are
        independent and reproducible.
    require_convergence:
        When true, the first non-converged run raises
        :class:`ConvergenceError` (carrying the offending seed in its
        message) instead of being recorded.
    """
    ensemble = EnsembleResult()
    for seed in seeds:
        scheduler = scheduler_factory(population, seed)
        simulator = Simulator(protocol, population, scheduler, problem)
        initial = initial_factory(population, seed)
        result = simulator.run(initial, max_interactions=max_interactions)
        if require_convergence and not result.converged:
            raise ConvergenceError(
                f"seed {seed} did not converge within "
                f"{max_interactions} interactions",
                interactions=result.interactions,
            )
        ensemble.results.append(result)
        ensemble.seeds.append(seed)
    return ensemble
