"""Ensemble runs: many seeds, one summary.

The experiments repeatedly follow the same pattern - build a fresh
scheduler per seed, run to certified convergence, aggregate.  This module
makes that pattern a public API so downstream users measure their own
protocols the same way the reproduction measures the paper's.

Ensembles can run on any registered simulation backend (see
:data:`repro.engine.fast.BACKENDS`).  The default, ``"auto"``, picks an
engine by population size: fluid-scale ensembles (``N >=``
:data:`FLUID_MIN_POPULATION`) run per-seed on ``"fluid"``
(:class:`~repro.engine.fluid.FluidSimulator`: mean-field ODE
fast-forward handing off to stochastic leap windows), large-N ensembles
(``N >=`` :data:`BLEAP_MIN_POPULATION`) on ``"bleap"``
(:class:`~repro.engine.bleap.BatchedLeapSimulator`: the whole ensemble
as one ``(R, S)`` counts matrix advanced by per-row adaptive multinomial
tau-leap windows), smaller ones on the exact ``"batch"`` engine
(:class:`~repro.engine.batch.BatchedEnsembleSimulator`: the same matrix
advanced one event per row per step).  Each falls down the ladder
(``fluid -> leap -> counts -> ...``; ``bleap -> batch -> counts -> fast
-> reference``) with a structured
:class:`~repro.errors.BackendFallbackWarning` when a scheduler, problem
or protocol cannot be honoured natively.  The approximate per-run
``"leap"`` backend (:mod:`repro.engine.leap`) remains available for
single very large runs; it falls back down ``leap -> counts -> fast ->
reference`` the same way.  Because per-seed runs are
independent, every backend also fans out across processes (``n_jobs >
1``, with seeds dispatched to workers in contiguous chunks - each worker
running its chunk as its own lockstep batch under ``"batch"``/
``"bleap"``).  Parallel runs return seed-identical results to serial
runs; the only requirement is that the protocol, problem, factories and
fault hook are picklable (module-level callables, not lambdas).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.stats import Summary, summarize
from repro.engine.configuration import Configuration
from repro.engine.fast import make_simulator
from repro.engine.population import Population
from repro.engine.problems import Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import FaultHook, RunStats, SimulationResult
from repro.errors import ConvergenceError
from repro.schedulers.base import Scheduler

#: Smallest population for which ``backend="auto"`` picks the windowed
#: ``"bleap"`` engine over the exact ``"batch"`` engine.  Below this the
#: adaptive tau rarely clears the leap thresholds (the kernel would
#: merely re-route every row through its per-row exact-SSA fallback,
#: slower than the batch engine's vectorized single-event steps); above
#: it whole windows of ``leap_eps * N`` events collapse into one draw.
BLEAP_MIN_POPULATION = 10_000

#: Smallest population for which ``backend="auto"`` picks the per-seed
#: ``"fluid"`` engine over the lockstep ``"bleap"`` engine.  Above this
#: the mean-field ODE fast-forward amortizes its integration steps over
#: millions of interactions per step and the counts-native pipeline
#: skips the O(N) agent-vector round-trip that starts to dominate
#: lockstep runs; below it the stochastic windows do all the work
#: anyway and lockstep batching wins.
FLUID_MIN_POPULATION = 1_000_000

#: Builds a fresh scheduler for a seed.
SchedulerFactory = Callable[[Population, int], Scheduler]

#: Builds the initial configuration for a seed.
InitialFactory = Callable[[Population, int], Configuration]


@dataclass
class EnsembleResult:
    """Aggregated outcome of an ensemble of runs."""

    results: list[SimulationResult] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)

    @property
    def convergence_rate(self) -> float:
        """Fraction of runs that reached certified convergence."""
        if not self.results:
            return 0.0
        return sum(r.converged for r in self.results) / len(self.results)

    def convergence_summary(self) -> Summary:
        """Summary of interactions-to-convergence over converged runs.

        Raises :class:`ConvergenceError` when no run converged.
        """
        sample = [
            r.convergence_interaction
            for r in self.results
            if r.converged and r.convergence_interaction is not None
        ]
        if not sample:
            raise ConvergenceError("no run in the ensemble converged")
        return summarize(sample)

    def failed_seeds(self) -> list[int]:
        """Seeds whose runs did not converge."""
        return [
            seed
            for seed, result in zip(self.seeds, self.results)
            if not result.converged
        ]

    @property
    def stats(self) -> RunStats | None:
        """Aggregated :class:`RunStats` over the ensemble's runs.

        ``wall_seconds`` totals the per-run wall clocks (lockstep batches
        attribute each replicate an equal share of the batch, so the
        total reflects real elapsed simulation time);
        ``interactions_per_second`` is the mean of the per-run rates,
        which for a lockstep batch sums back to the batch throughput;
        ``null_fraction`` is computed over the pooled interactions.
        ``None`` when no run carries stats.

        When the ensemble ran on a windowed backend (``"leap"`` or
        ``"bleap"``) the per-row leap fields are aggregated too:
        ``leaps`` and ``repairs`` are summed, ``mean_tau`` is the
        leap-weighted mean window length over all rows, and
        ``ssa_fallback_rows`` counts the replicates that ever advanced
        by exact-SSA bursts (``"bleap"`` only).  They stay ``None`` on
        exact backends.

        When the ensemble ran on the ``"fluid"`` backend the fluid
        fields are aggregated as well: ``ode_steps`` sums the RK4 steps
        over all runs, ``handoff_time`` is the mean handoff interaction
        position, and ``handoff_backend`` is carried through when every
        run handed off to the same engine.

        When the ensemble ran sharded over shared memory
        (:mod:`repro.engine.parallel`) the transport fields are carried
        too: ``shards`` and ``shm_bytes`` describe the one shared
        allocation (identical on every row, so they carry through
        rather than sum) and ``copy_bytes_saved`` sums the result bytes
        that crossed the process boundary in place instead of pickled.
        """
        timed = [r for r in self.results if r.stats is not None]
        if not timed:
            return None
        interactions = sum(r.interactions for r in timed)
        non_null = sum(r.non_null_interactions for r in timed)
        leaped = [r.stats for r in timed if r.stats.leaps is not None]
        fluid = [r.stats for r in timed if r.stats.ode_steps is not None]
        ode_steps = handoff_time = handoff_backend = None
        if fluid:
            ode_steps = sum(s.ode_steps for s in fluid)
            handoff_time = (
                sum(s.handoff_time or 0.0 for s in fluid) / len(fluid)
            )
            delegates = {s.handoff_backend for s in fluid}
            if len(delegates) == 1:
                handoff_backend = delegates.pop()
        leaps = mean_tau = repairs = ssa_fallback_rows = None
        if leaped:
            leaps = sum(s.leaps for s in leaped)
            # Per run, mean_tau * leaps recovers the interactions the
            # windows covered, so the pooled mean is leap-weighted.
            mean_tau = (
                sum(s.mean_tau * s.leaps for s in leaped) / leaps
                if leaps
                else 0.0
            )
            repairs = sum(s.repairs or 0 for s in leaped)
            ssa = [
                s.ssa_fallback_rows
                for s in leaped
                if s.ssa_fallback_rows is not None
            ]
            ssa_fallback_rows = sum(ssa) if ssa else None
        shards = shm_bytes = copy_bytes_saved = None
        sharded = [r.stats for r in timed if r.stats.shards is not None]
        if sharded:
            # Every sharded row describes the same single allocation, so
            # shards/shm_bytes carry through; copy_bytes_saved is per
            # row, so summing it totals the job's un-pickled bytes.
            shards = max(s.shards for s in sharded)
            shm_bytes = max(s.shm_bytes or 0 for s in sharded)
            copy_bytes_saved = sum(s.copy_bytes_saved or 0 for s in sharded)
        return RunStats(
            wall_seconds=sum(r.stats.wall_seconds for r in timed),
            interactions_per_second=(
                sum(r.stats.interactions_per_second for r in timed)
                / len(timed)
            ),
            null_fraction=(
                (interactions - non_null) / interactions
                if interactions
                else 0.0
            ),
            leaps=leaps,
            mean_tau=mean_tau,
            repairs=repairs,
            ssa_fallback_rows=ssa_fallback_rows,
            ode_steps=ode_steps,
            handoff_time=handoff_time,
            handoff_backend=handoff_backend,
            shards=shards,
            shm_bytes=shm_bytes,
            copy_bytes_saved=copy_bytes_saved,
        )


def _run_single(task: tuple) -> SimulationResult:
    """Run one seed of an ensemble.

    Module-level (rather than a closure) so that process pools can pickle
    it; used identically by the serial path to keep the two code paths
    seed-identical.
    """
    (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        seed,
        max_interactions,
        backend,
        check_interval,
        raise_on_timeout,
        fault_hook,
        sanitize,
    ) = task
    scheduler = scheduler_factory(population, seed)
    simulator = make_simulator(
        backend, protocol, population, scheduler, problem, check_interval,
        sanitize=sanitize,
    )
    initial = initial_factory(population, seed)
    return simulator.run(
        initial,
        max_interactions=max_interactions,
        fault_hook=fault_hook,
        raise_on_timeout=raise_on_timeout,
    )


def _run_chunk(task: tuple) -> list[SimulationResult]:
    """Run a contiguous chunk of seeds inside one worker task.

    Dispatching chunks instead of single seeds amortizes the pool's
    per-task pickling of the protocol, population and factories over
    many runs.  Results are seed-identical to the serial path because
    every seed still builds its own scheduler, simulator and initial
    configuration through the factories.
    """
    common, seeds = task
    (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        raise_on_timeout,
        fault_hook,
        sanitize,
    ) = common
    return [
        _run_single(
            (
                protocol,
                population,
                scheduler_factory,
                initial_factory,
                problem,
                seed,
                max_interactions,
                backend,
                check_interval,
                raise_on_timeout,
                fault_hook,
                sanitize,
            )
        )
        for seed in seeds
    ]


class _LazyInitials:
    """A lazy sequence of initial configurations, one per seed.

    ``run_ensemble`` used to materialize ``initial_factory(population,
    seed)`` for *every* seed up front, so an R-replicate ensemble held R
    O(N)-sized configurations simultaneously on the dispatching process.
    This sequence builds each configuration on demand instead: the
    lockstep engines consume it in the single interning pass of
    ``_batch_preconditions`` (peak memory O(N), not O(R * N)) and the
    factory is still called exactly once per seed on the native path.
    Nothing is cached - a second iteration (only the fallback paths do
    one) calls the factory again, which is sound because factories are
    pure functions of ``(population, seed)`` by contract.
    """

    __slots__ = ("_factory", "_population", "_seeds")

    def __init__(
        self,
        factory: InitialFactory,
        population: Population,
        seeds: Sequence[int],
    ) -> None:
        self._factory = factory
        self._population = population
        self._seeds = seeds

    def __len__(self) -> int:
        return len(self._seeds)

    def __iter__(self):
        factory = self._factory
        population = self._population
        for seed in self._seeds:
            yield factory(population, seed)

    def __getitem__(self, r: int) -> Configuration:
        return self._factory(self._population, self._seeds[r])


def _chunk_seeds(seeds: list[int], n_chunks: int) -> list[list[int]]:
    """Split seeds into at most ``n_chunks`` contiguous, balanced chunks.

    When ``n_chunks`` exceeds the number of seeds the surplus chunks
    would be empty; they are dropped rather than dispatched as no-op
    worker tasks, so callers may pass ``n_jobs`` (or a multiple of it)
    without sizing it against the ensemble first.
    """
    base, extra = divmod(len(seeds), n_chunks)
    chunks: list[list[int]] = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        if size == 0:
            continue
        chunks.append(seeds[start : start + size])
        start += size
    return chunks


def _run_batch_chunk(task: tuple) -> list[SimulationResult]:
    """Run a chunk of seeds as one lockstep batch inside a worker.

    Serves both lockstep engines (``"batch"`` and ``"bleap"``; the
    backend name travels in the task tuple).  Their per-row randomness
    depends only on each row's own seed, so splitting an ensemble into
    chunks (or not) cannot change any result - serial, parallel and
    per-seed executions are bit-identical.
    """
    from repro.engine.batch import BatchedEnsembleSimulator
    from repro.engine.bleap import BatchedLeapSimulator

    common, seeds = task
    if not seeds:
        return []
    (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        raise_on_timeout,
        fault_hook,
        sanitize,
    ) = common
    # Schedulers are O(1) records (the lockstep kernels only read their
    # seeds) and are needed for the whole batch, so they stay eager;
    # the O(N) initial configurations are built lazily, one at a time,
    # inside the engines' single interning pass.
    schedulers = [scheduler_factory(population, seed) for seed in seeds]
    initials = _LazyInitials(initial_factory, population, seeds)
    simulator_class = (
        BatchedLeapSimulator
        if backend == "bleap"
        else BatchedEnsembleSimulator
    )
    simulator = simulator_class(
        protocol,
        population,
        schedulers[0],
        problem,
        check_interval,
        sanitize=sanitize,
    )
    return simulator.run_replicates(
        initials,
        schedulers,
        max_interactions=max_interactions,
        raise_on_timeout=raise_on_timeout,
        fault_hook=fault_hook,
    )


def run_ensemble(
    protocol: PopulationProtocol,
    population: Population,
    scheduler_factory: SchedulerFactory,
    initial_factory: InitialFactory,
    problem: Problem | None,
    seeds: Sequence[int],
    max_interactions: int = 1_000_000,
    require_convergence: bool = False,
    backend: str = "auto",
    n_jobs: int = 1,
    check_interval: int | None = None,
    raise_on_timeout: bool = False,
    fault_hook: FaultHook | None = None,
    sanitize: bool = False,
) -> EnsembleResult:
    """Run the protocol once per seed and aggregate.

    Parameters
    ----------
    scheduler_factory, initial_factory:
        Called with ``(population, seed)`` for every seed, so runs are
        independent and reproducible.
    require_convergence:
        When true, the first non-converged run raises
        :class:`ConvergenceError` (carrying the offending seed in its
        message) instead of being recorded.
    backend:
        Simulation backend.  The default ``"auto"`` resolves by
        population size: ``"fluid"`` (mean-field ODE fast-forward with
        leap handoff, :mod:`repro.engine.fluid`, run per seed) at
        ``N >=`` :data:`FLUID_MIN_POPULATION`, ``"bleap"`` (windowed
        lockstep tau-leaping, :mod:`repro.engine.bleap`) for ensembles
        at ``N >=`` :data:`BLEAP_MIN_POPULATION`, the exact ``"batch"``
        engine (:mod:`repro.engine.batch`) below that.  All names can
        also be requested explicitly, as can per-run ``"leap"``
        (approximate, for single very large runs), ``"counts"``,
        ``"fast"`` and ``"reference"``.  Runs a backend cannot honour
        fall down the ladder (``fluid -> leap -> counts -> ...``;
        ``bleap -> batch -> counts -> fast -> reference``) with a
        structured :class:`~repro.errors.BackendFallbackWarning`.
    n_jobs:
        Number of worker processes.  ``1`` runs serially in-process;
        larger values fan the seeds out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`, which requires
        every task ingredient to be picklable (module-level factories).
        Under the lockstep backends (``"batch"``/``"bleap"``) each
        worker runs one contiguous seed chunk as its own lockstep batch
        (one chunk per worker, to keep the batches wide); per-run
        backends travel in chunks of about
        four per worker so the per-task pickling overhead is amortized
        over many runs.  Results are returned in seed order and are
        identical to a serial run.
    check_interval, raise_on_timeout, fault_hook:
        Forwarded to each per-seed simulator/run, so ensemble runs can use
        the same knobs as single runs.
    sanitize:
        Arm the runtime sanitizer (:mod:`repro.engine.sanitize`) on
        every per-seed simulator (and on lockstep batches); invariant
        violations raise :class:`~repro.errors.SanitizerError`.  Results
        are bit-identical to an unsanitized ensemble.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs}")
    if backend == "auto":
        if population.size >= FLUID_MIN_POPULATION:
            backend = "fluid"
        elif population.size >= BLEAP_MIN_POPULATION:
            backend = "bleap"
        else:
            backend = "batch"
    seeds = list(seeds)
    common = (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        raise_on_timeout,
        fault_hook,
        sanitize,
    )
    ensemble = EnsembleResult()
    lockstep = backend in ("batch", "bleap")
    if lockstep:
        # Lockstep batches want to be wide: one chunk per worker (not
        # four) so each worker advances as many rows per kernel step as
        # possible.  Chunking cannot change results - each row's
        # randomness is a function of its own seed.
        worker = _run_batch_chunk
        n_chunks = n_jobs
    else:
        worker = _run_chunk
        n_chunks = n_jobs * 4
    if n_jobs > 1 and len(seeds) > 1:
        results = None
        if lockstep:
            # Zero-copy fast path: shard the lockstep matrix over
            # shared-memory blocks so workers write result rows in
            # place and nothing large crosses the pool's result pipe.
            # Returns None (with a structured warning when shared
            # memory itself is missing) if the platform or the
            # ensemble cannot take it; results are bit-identical to
            # the pickle path either way.
            from repro.engine.parallel import maybe_run_sharded

            results = maybe_run_sharded(common, seeds, n_jobs)
        if results is None:
            chunks = _chunk_seeds(seeds, n_chunks)
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                chunk_results = list(
                    pool.map(worker, [(common, chunk) for chunk in chunks])
                )
            results = [r for chunk in chunk_results for r in chunk]
        for seed, result in zip(seeds, results):
            _record(ensemble, seed, result, max_interactions,
                    require_convergence)
    elif lockstep:
        # One lockstep batch over the whole ensemble.  The batch raises
        # on the first non-converged row only via raise_on_timeout;
        # ``require_convergence`` is enforced seed-by-seed below, in
        # seed order, exactly as the per-run path does.
        for seed, result in zip(seeds, _run_batch_chunk((common, seeds))):
            _record(ensemble, seed, result, max_interactions,
                    require_convergence)
    else:
        # Seed-by-seed, so ``require_convergence`` still aborts at the
        # first failing seed without running the rest.
        for seed in seeds:
            result = _run_chunk((common, [seed]))[0]
            _record(ensemble, seed, result, max_interactions,
                    require_convergence)
    return ensemble


def _record(
    ensemble: EnsembleResult,
    seed: int,
    result: SimulationResult,
    max_interactions: int,
    require_convergence: bool,
) -> None:
    """Append one run, enforcing ``require_convergence``."""
    if require_convergence and not result.converged:
        raise ConvergenceError(
            f"seed {seed} did not converge within "
            f"{max_interactions} interactions",
            interactions=result.interactions,
        )
    ensemble.results.append(result)
    ensemble.seeds.append(seed)
