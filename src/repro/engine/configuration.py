"""Configurations: immutable vectors of per-agent states.

A configuration is "a vector of states of all the agents" (paper, Section 2).
Two configurations are *equivalent* when one is a permutation of the other's
mobile states with an identical leader state (Section 3.1); uniform protocols
behave identically on equivalent configurations, which the model checkers in
:mod:`repro.analysis` exploit through :meth:`Configuration.canonical`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.population import AgentId, Population
from repro.engine.state import State, sort_key
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Configuration:
    """An immutable snapshot of every agent's state.

    ``states[i]`` is the state of agent ``i``; when the population has a
    leader, the last entry is the leader's state.

    Instances are hashable and therefore usable as nodes of reachability
    graphs.
    """

    states: tuple[State, ...]
    leader_index: int | None = None
    _canonical_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _tally_cache: Counter | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.leader_index is not None and not (
            0 <= self.leader_index < len(self.states)
        ):
            raise ConfigurationError(
                f"leader index {self.leader_index} out of range for "
                f"{len(self.states)} agents"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_states(
        cls,
        population: Population,
        mobile_states: tuple[State, ...] | list[State],
        leader_state: State | None = None,
    ) -> "Configuration":
        """Build a configuration for ``population`` from explicit states."""
        mobile_states = tuple(mobile_states)
        if len(mobile_states) != population.n_mobile:
            raise ConfigurationError(
                f"expected {population.n_mobile} mobile states, "
                f"got {len(mobile_states)}"
            )
        if population.has_leader:
            if leader_state is None:
                raise ConfigurationError(
                    "population has a leader but no leader state was given"
                )
            return cls(mobile_states + (leader_state,), population.leader)
        if leader_state is not None:
            raise ConfigurationError(
                "leader state given for a leaderless population"
            )
        return cls(mobile_states, None)

    @classmethod
    def uniform(
        cls,
        population: Population,
        mobile_state: State,
        leader_state: State | None = None,
    ) -> "Configuration":
        """All mobile agents in ``mobile_state`` (uniform initialization)."""
        return cls.from_states(
            population, (mobile_state,) * population.n_mobile, leader_state
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of agents described by this configuration."""
        return len(self.states)

    @property
    def has_leader(self) -> bool:
        """Whether this configuration includes a leader agent."""
        return self.leader_index is not None

    @property
    def leader_state(self) -> State:
        """The leader's state.

        Raises :class:`ConfigurationError` for leaderless configurations.
        """
        if self.leader_index is None:
            raise ConfigurationError("configuration has no leader")
        return self.states[self.leader_index]

    @property
    def mobile_states(self) -> tuple[State, ...]:
        """States of the mobile agents only, in agent-index order."""
        if self.leader_index is None:
            return self.states
        return tuple(
            s for i, s in enumerate(self.states) if i != self.leader_index
        )

    def state_of(self, agent: AgentId) -> State:
        """State of a single agent."""
        return self.states[agent]

    def multiset(self) -> Counter:
        """Multiset of the mobile states (the paper's equivalence basis)."""
        return Counter(self.mobile_states)

    def state_tally(self) -> Counter:
        """Multiset of *all* states, leader included, cached.

        Tallying hashes every agent's state — the dominant fixed cost of
        interning a large configuration into a counts vector — so the
        result is computed once and reused when several count-based
        simulators run from the same (immutable) configuration.  Callers
        must not mutate the returned counter.
        """
        if self._tally_cache is None:
            object.__setattr__(self, "_tally_cache", Counter(self.states))
        return self._tally_cache

    def homonym_states(self) -> set[State]:
        """Mobile states held by two or more agents (the paper's homonyms)."""
        return {s for s, c in self.multiset().items() if c >= 2}

    def homonym_agents(self) -> list[AgentId]:
        """Ids of mobile agents whose state is shared with another agent."""
        shared = self.homonym_states()
        mobile = (
            range(len(self.states))
            if self.leader_index is None
            else (i for i in range(len(self.states)) if i != self.leader_index)
        )
        return [i for i in mobile if self.states[i] in shared]

    def names_distinct(self) -> bool:
        """``True`` when no two mobile agents share a state (naming holds)."""
        mobile = self.mobile_states
        return len(set(mobile)) == len(mobile)

    # ------------------------------------------------------------------
    # Equivalence and canonical forms
    # ------------------------------------------------------------------

    def is_equivalent(self, other: "Configuration") -> bool:
        """Paper Section 3.1 equivalence: identical mobile multisets and
        identical leader state (or both leaderless)."""
        if self.has_leader != other.has_leader:
            return False
        if self.has_leader and self.leader_state != other.leader_state:
            return False
        return self.multiset() == other.multiset()

    def canonical(self) -> tuple:
        """A hashable canonical key identifying this equivalence class.

        Mobile states are ordered by :func:`repro.engine.state.sort_key`
        (a proper total order, unlike the old ``key=repr`` sort which
        ordered integers lexicographically).  The key is computed once and
        cached on the instance: the model checkers canonicalize every
        visited node, often revisiting the same configuration object.
        """
        if self._canonical_cache is None:
            mobile_key = tuple(sorted(self.mobile_states, key=sort_key))
            leader_key = self.leader_state if self.has_leader else None
            object.__setattr__(
                self, "_canonical_cache", (mobile_key, leader_key)
            )
        return self._canonical_cache

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def replace(self, updates: dict[AgentId, State]) -> "Configuration":
        """Return a copy with the states of the given agents replaced."""
        states = list(self.states)
        for agent, state in updates.items():
            if not 0 <= agent < len(states):
                raise ConfigurationError(
                    f"agent id {agent} out of range for {len(states)} agents"
                )
            states[agent] = state
        return Configuration(tuple(states), self.leader_index)

    def apply(
        self, initiator: AgentId, responder: AgentId, outcome: tuple[State, State]
    ) -> "Configuration":
        """Apply a transition outcome ``(p', q')`` to an ordered pair."""
        if initiator == responder:
            raise ConfigurationError("an agent cannot interact with itself")
        return self.replace({initiator: outcome[0], responder: outcome[1]})

    def __iter__(self) -> Iterator[State]:
        return iter(self.states)

    def __len__(self) -> int:
        return len(self.states)
