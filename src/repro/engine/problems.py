"""Problem definitions: what it means for an execution to have converged.

A (static) problem is a predicate on configurations; a protocol solves it
when every fair execution reaches and never leaves the predicate (paper,
Section 2).  For simulation purposes each problem supplies:

* :meth:`Problem.is_satisfied` - the predicate itself, and
* :meth:`Problem.is_stable`   - a *sufficient*, locally checkable condition
  guaranteeing the predicate can never be falsified from here on.

The engine certifies convergence only when both hold, so a reported
convergence is a proof, not a heuristic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State


def distinct_state_pairs(
    config: Configuration,
) -> set[tuple[State, State]]:
    """The ordered state pairs realizable by some agent pair in ``config``.

    Works on the multiset of states, so the cost is bounded by the square of
    the number of *distinct* states rather than of agents.
    """
    from collections import Counter

    counts = Counter(config.states)
    pairs: set[tuple[State, State]] = set()
    distinct = list(counts)
    for s, t in combinations(distinct, 2):
        pairs.add((s, t))
        pairs.add((t, s))
    for s, c in counts.items():
        if c >= 2:
            pairs.add((s, s))
    return pairs


def is_silent(protocol: PopulationProtocol, config: Configuration) -> bool:
    """``True`` when every realizable interaction in ``config`` is null.

    A silent configuration is terminal: no execution can ever leave it, so
    any predicate holding here holds forever.
    """
    return all(
        protocol.is_null(p, q) for p, q in distinct_state_pairs(config)
    )


class Problem(ABC):
    """A static problem: a configuration predicate plus a stability test."""

    #: Human-readable problem name.
    display_name: str = "problem"

    #: Whether :meth:`is_solved` depends only on the *multiset* of mobile
    #: states plus the leader state (the paper's Section 3.1 equivalence),
    #: never on which agent id holds which state.  True for every problem
    #: in this library (agents are anonymous); count-based backends
    #: (:mod:`repro.engine.counts`) require it because they evaluate
    #: predicates on a canonical representative configuration.  Subclasses
    #: that inspect agent identities must set it to ``False``.
    permutation_invariant: bool = True

    @abstractmethod
    def is_satisfied(self, config: Configuration) -> bool:
        """The problem predicate on a single configuration."""

    def is_stable(
        self, protocol: PopulationProtocol, config: Configuration
    ) -> bool:
        """Sufficient condition for the predicate to hold forever.

        The default requires the configuration to be silent, which is the
        right notion for all the paper's naming protocols (they terminate
        with only null transitions).  Subclasses may weaken it when they can
        argue stability differently (see :class:`CountingProblem`).
        """
        return is_silent(protocol, config)

    def is_solved(
        self, protocol: PopulationProtocol, config: Configuration
    ) -> bool:
        """Certified convergence: predicate holds and is stable."""
        return self.is_satisfied(config) and self.is_stable(protocol, config)


class NamingProblem(Problem):
    """The paper's naming problem: every mobile agent eventually holds a
    name that never changes again, and no two agents share a name."""

    display_name = "naming"

    def is_satisfied(self, config: Configuration) -> bool:
        return config.names_distinct()


class CountingProblem(Problem):
    """The counting problem of Beauquier et al. (the Protocol 1 substrate):
    the leader's guess ``n`` must converge to the exact population size.

    Parameters
    ----------
    expected:
        The true number of mobile agents ``N``.
    count_of:
        Extracts the leader's current count from its state (protocols store
        it under different attribute layouts).
    """

    display_name = "counting"

    def __init__(self, expected: int) -> None:
        self.expected = expected

    def is_satisfied(self, config: Configuration) -> bool:
        leader = config.leader_state
        return getattr(leader, "n", None) == self.expected

    def is_stable(
        self, protocol: PopulationProtocol, config: Configuration
    ) -> bool:
        """The count is stable when no realizable interaction changes it.

        For Protocol 1 the guess ``n`` is non-decreasing, so it suffices
        that no single interaction from the current configuration increments
        it, *and* that no interaction creates a mobile state that could
        later cause an increment.  We conservatively require that no
        reachable one-step successor changes ``n``; combined with monotone
        ``n`` and the protocol's correctness theorem this certifies the
        simulation-level check used in tests (which additionally run extra
        interactions and assert stability empirically).
        """
        n0 = getattr(config.leader_state, "n", None)
        for p, q in distinct_state_pairs(config):
            p2, q2 = protocol.transition(p, q)
            for s in (p2, q2):
                if getattr(s, "n", n0) != n0 and hasattr(s, "n"):
                    return False
        return True
