"""The batched tau-leaping ensemble backend: multinomial windows over a
whole replicate matrix.

The two fastest tiers of the backend ladder did not compose: the batch
engine (:mod:`repro.engine.batch`) advances every replicate of an
ensemble in lockstep but pays one kernel step per *event*, while the
leap engine (:mod:`repro.engine.leap`) aggregates whole windows of
events into one multinomial draw but serves one *run* at a time.  This
module fuses them.  An ensemble is the same ``(R, S)`` counts matrix
``C`` the batch engine uses - row ``r`` is replicate ``r``'s counts
vector - but each kernel iteration advances every active row by a whole
tau-leap window:

1.  **Propensities.**  ``w[r, f] = C[r, i_f] * (C[r, j_f] - [i_f =
    j_f])`` for every non-null pair ``f``, all rows at once.  Rows whose
    total weight is zero are silent forever; they are finalized (naming
    verdict straight off the counts row, delivered at the next
    ``check_interval`` boundary) and leave the kernel via the row mask.
2.  **Per-row adaptive tau.**  The Gillespie/Petzold eps-control of the
    leap backend, vectorized over rows: with per-interaction drift
    ``mu = p @ D`` and diffusion ``sigma^2 = p @ (D * D)``, each row's
    tau is capped so no state's expected change or variance inside the
    window exceeds ``max(leap_eps * c_s, 1)``, then clipped to the
    row's remaining budget.  (The reductions are evaluated row-wise -
    ``einsum`` rather than a BLAS matmul - so a row's tau is a function
    of that row alone, independent of which other rows share the batch.)
3.  **Batched multinomial window.**  Every row whose tau clears the
    leap thresholds draws its per-pair firing counts
    ``Multinomial(tau_r, (p_1, ..., p_F, p_null))`` from **its own**
    generator, and the stacked draws are applied to all leaping rows in
    a single vectorized ``K @ D`` update of the counts matrix.  A draw
    that would push any count negative is discarded and redrawn with
    tau halved (counted in ``RunStats.repairs``), exactly as in the
    per-run leap backend.
4.  **Per-row exact-SSA fallback.**  Rows whose adaptive tau collapses
    below ``min_tau``, whose window would hold fewer than
    ``MIN_WINDOW_EVENTS`` expected events (the sparse endgame near
    silence), or whose repair loop collapsed, advance by a burst of
    *exact* SSA steps instead - geometric null-gap plus categorical
    event pick, the same chain the counts backend samples - and are
    re-examined for leaping at the next refresh.  ``RunStats.
    ssa_fallback_rows`` records (per row: 0 or 1) whether a row ever
    took the exact path, so ensembles report how many replicates
    leapt versus stepped.

Randomness and reproducibility
------------------------------

As in the batch engine, every row draws only from its own
:class:`numpy.random.Generator`, seeded with its scheduler's seed, and
every per-row quantity (tau, propensities, repair decisions) is computed
from that row's state alone.  A row's trajectory is therefore a function
of its seed - independent of the batch width and of how an ensemble is
chunked across worker processes.  Serial, parallel and single-run
executions of the same seed are bit-identical.

Exactness contract
------------------

Like the per-run leap backend, native runs are *approximately*
distribution-equivalent to the exact counts chain, with the error
bounded per window by ``leap_eps``; rows served by the SSA fallback are
exact.  Convergence semantics are windowed: silence is tested at every
refresh and a silent row's convergence interaction is rounded up to the
next ``check_interval`` boundary (capped at the budget).  Distributional
accuracy against the leap and batch backends is validated in
``tests/engine/test_bleap.py`` under KS-style bounds, in both the
leap-friendly (large N) and SSA-fallback (small N, near-silence)
regimes.

When armed, the sanitizer checks every active counts row (nonnegative
entries summing to the population size) at *window-refresh* granularity
- the bleap analog of the leap backend's per-refresh checks - plus once
on the final matrix.  The post-silence-change invariant is enforced
structurally: a row observed silent is finalized and dropped at that
same refresh, so no later window can touch it.

Ensembles the bleap view cannot honour - non-uniform schedulers, fault
hooks, traces/observers, problems that are not the permutation-invariant
naming problem, open-role protocols, uncompilable state spaces, missing
NumPy - fall back to the lockstep batch engine with a structured
:class:`~repro.errors.BackendFallbackWarning` (``backend="bleap"``,
``delegate="batch"``), which applies its own preconditions and continues
down the ladder ``batch -> counts -> fast -> reference``.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.engine import sanitize as _sanitize
from repro.engine.batch import (
    COL,
    N_SCALARS,
    BatchedEnsembleSimulator,
    LockstepRaw,
    materialize_raw,
)
from repro.engine.configuration import Configuration
from repro.engine.fast import BACKENDS, DEFAULT_COMPILE_LIMIT, warn_fallback
from repro.engine.leap import (
    DEFAULT_LEAP_EPS,
    DEFAULT_MIN_TAU,
    EXACT_BURST,
    MIN_WINDOW_EVENTS,
    _leap_plan_for,
)
from repro.engine.population import Population
from repro.engine.problems import Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
)
from repro.engine.trace import Trace
from repro.errors import ConvergenceError, SimulationError
from repro.schedulers.base import Scheduler

try:  # NumPy powers the windowed kernel; without it the backend delegates.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None


class BatchedLeapSimulator:
    """Lockstep tau-leaping simulator for ensembles of replicate runs.

    Accepts the same constructor arguments and exposes the same
    single-run :meth:`run` contract as the other backends (registered as
    ``BACKENDS["bleap"]``), plus :meth:`run_replicates`, which advances
    R replicates as one ``(R, S)`` counts matrix with per-row adaptive
    multinomial windows (see the module docstring).  Ensembles the
    windowed view cannot honour delegate to the lockstep
    :class:`~repro.engine.batch.BatchedEnsembleSimulator` with a
    structured :class:`~repro.errors.BackendFallbackWarning`.
    :attr:`last_run_native` reports which path served the last call.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`~repro.engine.simulator.Simulator`.  The
        constructor's scheduler seeds the single-run :meth:`run` path;
        :meth:`run_replicates` takes one scheduler per replicate.
    compile_limit:
        Largest state-space size eagerly compiled (shared with the fast
        and counts backends); larger protocols delegate.
    leap_eps:
        Relative per-window change bound of the per-row adaptive tau
        selection (``--leap-eps`` on the CLIs).  Smaller is more
        accurate and slower; the default
        :data:`~repro.engine.leap.DEFAULT_LEAP_EPS` passes the KS
        validation suite.
    min_tau:
        Rows whose adaptive tau falls below this advance by exact SSA
        bursts instead, so small populations never pay leap error.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        the native kernel checks every active counts row at
        window-refresh granularity and once on the final matrix;
        delegated runs inherit the batch backend's sanitizer.  Checks
        never consume randomness, so per-seed results are unchanged.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        leap_eps: float = DEFAULT_LEAP_EPS,
        min_tau: int = DEFAULT_MIN_TAU,
        sanitize: bool = False,
    ) -> None:
        if not 0.0 < leap_eps < 1.0:
            raise SimulationError(
                f"leap_eps must be in (0, 1), got {leap_eps}"
            )
        if min_tau < 1:
            raise SimulationError(
                f"min_tau must be a positive integer, got {min_tau}"
            )
        # The batch simulator validates the wiring, compiles the shared
        # table/plan, owns the lockstep preconditions (bleap's are
        # identical) and serves as the fallback delegate (which may
        # itself continue down the ladder to counts/fast/reference).
        self._batch = BatchedEnsembleSimulator(
            protocol, population, scheduler, problem, check_interval,
            compile_limit, sanitize=sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._batch.check_interval
        self.leap_eps = leap_eps
        self.min_tau = min_tau
        self.sanitize = sanitize
        self._table = self._batch._table
        self._plan = self._batch._plan
        self._leap = (
            _leap_plan_for(protocol, self._plan)
            if _np is not None and self._plan is not None
            else None
        )
        #: Whether the most recent run/run_replicates used the windowed
        #: kernel.
        self.last_run_native = False

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Single-run contract (BACKENDS["bleap"])
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute one run (a windowed lockstep batch of size R = 1).

        Same parameters and semantics as :meth:`Simulator.run`; runs the
        windowed kernel cannot honour delegate to the internal batch
        simulator (and onward down the backend ladder).
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        interned, leaders, reason = self._batch._batch_preconditions(
            [initial], trace=trace, fault_hook=fault_hook, observer=observer
        )
        if reason is not None:
            warn_fallback("bleap", "batch", reason)
            self.last_run_native = False
            return self._batch.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_native = True
        return self._run_windows(
            interned,
            leaders,
            [getattr(self.scheduler, "seed", None)],
            max_interactions,
            raise_on_timeout,
        )[0]

    # ------------------------------------------------------------------
    # Ensemble contract
    # ------------------------------------------------------------------

    def run_replicates(
        self,
        initials: "Sequence[Configuration]",
        schedulers: list[Scheduler],
        max_interactions: int = 1_000_000,
        raise_on_timeout: bool = False,
        fault_hook: FaultHook | None = None,
    ) -> list[SimulationResult]:
        """Run one replicate per (initial, scheduler) pair, in windowed
        lockstep.

        Returns one :class:`SimulationResult` per replicate, in input
        order.  Replicate ``r`` draws only from a generator seeded with
        ``schedulers[r].seed``, so its result is independent of the
        other replicates, of the batch width and of ``n_jobs`` chunking.
        Ensembles the windowed kernel cannot honour fall back to the
        lockstep batch engine.  ``initials`` may be a lazy sequence (see
        :meth:`BatchedEnsembleSimulator.run_replicates`); the native
        path realizes it in one interning pass.
        """
        if len(initials) != len(schedulers):
            raise SimulationError(
                f"{len(initials)} initial configurations for "
                f"{len(schedulers)} schedulers"
            )
        if not len(initials):
            return []
        interned, leaders, reason = self._batch._batch_preconditions(
            initials, schedulers=schedulers, fault_hook=fault_hook
        )
        if reason is not None:
            warn_fallback("bleap", "batch", reason)
            self.last_run_native = False
            return self._batch.run_replicates(
                initials,
                schedulers,
                max_interactions=max_interactions,
                raise_on_timeout=raise_on_timeout,
                fault_hook=fault_hook,
            )
        self.last_run_native = True
        return self._run_windows(
            interned,
            leaders,
            [getattr(s, "seed", None) for s in schedulers],
            max_interactions,
            raise_on_timeout,
        )

    # ------------------------------------------------------------------
    # The windowed lockstep kernel
    # ------------------------------------------------------------------

    def run_replicates_raw(
        self,
        initials: "Sequence[Configuration]",
        schedulers: list[Scheduler],
        max_interactions: int = 1_000_000,
        fault_hook: FaultHook | None = None,
    ) -> tuple[LockstepRaw | None, str | None]:
        """Run replicates natively, returning raw arrays instead of results.

        The bleap entry point of the shared-memory parallel layer;
        see :meth:`BatchedEnsembleSimulator.run_replicates_raw`.  On
        precondition failure returns ``(None, reason)`` without warning
        or delegating - the caller reruns through :meth:`run_replicates`
        which does both.
        """
        if len(initials) != len(schedulers):
            raise SimulationError(
                f"{len(initials)} initial configurations for "
                f"{len(schedulers)} schedulers"
            )
        if not len(initials):
            return None, "empty replicate set"
        interned, leaders, reason = self._batch._batch_preconditions(
            initials, schedulers=schedulers, fault_hook=fault_hook
        )
        if reason is not None:
            self.last_run_native = False
            return None, reason
        self.last_run_native = True
        return (
            self._windows_raw(
                interned,
                leaders,
                [getattr(s, "seed", None) for s in schedulers],
                max_interactions,
            ),
            None,
        )

    def _run_windows(
        self,
        rows: list[list[int]],
        leader_positions: list[int | None],
        seeds: list[int | None],
        max_interactions: int,
        raise_on_timeout: bool,
    ) -> list[SimulationResult]:
        """Advance all rows, then materialize per-replicate results."""
        raw = self._windows_raw(
            rows, leader_positions, seeds, max_interactions
        )
        return materialize_raw(
            self._table,
            self._plan.n_mobile,
            self.population,
            self.protocol.display_name,
            raw,
            max_interactions,
            raise_on_timeout,
        )

    def _windows_raw(
        self,
        rows: list[list[int]],
        leader_positions: list[int | None],
        seeds: list[int | None],
        max_interactions: int,
    ) -> LockstepRaw:
        """Advance all rows to silence, convergence or the budget."""
        np = _np
        started = time.perf_counter()
        plan = self._plan
        n_mobile = plan.n_mobile
        pair_i, pair_j, diag = plan.pair_i, plan.pair_j, plan.diag
        deltas = self._leap.deltas
        deltas_sq = self._leap.deltas_sq
        n_pairs = pair_i.shape[0]
        size = self.population.size
        total_pairs = size * (size - 1)
        eps = self.leap_eps
        min_tau = self.min_tau
        check_interval = self.check_interval
        checking = self.problem is not None
        budget = max_interactions

        n_rows = len(rows)
        C = np.asarray(rows, dtype=np.int64)
        pos = np.zeros(n_rows, dtype=np.int64)  # interactions, nulls incl.
        events = np.zeros(n_rows, dtype=np.int64)  # non-null interactions
        conv_at = np.full(n_rows, -1, dtype=np.int64)  # -1: not converged
        leaps = np.zeros(n_rows, dtype=np.int64)
        leap_interactions = np.zeros(n_rows, dtype=np.int64)
        repairs = np.zeros(n_rows, dtype=np.int64)
        ssa_rows = np.zeros(n_rows, dtype=bool)

        # Per-row generators: a row's stream is a function of its own
        # seed, so results are invariant under batching and chunking.
        generators = [np.random.default_rng(seed) for seed in seeds]

        idx = np.arange(n_rows, dtype=np.int64)  # active rows
        refresh = 0
        sanitizing = self.sanitize

        while idx.size:
            refresh += 1
            if sanitizing:
                # Window-refresh cadence: between refreshes the matrix
                # moves only through vetted (repaired) window applies or
                # exact per-row bursts, so corruption surfaces here.
                _sanitize.check_counts_rows(
                    "bleap", C[idx], idx, size, refresh
                )
            Cact = C[idx]
            w = Cact[:, pair_i] * (Cact[:, pair_j] - diag)
            weight = w.sum(axis=1)

            # -- silence: frozen forever; finalize and drop the row.
            # The naming verdict can only be delivered at a check
            # boundary: the first one at/after the last event, capped at
            # the budget - the position the per-run backends report --
            silent = weight == 0
            if silent.any():
                sidx = idx[silent]
                if checking:
                    distinct = (C[sidx, :n_mobile] < 2).all(axis=1)
                    spos = pos[sidx]
                    at = np.minimum(
                        spos + (-spos) % check_interval, budget
                    )
                    converged = sidx[distinct]
                    conv_at[converged] = at[distinct]
                    pos[converged] = at[distinct]
                    pos[sidx[~distinct]] = budget
                else:
                    pos[sidx] = budget
                keep = ~silent
                idx = idx[keep]
                if not idx.size:
                    break
                Cact = C[idx]
                w = w[keep]
                weight = weight[keep]

            # -- per-row adaptive tau (Gillespie/Petzold): bound each
            # state's expected change and variance inside the window by
            # max(eps * count, 1), then clip to the remaining budget.
            # einsum keeps every reduction row-wise (seed identity) --
            p = w / total_pairs
            mu = np.einsum("ap,ps->as", p, deltas)
            sig2 = np.einsum("ap,ps->as", p, deltas_sq)
            cap = np.maximum(eps * Cact, 1.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                t_drift = np.where(
                    mu != 0.0, cap / np.abs(mu), np.inf
                ).min(axis=1)
                t_noise = np.where(
                    sig2 > 0.0, cap * cap / sig2, np.inf
                ).min(axis=1)
            rem = (budget - pos[idx]).astype(np.float64)
            tau = np.minimum(
                np.minimum(t_drift, t_noise), rem
            ).astype(np.int64)
            leap_ok = (tau >= min_tau) & (
                tau * (weight / total_pairs) >= MIN_WINDOW_EVENTS
            )

            # -- batched multinomial window over the leaping rows: one
            # per-row draw from the row's own generator, one vectorized
            # K @ D apply for all feasible rows.  Infeasible draws are
            # repaired per row (tau halved, redrawn); a collapsed
            # repair drops the row to this refresh's SSA burst --
            ssa_sel = list(np.flatnonzero(~leap_ok))
            if leap_ok.any():
                l_sel = np.flatnonzero(leap_ok)
                tau_l = tau[l_sel]
                pv = np.empty((l_sel.size, n_pairs + 1))
                pv[:, :n_pairs] = p[l_sel]
                pv[:, n_pairs] = np.maximum(
                    0.0, 1.0 - p[l_sel].sum(axis=1)
                )
                pv /= pv.sum(axis=1, keepdims=True)
                K = np.empty((l_sel.size, n_pairs), dtype=np.int64)
                for i, a in enumerate(l_sel):
                    K[i] = generators[idx[a]].multinomial(
                        int(tau_l[i]), pv[i]
                    )[:n_pairs]
                C_next = C[idx[l_sel]] + K @ deltas
                bad = (C_next < 0).any(axis=1)
                good = ~bad
                gidx = idx[l_sel[good]]
                C[gidx] = C_next[good]
                pos[gidx] += tau_l[good]
                events[gidx] += K[good].sum(axis=1)
                leaps[gidx] += 1
                leap_interactions[gidx] += tau_l[good]
                for i in np.flatnonzero(bad):
                    a = l_sel[i]
                    r = idx[a]
                    rng = generators[r]
                    repairs[r] += 1  # the infeasible batched draw
                    t = int(tau_l[i]) >> 1
                    applied = False
                    while t >= min_tau:
                        k = rng.multinomial(t, pv[i])[:n_pairs]
                        c_next = C[r] + k @ deltas
                        if (c_next >= 0).all():
                            C[r] = c_next
                            pos[r] += t
                            events[r] += int(k.sum())
                            leaps[r] += 1
                            leap_interactions[r] += t
                            applied = True
                            break
                        repairs[r] += 1
                        t >>= 1
                    if not applied:
                        ssa_sel.append(a)

            # -- per-row exact-SSA burst: geometric null-gap plus
            # categorical event pick, the same chain the counts backend
            # samples.  Serves collapsed-tau churn, small populations
            # and the sparse endgame; the row rejoins tau estimation at
            # the next refresh --
            for a in ssa_sel:
                r = idx[a]
                ssa_rows[r] = True
                rng = generators[r]
                c_row = C[r]
                burst = 0
                while burst < EXACT_BURST and pos[r] < budget:
                    wr = c_row[pair_i] * (c_row[pair_j] - diag)
                    wt = int(wr.sum())
                    if wt == 0:
                        break  # the next refresh finalizes silence
                    gap = int(rng.geometric(wt / total_pairs))
                    if pos[r] + gap > budget:
                        pos[r] = budget
                        break
                    pos[r] += gap
                    cum = np.cumsum(wr, dtype=np.float64)
                    f = int(
                        np.searchsorted(
                            cum,
                            rng.random() * float(cum[-1]),
                            side="right",
                        )
                    )
                    c_row += deltas[f]
                    events[r] += 1
                    burst += 1

            # -- budget exhausted: drop the row from the active set (a
            # final silence check below catches runs ending exactly at
            # silence, matching the per-run leap backend) --
            exhausted = pos[idx] >= budget
            if exhausted.any():
                idx = idx[~exhausted]

        # Final check: the budget may end exactly at silence.
        if checking:
            unconv = np.flatnonzero(conv_at < 0)
            if unconv.size:
                Cu = C[unconv]
                wu = (Cu[:, pair_i] * (Cu[:, pair_j] - diag)).sum(axis=1)
                distinct = (Cu[:, :n_mobile] < 2).all(axis=1)
                hit = (wu == 0) & distinct
                conv_at[unconv[hit]] = pos[unconv[hit]]

        if sanitizing:
            _sanitize.check_counts_rows(
                "bleap",
                C,
                np.arange(n_rows, dtype=np.int64),
                size,
                refresh,
            )

        elapsed = time.perf_counter() - started
        scalars = np.zeros((n_rows, N_SCALARS), dtype=np.int64)
        scalars[:, COL["interactions"]] = pos
        scalars[:, COL["events"]] = events
        scalars[:, COL["conv_at"]] = conv_at
        scalars[:, COL["leader_pos"]] = [
            -1 if p is None else p for p in leader_positions
        ]
        scalars[:, COL["leaps"]] = leaps
        scalars[:, COL["leap_interactions"]] = leap_interactions
        scalars[:, COL["repairs"]] = repairs
        scalars[:, COL["ssa_rows"]] = ssa_rows
        return LockstepRaw(
            counts=C,
            scalars=scalars,
            has_leap=True,
            wall_seconds=elapsed,
        )


BACKENDS["bleap"] = BatchedLeapSimulator
