"""Zero-copy parallel execution over POSIX shared memory.

The pickle path that :func:`repro.engine.ensemble.run_ensemble` uses for
``n_jobs > 1`` ships every worker's finished
:class:`~repro.engine.simulator.SimulationResult` objects back through
the :class:`~concurrent.futures.ProcessPoolExecutor` result pipe.  For
the lockstep engines that is pure waste: a worker's entire output is one
``(r, S)`` slice of the ensemble's counts matrix plus one ``(r, 8)``
scalar block (:class:`~repro.engine.batch.LockstepRaw`), and both are
flat ``int64`` arrays that could have been written where the parent can
already see them.  This module does exactly that:

1.  The parent allocates one ``(R, S)`` counts block and one
    ``(R, N_SCALARS)`` scalars block in POSIX shared memory
    (:class:`SharedBlock`) and hands each worker its contiguous row
    offset plus the blocks' :class:`ShmBlockMeta` descriptors (name,
    shape, dtype - a few hundred bytes, the only thing pickled).
2.  Each worker runs its seed chunk natively via
    ``run_replicates_raw`` and writes the raw rows **in place**
    (:func:`run_chunk_into_shm`), returning only a tiny outcome marker.
3.  The parent materializes all rows in seed order through the same
    :func:`~repro.engine.batch.materialize_raw` the serial path uses,
    so parallel results are the **same objects built from the same
    arrays** - bit-identical to serial by construction (each row's
    randomness is a function of its own seed; see
    :mod:`repro.engine.batch`).

Ownership protocol
------------------

Shared segments have exactly one owner: the process that created them.
Attachers (:meth:`SharedBlock.attach`) immediately unregister the
segment from their ``resource_tracker`` - Python 3.11 registers on
*every* attach, so a worker's tracker would otherwise unlink a segment
the parent is still reading when the worker exits.  The owner bundles
its blocks into a :class:`ShmLease` whose idempotent :meth:`~ShmLease.release`
closes and unlinks everything; a :func:`weakref.finalize` backstop fires
the same teardown if the lease is dropped without release, so no
segment outlives its job even on error paths.

Fallback ladder
---------------

Every degradation is structured and total-order safe:

- no shared memory on the platform (probe in :func:`shm_available`)
  -> one :class:`~repro.errors.BackendFallbackWarning` naming the
  reason, then the existing pickle-transport pool path;
- a chunk's lockstep preconditions fail inside a worker -> that worker
  reruns the chunk through ``run_replicates``, which warns once and
  walks the serial backend ladder, and ships those results pickled
  (markers and pickled lists mix freely per chunk);
- any error -> the lease still tears the segments down.
"""

from __future__ import annotations

import traceback as _traceback
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.engine.batch import (
    N_SCALARS,
    BatchedEnsembleSimulator,
    LockstepRaw,
    materialize_raw,
)
from repro.engine.fast import warn_fallback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulator import SimulationResult

try:  # NumPy views over the shared buffers; without it there is no kernel.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None

try:  # POSIX shared memory; absent on some minimal/embedded builds.
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via probe override
    _resource_tracker = None
    _shared_memory = None


#: Cached result of the one-time shared-memory probe; see
#: :func:`shm_available`.
_SHM_PROBE: tuple[bool, str | None] | None = None


def shm_available() -> tuple[bool, str | None]:
    """Probe once whether POSIX shared memory actually works here.

    Returns ``(True, None)`` or ``(False, reason)``.  Importing
    :mod:`multiprocessing.shared_memory` is not enough - containers and
    locked-down platforms can expose the module but refuse ``shm_open``
    at runtime - so the probe round-trips a real 8-byte segment.  The
    verdict is cached for the life of the process.
    """
    global _SHM_PROBE
    if _SHM_PROBE is None:
        if _np is None:
            _SHM_PROBE = (False, "NumPy is not installed")
        elif _shared_memory is None:
            _SHM_PROBE = (False, "multiprocessing.shared_memory is unavailable")
        else:
            try:
                segment = _shared_memory.SharedMemory(create=True, size=8)
                segment.buf[0] = 1
                ok = segment.buf[0] == 1
                segment.close()
                segment.unlink()
                _SHM_PROBE = (
                    (True, None)
                    if ok
                    else (False, "shared-memory probe read back wrong data")
                )
            except (OSError, ValueError, PermissionError) as exc:
                _SHM_PROBE = (False, f"shared-memory probe failed: {exc}")
    return _SHM_PROBE


@dataclass(frozen=True)
class ShmBlockMeta:
    """Picklable descriptor of a shared block: everything an attacher needs."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        n = _np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


class SharedBlock:
    """One NumPy array backed by one POSIX shared-memory segment.

    Create with :meth:`create` (owner side) or :meth:`attach` (worker
    side); read/write through :attr:`array`; tear down with
    :meth:`close` (both sides) and :meth:`unlink` (owner only).  Both
    teardown calls are idempotent.
    """

    def __init__(self, segment, meta: ShmBlockMeta, owner: bool) -> None:
        self._segment = segment
        self._meta = meta
        self._owner = owner
        self._array = None
        self._unlinked = False

    @classmethod
    def create(cls, shape: Sequence[int], dtype: str) -> "SharedBlock":
        """Allocate a fresh zero-filled segment sized for ``(shape, dtype)``."""
        meta_size = _np.dtype(dtype).itemsize
        for dim in shape:
            meta_size *= int(dim)
        segment = _shared_memory.SharedMemory(
            create=True, size=max(1, meta_size)
        )
        meta = ShmBlockMeta(
            name=segment.name, shape=tuple(int(d) for d in shape), dtype=dtype
        )
        return cls(segment, meta, owner=True)

    @classmethod
    def attach(cls, meta: ShmBlockMeta) -> "SharedBlock":
        """Map an existing segment by descriptor, without taking ownership.

        Python 3.11 registers the segment with this process's
        ``resource_tracker`` on attach; undo that immediately, or the
        attacher's tracker unlinks the segment out from under the owner
        when the attaching process exits.
        """
        segment = _shared_memory.SharedMemory(name=meta.name)
        try:
            _resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker may be absent
            pass
        return cls(segment, meta, owner=False)

    @property
    def meta(self) -> ShmBlockMeta:
        return self._meta

    @property
    def nbytes(self) -> int:
        return self._meta.nbytes

    @property
    def array(self):
        """The live NumPy view (cached; invalid after :meth:`close`)."""
        if self._array is None:
            if self._segment is None:
                raise ValueError("shared block is closed")
            self._array = _np.ndarray(
                self._meta.shape,
                dtype=self._meta.dtype,
                buffer=self._segment.buf,
            )
        return self._array

    def close(self) -> None:
        """Drop this process's mapping.  Idempotent."""
        self._array = None
        segment, self._segment = self._segment, None
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - caller kept a view
                pass

    def unlink(self) -> None:
        """Remove the segment's name (owner side).  Idempotent."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            _shared_memory.SharedMemory(name=self._meta.name).unlink()
        except FileNotFoundError:
            pass


def _release_blocks(blocks: tuple) -> None:
    """Teardown shared by :meth:`ShmLease.release` and its finalizer."""
    for block in blocks:
        block.close()
        block.unlink()


class ShmLease:
    """Owner-side handle bundling a job's shared blocks for teardown.

    ``release()`` closes and unlinks every block and is safe to call any
    number of times, from any error path.  If the lease is garbage
    collected without release (caller crashed, handle dropped), a
    :func:`weakref.finalize` backstop runs the identical teardown - the
    segments never outlive the job, and ``__del__``-ordering hazards do
    not apply because the finalizer holds the blocks directly.
    """

    def __init__(self, blocks: Sequence[SharedBlock]) -> None:
        self._blocks = tuple(blocks)
        self._finalizer = weakref.finalize(self, _release_blocks, self._blocks)

    @property
    def nbytes(self) -> int:
        return sum(block.nbytes for block in self._blocks)

    @property
    def released(self) -> bool:
        return not self._finalizer.alive

    def release(self) -> None:
        """Close and unlink every block.  Idempotent, any error path."""
        self._finalizer()


def run_chunk_into_shm(
    protocol,
    population,
    scheduler_factory,
    initial_factory,
    problem,
    max_interactions: int,
    backend: str,
    check_interval: int | None,
    sanitize: bool,
    fault_hook,
    seeds: Sequence[int],
    row_lo: int,
    counts_meta: ShmBlockMeta,
    scalars_meta: ShmBlockMeta,
) -> tuple | None:
    """Worker body: run one seed chunk natively, write raw rows in place.

    Returns a small marker ``("shm", n_rows, wall_seconds, has_leap)``
    on success - the actual results live in the shared blocks at rows
    ``[row_lo, row_lo + n_rows)`` - or ``None`` when the chunk's
    lockstep preconditions fail, in which case the caller degrades to
    the pickled per-chunk runner (which warns and walks the ladder).

    Shared between the ensemble layer (:func:`maybe_run_sharded`) and
    the serving pool (:mod:`repro.serve.pool`), so both transports have
    one write path and one ownership discipline.
    """
    from repro.engine.bleap import BatchedLeapSimulator
    from repro.engine.ensemble import _LazyInitials

    schedulers = [scheduler_factory(population, seed) for seed in seeds]
    initials = _LazyInitials(initial_factory, population, seeds)
    simulator_class = (
        BatchedLeapSimulator if backend == "bleap" else BatchedEnsembleSimulator
    )
    simulator = simulator_class(
        protocol,
        population,
        schedulers[0],
        problem,
        check_interval,
        sanitize=sanitize,
    )
    raw, _reason = simulator.run_replicates_raw(
        initials,
        schedulers,
        max_interactions=max_interactions,
        fault_hook=fault_hook,
    )
    if raw is None:
        return None
    counts = SharedBlock.attach(counts_meta)
    scalars = SharedBlock.attach(scalars_meta)
    try:
        counts.array[row_lo : row_lo + raw.n_rows] = raw.counts
        scalars.array[row_lo : row_lo + raw.n_rows] = raw.scalars
    finally:
        counts.close()
        scalars.close()
    return ("shm", raw.n_rows, raw.wall_seconds, raw.has_leap)


def _shard_task(task: tuple) -> tuple | list:
    """Pool entry point: shm fast path, pickled ladder walk on failure."""
    common, seeds, row_lo, counts_meta, scalars_meta = task
    (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        _raise_on_timeout,  # enforced in the parent, in seed order
        fault_hook,
        sanitize,
    ) = common
    marker = run_chunk_into_shm(
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        sanitize,
        fault_hook,
        seeds,
        row_lo,
        counts_meta,
        scalars_meta,
    )
    if marker is not None:
        return marker
    from repro.engine.ensemble import _run_batch_chunk

    return _run_batch_chunk((common, list(seeds)))


def maybe_run_sharded(
    common: tuple, seeds: Sequence[int], n_jobs: int
) -> "list[SimulationResult] | None":
    """Run a lockstep ensemble sharded over shared memory, if possible.

    Returns results in seed order, or ``None`` when the shared path
    cannot apply (no shared memory - warned; obvious precondition
    misses - silent, the pickle path will produce the warning) so the
    caller falls through to the existing pickle-transport pool.
    """
    available, reason = shm_available()
    if not available:
        warn_fallback("parallel", "pickle-transport ensemble", reason)
        return None
    (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        raise_on_timeout,
        fault_hook,
        sanitize,
    ) = common
    # Cheap parent-side probe: compile once (cached by fingerprint) and
    # bail before allocating segments when the whole ensemble obviously
    # cannot run lockstep.  Chunks can still fail finer preconditions
    # inside workers (non-uniform schedulers, unenumerable initials);
    # those degrade per chunk, inside the pool.
    if fault_hook is not None:
        return None
    from repro.engine.bleap import BatchedLeapSimulator

    simulator_class = (
        BatchedLeapSimulator if backend == "bleap" else BatchedEnsembleSimulator
    )
    probe = simulator_class(
        protocol,
        population,
        scheduler_factory(population, seeds[0]),
        problem,
        check_interval,
        sanitize=sanitize,
    )
    if probe._table is None or probe._plan is None or not probe._plan.closed:
        return None
    from repro.engine.ensemble import _chunk_seeds

    seeds = list(seeds)
    chunks = _chunk_seeds(seeds, n_jobs)
    offsets = []
    row_lo = 0
    for chunk in chunks:
        offsets.append(row_lo)
        row_lo += len(chunk)
    n_rows = len(seeds)
    n_states = probe._table.n_states
    counts = SharedBlock.create((n_rows, n_states), "int64")
    scalars = SharedBlock.create((n_rows, N_SCALARS), "int64")
    lease = ShmLease((counts, scalars))
    try:
        tasks = [
            (common, chunk, off, counts.meta, scalars.meta)
            for chunk, off in zip(chunks, offsets)
        ]
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            outcomes = list(pool.map(_shard_task, tasks))
        return _assemble_sharded(
            probe,
            protocol,
            population,
            max_interactions,
            raise_on_timeout,
            counts,
            scalars,
            lease.nbytes,
            chunks,
            offsets,
            outcomes,
        )
    except BaseException as exc:
        # The traceback's frames pin NumPy views into the segments
        # (e.g. a ConvergenceError out of materialize_raw).  Release
        # below unmaps the memory, so drop those references first -
        # otherwise any later frame inspection reads unmapped pages.
        _traceback.clear_frames(exc.__traceback__)
        raise
    finally:
        lease.release()


def _assemble_sharded(
    probe,
    protocol,
    population,
    max_interactions: int,
    raise_on_timeout: bool,
    counts: SharedBlock,
    scalars: SharedBlock,
    shm_bytes: int,
    chunks: list,
    offsets: list,
    outcomes: list,
) -> "list[SimulationResult]":
    """Materialize per-chunk outcomes (markers or pickled lists) in order.

    Own frame so every view into the shared blocks dies before the
    caller releases the lease - closing a segment with live exports
    would raise :class:`BufferError`.
    """
    results = []
    shards = len(chunks)
    per_row_saved = (counts.meta.shape[1] + N_SCALARS) * 8
    for chunk, off, outcome in zip(chunks, offsets, outcomes):
        if isinstance(outcome, tuple) and outcome and outcome[0] == "shm":
            _, n_rows, wall_seconds, has_leap = outcome
            raw = LockstepRaw(
                counts=counts.array[off : off + n_rows],
                scalars=scalars.array[off : off + n_rows],
                has_leap=has_leap,
                wall_seconds=wall_seconds,
            )
            results.extend(
                materialize_raw(
                    probe._table,
                    probe._plan.n_mobile,
                    population,
                    protocol.display_name,
                    raw,
                    max_interactions,
                    raise_on_timeout,
                    shards=shards,
                    shm_bytes=shm_bytes,
                    copy_bytes_saved=per_row_saved,
                )
            )
        else:
            results.extend(outcome)
    return results
