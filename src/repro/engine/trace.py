"""Execution traces: bounded-memory records of what a simulation did.

Traces record interaction events (who met whom, which rule fired) and are
deliberately optional: long benchmark runs disable them, tests and the
examples use them to explain executions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId
from repro.engine.state import State


@dataclass(frozen=True, slots=True)
class InteractionRecord:
    """One pairwise interaction.

    ``step`` counts interactions from 0; ``initiator``/``responder`` are
    agent ids; the remaining fields give the applied rule
    ``(before_initiator, before_responder) -> (after_initiator,
    after_responder)``.
    """

    step: int
    initiator: AgentId
    responder: AgentId
    before_initiator: State
    before_responder: State
    after_initiator: State
    after_responder: State

    @property
    def is_null(self) -> bool:
        """Whether the interaction left both agents unchanged."""
        return (
            self.before_initiator == self.after_initiator
            and self.before_responder == self.after_responder
        )

    def rule(self) -> tuple[tuple[State, State], tuple[State, State]]:
        """The transition rule applied, as ``((p, q), (p', q'))``."""
        return (
            (self.before_initiator, self.before_responder),
            (self.after_initiator, self.after_responder),
        )

    def __str__(self) -> str:
        return (
            f"#{self.step}: agents ({self.initiator}, {self.responder}) "
            f"({self.before_initiator!r}, {self.before_responder!r}) -> "
            f"({self.after_initiator!r}, {self.after_responder!r})"
        )


class Trace:
    """A bounded buffer of interaction records.

    Parameters
    ----------
    capacity:
        Maximum number of records retained; older records are dropped.
        ``None`` keeps everything (use only for short runs).
    record_null:
        Whether null interactions are recorded too.  Defaults to ``False``
        because fair schedulers generate vast numbers of null meetings.
    """

    def __init__(
        self, capacity: int | None = 10_000, record_null: bool = False
    ) -> None:
        self._records: deque[InteractionRecord] = deque(maxlen=capacity)
        self._record_null = record_null
        self._total_recorded = 0
        self._total_non_null = 0

    def record(self, record: InteractionRecord) -> None:
        """Append a record, respecting the null-filtering policy."""
        if not record.is_null:
            self._total_non_null += 1
        elif not self._record_null:
            return
        self._records.append(record)
        self._total_recorded += 1

    @property
    def records(self) -> list[InteractionRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    @property
    def total_recorded(self) -> int:
        """Number of records ever offered and accepted (pre-eviction)."""
        return self._total_recorded

    @property
    def total_non_null(self) -> int:
        """Number of non-null interactions observed, recorded or not."""
        return self._total_non_null

    def __iter__(self) -> Iterator[InteractionRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def rules_fired(self) -> list[tuple[tuple[State, State], tuple[State, State]]]:
        """The distinct non-null rules among retained records."""
        seen: dict = {}
        for rec in self._records:
            if not rec.is_null:
                seen.setdefault(rec.rule(), None)
        return list(seen)

    def describe(self, limit: int = 20) -> str:
        """A human-readable summary of the most recent records."""
        lines = [str(rec) for rec in list(self._records)[-limit:]]
        header = (
            f"trace: {len(self._records)} retained / "
            f"{self._total_recorded} recorded, "
            f"{self._total_non_null} non-null interactions"
        )
        return "\n".join([header, *lines])


def replay(
    initial: Configuration, records: list[InteractionRecord]
) -> Configuration:
    """Re-apply a list of records to a configuration.

    Used by tests to confirm that traces faithfully describe executions.
    """
    config = initial
    for rec in records:
        config = config.apply(
            rec.initiator, rec.responder, (rec.after_initiator, rec.after_responder)
        )
    return config
