"""The fast simulation backend.

:class:`~repro.engine.simulator.Simulator` favours clarity: every
interaction rebuilds an immutable :class:`Configuration` tuple (O(N) per
non-null interaction), resolves the rule through a Python method call and
re-scans all mobile states on each convergence check.  That is the right
substrate for model checking and teaching, but the experiments (Table 1
sweeps, convergence studies) run millions of interactions over many seeds.

:class:`FastSimulator` is a drop-in replacement that produces
**bit-identical** :class:`SimulationResult`\\ s for the same seed while
running an order of magnitude faster:

* agent states live in a mutable list of small integers, interned through
  a per-protocol state <-> index table;
* the transition function is compiled once per protocol into a flat
  ``delta`` array mapping ``(state_idx, state_idx)`` to either ``None``
  (null interaction) or the resulting index pair - no Python-level rule
  dispatch in the hot loop;
* scheduler proposals are drawn in batches aligned to the convergence
  check interval (see :meth:`Scheduler.next_pairs`), with a random stream
  identical to one-at-a-time sampling;
* the mobile-state multiset is maintained incrementally, so the naming
  predicate (``names_distinct``) is O(1) per interaction and the silence
  certificate is O(distinct states squared) instead of O(N).

The backend falls back gracefully to the reference simulator whenever the
fast path cannot guarantee identical semantics: unhashable or unbounded
state spaces, configuration-inspecting (adversarial) schedulers, fault
hooks, or initial states outside the declared space.
"""

from __future__ import annotations

import hashlib
import time
import warnings
import weakref
from collections import OrderedDict

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.protocol import PopulationProtocol, verify_protocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
    Simulator,
)
from repro.engine.trace import InteractionRecord, Trace
from repro.errors import (
    BackendFallbackWarning,
    ConfigurationError,
    ConvergenceError,
    SimulationError,
)
from repro.schedulers.base import Scheduler

#: Largest combined state-space size eagerly compiled into a transition
#: table.  Above this the quadratic compile cost would dominate short runs,
#: so the backend falls back to the reference simulator instead.
DEFAULT_COMPILE_LIMIT = 512


class TransitionTable:
    """A protocol's transition function, compiled to integer indices.

    States are interned into ``states`` (index -> state) and ``index``
    (state -> index).  ``delta`` is a flat row-major array of size
    ``n_states ** 2``: entry ``i * n_states + j`` is ``None`` when
    ``transition(states[i], states[j])`` is null, else the pair
    ``(i', j')`` of result indices.  Pairs of two leader-only states are
    never scheduled (a population has one leader) and are left null.

    ``fingerprint`` is a content hash over the canonical state ordering
    and the non-null delta entries (see :func:`table_fingerprint`): two
    semantically equal protocol instances compile to tables with equal
    fingerprints, which keys every downstream compiled-artifact cache
    (counts plans, leap delta matrices, the ``repro.serve`` store).
    """

    __slots__ = (
        "states", "index", "n_states", "delta", "mobile_indices",
        "fingerprint",
    )

    def __init__(
        self,
        protocol: PopulationProtocol,
        mobile_states: frozenset,
        leader_states: frozenset,
    ) -> None:
        states, n_mobile, delta = _enumerate_delta(
            protocol, mobile_states, leader_states
        )
        self._init_from_parts(states, n_mobile, delta, None)

    @classmethod
    def from_parts(
        cls,
        states: list,
        n_mobile: int,
        delta: list[tuple[int, int] | None],
        fingerprint: str | None = None,
    ) -> "TransitionTable":
        """Build a table from already-enumerated parts.

        Used by :func:`compile_table` so the transition function is
        enumerated exactly once even when the fingerprint is computed
        before the table object exists.  ``fingerprint`` may be passed
        when the caller already hashed the parts; it is recomputed when
        omitted.
        """
        table = cls.__new__(cls)
        table._init_from_parts(states, n_mobile, delta, fingerprint)
        return table

    def _init_from_parts(
        self,
        states: list,
        n_mobile: int,
        delta: list[tuple[int, int] | None],
        fingerprint: str | None,
    ) -> None:
        self.states = states
        self.n_states = len(states)
        self.index = {s: i for i, s in enumerate(states)}
        self.mobile_indices = frozenset(range(n_mobile))
        self.delta = delta
        self.fingerprint = (
            fingerprint
            if fingerprint is not None
            else _fingerprint_parts(states, n_mobile, delta)
        )

    def __reduce__(self):
        """Pickle via the enumerated parts (slots carry no dict)."""
        return (
            TransitionTable.from_parts,
            (
                self.states,
                len(self.mobile_indices),
                self.delta,
                self.fingerprint,
            ),
        )

    def is_null_idx(self, i: int, j: int) -> bool:
        """Whether the interned pair ``(i, j)`` is a null interaction."""
        return self.delta[i * self.n_states + j] is None


def _enumerate_delta(
    protocol: PopulationProtocol,
    mobile_states: frozenset,
    leader_states: frozenset,
) -> tuple[list, int, list[tuple[int, int] | None]]:
    """Enumerate the canonical state list and flat delta array.

    Returns ``(states, n_mobile, delta)`` where ``states`` is the
    canonical (:func:`repro.engine.state.sort_key`-ordered) state list,
    mobile states first, and ``delta`` is the flat row-major result
    array described on :class:`TransitionTable`.  This is the only place
    the transition function is called during compilation.
    """
    from repro.engine.state import sort_key

    mobile = sorted(mobile_states, key=sort_key)
    leader_only = sorted(leader_states - mobile_states, key=sort_key)
    states: list = mobile + leader_only
    n = len(states)
    n_mobile = len(mobile)
    index = {s: i for i, s in enumerate(states)}
    delta: list[tuple[int, int] | None] = [None] * (n * n)
    transition = protocol.transition
    for i, p in enumerate(states):
        row = i * n
        for j, q in enumerate(states):
            if i >= n_mobile and j >= n_mobile:
                continue  # leader-leader pairs are unschedulable
            p2, q2 = transition(p, q)
            if (p2, q2) != (p, q):
                delta[row + j] = (index[p2], index[q2])
    return states, n_mobile, delta


def _fingerprint_parts(
    states: list,
    n_mobile: int,
    delta: list[tuple[int, int] | None],
) -> str:
    """Content hash of a compiled table's canonical parts.

    Hashes the canonical sort keys of the interned states (not their
    reprs alone, so distinct kinds never collide), the mobile/leader
    split, and every non-null delta entry.  Display names and other
    presentation attributes are deliberately excluded: two protocol
    instances with equal state spaces and equal transition functions
    fingerprint identically and therefore share compiled artifacts.
    """
    from repro.engine.state import sort_key

    h = hashlib.sha256()
    h.update(f"repro-table-v1|{n_mobile}|{len(states)}".encode())
    for s in states:
        h.update(b"\x00")
        h.update(repr(sort_key(s)).encode())
    for flat, hit in enumerate(delta):
        if hit is not None:
            h.update(f"|{flat}:{hit[0]},{hit[1]}".encode())
    return h.hexdigest()


#: Most compiled tables kept alive by the fingerprint-keyed LRU below.
TABLE_CACHE_SIZE = 128

#: Compiled tables keyed by content fingerprint: two *equal* protocol
#: instances (same state space, same transition function) share one
#: table, where the previous identity-keyed WeakKeyDictionary recompiled
#: per instance.  Bounded LRU so long-lived serving processes cannot
#: accumulate unboundedly many tables.
_TABLE_CACHE: "OrderedDict[str, TransitionTable]" = OrderedDict()

#: Weak instance -> fingerprint map: makes the second ``compile_table``
#: call on the *same* instance O(1) (no re-enumeration just to rehash).
_FINGERPRINTS: "weakref.WeakKeyDictionary[PopulationProtocol, str]"
_FINGERPRINTS = weakref.WeakKeyDictionary()


def _remember_table(table: TransitionTable) -> None:
    """Insert ``table`` into the LRU, evicting the oldest beyond the cap."""
    _TABLE_CACHE[table.fingerprint] = table
    _TABLE_CACHE.move_to_end(table.fingerprint)
    while len(_TABLE_CACHE) > TABLE_CACHE_SIZE:
        _TABLE_CACHE.popitem(last=False)


def seed_compiled_table(table: TransitionTable) -> None:
    """Inject a precompiled table into the process-wide cache.

    Used by serving workers (:mod:`repro.serve.pool`) that load compiled
    tables from the content-addressed disk store instead of recompiling:
    after seeding, any ``compile_table`` call on a protocol with the same
    fingerprint returns the injected table without enumerating
    transitions into a fresh object.
    """
    _remember_table(table)


def table_fingerprint(
    protocol: PopulationProtocol,
    compile_limit: int = DEFAULT_COMPILE_LIMIT,
) -> str | None:
    """Canonical content fingerprint of ``protocol``'s compiled table.

    Returns ``None`` exactly when :func:`compile_table` would (state
    space unhashable, unenumerable, raising, or over ``compile_limit``).
    The fingerprint is a sha256 hex digest over the canonical state
    ordering and the non-null transition entries; equal protocol
    instances fingerprint identically across processes and runs.
    """
    table = compile_table(protocol, compile_limit)
    return None if table is None else table.fingerprint


def warn_fallback(backend: str, delegate: str, reason: str) -> None:
    """Warn that ``backend`` delegates the current run to ``delegate``.

    The run's results are unaffected (the delegate is exact); the warning
    exists so users relying on an accelerated path learn why they did not
    get it.  Emits a :class:`repro.errors.BackendFallbackWarning` whose
    text includes ``reason`` and which carries ``backend``, ``delegate``
    and ``reason`` as attributes for programmatic inspection
    (``warnings.catch_warnings(record=True)`` entries expose them on
    ``.message``).
    """
    warnings.warn(
        BackendFallbackWarning(
            f"{backend} backend falling back to the {delegate} simulator: "
            f"{reason}",
            backend=backend,
            delegate=delegate,
            reason=reason,
        ),
        stacklevel=3,
    )


def compile_table(
    protocol: PopulationProtocol,
    compile_limit: int = DEFAULT_COMPILE_LIMIT,
) -> TransitionTable | None:
    """Compile (or fetch the cached) transition table for ``protocol``.

    Returns ``None`` when the protocol cannot be compiled: its state space
    is unhashable, unenumerable, raises, or exceeds ``compile_limit``
    states.  Callers treat ``None`` as "use the reference simulator".

    The cache is keyed by content fingerprint, not object identity: two
    equal protocol instances (same states, same transitions) share one
    compiled table, and tables injected via :func:`seed_compiled_table`
    (e.g. loaded from the ``repro.serve`` content-addressed store) are
    found without rebuilding.
    """
    try:
        known_fp = _FINGERPRINTS.get(protocol)
    except TypeError:  # unhashable protocol instance
        known_fp = None
    if known_fp is not None:
        cached = _TABLE_CACHE.get(known_fp)
        if cached is not None:
            _TABLE_CACHE.move_to_end(known_fp)
            return cached
    try:
        mobile = frozenset(protocol.mobile_state_space())
        if len(mobile) > compile_limit:
            return None
        # Consult the closed-form size hint *before* materializing the
        # leader space: for several protocols it is exponential in the
        # name bound, and enumerating it just to reject it would cost
        # the very blow-up this gate exists to prevent.
        if protocol.leader_space_size() > compile_limit:
            return None
        leader = frozenset(protocol.leader_state_space())
        if len(mobile | leader) > compile_limit:
            return None
        states, n_mobile, delta = _enumerate_delta(protocol, mobile, leader)
    except Exception:
        return None
    fingerprint = _fingerprint_parts(states, n_mobile, delta)
    table = _TABLE_CACHE.get(fingerprint)
    if table is None:
        table = TransitionTable.from_parts(
            states, n_mobile, delta, fingerprint
        )
    _remember_table(table)
    try:
        _FINGERPRINTS[protocol] = fingerprint
    except TypeError:
        pass
    return table


class FastSimulator:
    """Array-based simulator, bit-identical to :class:`Simulator`.

    Accepts the same constructor arguments and exposes the same
    :meth:`run` contract as the reference simulator; for any seed the two
    backends return equal :class:`SimulationResult`\\ s (the differential
    tests in ``tests/engine/test_fast.py`` enforce this).  Runs that the
    fast path cannot honour exactly are delegated to an internal reference
    simulator; :attr:`last_run_fast` reports which path served the last
    :meth:`run` call.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`Simulator`.
    compile_limit:
        Largest state-space size eagerly compiled; larger protocols fall
        back to the reference loop.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        the fast path checks its counts multiset, interned index ranges
        and silence monotonicity at every batch boundary; delegated runs
        inherit the reference simulator's sanitizer.  Checks never
        consume randomness, so sanitized runs stay bit-identical.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        sanitize: bool = False,
    ) -> None:
        # The reference simulator validates the wiring and serves as the
        # graceful-fallback delegate.
        self._reference = Simulator(
            protocol, population, scheduler, problem, check_interval,
            sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._reference.check_interval
        self.sanitize = sanitize
        self._table = compile_table(protocol, compile_limit)
        #: Whether the most recent :meth:`run` used the fast path.
        self.last_run_fast = False

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute until certified convergence or the budget is exhausted.

        Same parameters and semantics as :meth:`Simulator.run`.  Fault
        hooks mutate whole configurations per interaction and
        configuration-inspecting schedulers defeat batch sampling, so
        those runs delegate to the reference simulator.
        """
        table = self._table
        reason = None
        if table is None:
            reason = (
                "the protocol's state space could not be compiled to a "
                "transition table (unhashable, unenumerable or oversized)"
            )
        elif fault_hook is not None:
            reason = "fault hooks mutate whole configurations per interaction"
        elif self.scheduler.inspects_configuration:
            reason = (
                f"scheduler {self.scheduler.display_name!r} inspects the "
                "configuration, which defeats batched pair sampling"
            )
        if reason is not None:
            warn_fallback("fast", "reference", reason)
            self.last_run_fast = False
            return self._reference.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        try:
            state_idx = [table.index[s] for s in initial.states]
        except (KeyError, TypeError):
            # States outside the declared space (or unhashable): the
            # reference loop handles them by construction.
            warn_fallback(
                "fast",
                "reference",
                "the initial configuration holds states outside the "
                "protocol's declared state space",
            )
            self.last_run_fast = False
            return self._reference.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        leader_agent = initial.leader_index
        mobile_indices = table.mobile_indices
        if any(
            idx not in mobile_indices
            for agent, idx in enumerate(state_idx)
            if agent != leader_agent
        ):
            # A mobile agent holding a leader-only state is pathological;
            # only the reference loop defines its semantics.
            warn_fallback(
                "fast",
                "reference",
                "a mobile agent holds a leader-only state",
            )
            self.last_run_fast = False
            return self._reference.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_fast = True
        return self._run_fast(
            state_idx,
            leader_agent,
            max_interactions,
            trace,
            raise_on_timeout,
            observer,
        )

    # ------------------------------------------------------------------
    # Fast path internals
    # ------------------------------------------------------------------

    def _run_fast(
        self,
        state_idx: list[int],
        leader_agent: int | None,
        max_interactions: int,
        trace: Trace | None,
        raise_on_timeout: bool,
        observer: Observer | None,
    ) -> SimulationResult:
        """The array-based hot loop; assumes all fast-path preconditions."""
        started = time.perf_counter()
        table = self._table
        assert table is not None
        nst = table.n_states
        delta = table.delta
        objs = table.states
        problem = self.problem
        protocol = self.protocol
        scheduler = self.scheduler
        check_interval = self.check_interval

        # Incremental mobile-state multiset: counts per interned index and
        # the number of duplicated states (names_distinct <=> dup == 0).
        counts = [0] * nst
        dup = 0
        for agent, idx in enumerate(state_idx):
            if agent != leader_agent:
                counts[idx] += 1
                if counts[idx] == 2:
                    dup += 1
        leader_idx = (
            state_idx[leader_agent] if leader_agent is not None else None
        )

        # The paper's problems certify via NamingProblem's predicate plus
        # the default silence stability; anything customized gets the
        # generic (materialize-and-ask) check, still O(N) only once per
        # check interval.
        fast_naming = problem is not None and type(problem) is NamingProblem

        def materialize() -> Configuration:
            """Rebuild an immutable Configuration from the state array."""
            return Configuration(
                tuple(objs[i] for i in state_idx), leader_agent
            )

        def silent() -> bool:
            """Incremental mirror of :func:`repro.engine.problems.is_silent`."""
            merged: dict[int, int] = {}
            for i, c in enumerate(counts):
                if c:
                    merged[i] = c
            if leader_idx is not None:
                merged[leader_idx] = merged.get(leader_idx, 0) + 1
            present = list(merged)
            for a, s in enumerate(present):
                if merged[s] >= 2 and delta[s * nst + s] is not None:
                    return False
                for t in present[a + 1 :]:
                    if (
                        delta[s * nst + t] is not None
                        or delta[t * nst + s] is not None
                    ):
                        return False
            return True

        def solved() -> bool:
            """Certified convergence, matching ``problem.is_solved``."""
            if fast_naming:
                return dup == 0 and silent()
            return problem.is_solved(protocol, materialize())

        sanitizing = self.sanitize
        if sanitizing:
            tracker = _sanitize.SilenceTracker("fast")
            sanitize_non_null = 0
            n_mobile_agents = self.population.size - (
                1 if leader_agent is not None else 0
            )

        non_null = 0
        converged_at: int | None = None
        quiescent_since_check = True
        if problem is not None and solved():
            converged_at = 0

        plain = trace is None and observer is None
        interaction = 0
        while interaction < max_interactions and converged_at is None:
            batch = min(
                check_interval - interaction % check_interval,
                max_interactions - interaction,
            )
            pairs = scheduler.next_pairs(None, batch)
            if plain:
                # Hot loop: no trace, no observer - nothing needs the
                # per-interaction index, so it advances by whole batches.
                for a, b in pairs:
                    hit = delta[state_idx[a] * nst + state_idx[b]]
                    if hit is None:
                        continue
                    if a == b:
                        raise ConfigurationError(
                            "an agent cannot interact with itself"
                        )
                    i = state_idx[a]
                    j = state_idx[b]
                    i2, j2 = hit
                    state_idx[a] = i2
                    state_idx[b] = j2
                    if a == leader_agent:
                        leader_idx = i2
                    elif i != i2:
                        c = counts[i] = counts[i] - 1
                        if c == 1:
                            dup -= 1
                        c = counts[i2] = counts[i2] + 1
                        if c == 2:
                            dup += 1
                    if b == leader_agent:
                        leader_idx = j2
                    elif j != j2:
                        c = counts[j] = counts[j] - 1
                        if c == 1:
                            dup -= 1
                        c = counts[j2] = counts[j2] + 1
                        if c == 2:
                            dup += 1
                    non_null += 1
                    quiescent_since_check = False
                interaction += batch
            else:
                for a, b in pairs:
                    i = state_idx[a]
                    j = state_idx[b]
                    hit = delta[i * nst + j]
                    if hit is not None:
                        if a == b:
                            raise ConfigurationError(
                                "an agent cannot interact with itself"
                            )
                        i2, j2 = hit
                        state_idx[a] = i2
                        state_idx[b] = j2
                        if a == leader_agent:
                            leader_idx = i2
                        elif i != i2:
                            c = counts[i] = counts[i] - 1
                            if c == 1:
                                dup -= 1
                            c = counts[i2] = counts[i2] + 1
                            if c == 2:
                                dup += 1
                        if b == leader_agent:
                            leader_idx = j2
                        elif j != j2:
                            c = counts[j] = counts[j] - 1
                            if c == 1:
                                dup -= 1
                            c = counts[j2] = counts[j2] + 1
                            if c == 2:
                                dup += 1
                        non_null += 1
                        quiescent_since_check = False
                        if observer is not None:
                            observer(interaction, materialize())
                        if trace is not None:
                            trace.record(
                                InteractionRecord(
                                    interaction, a, b,
                                    objs[i], objs[j], objs[i2], objs[j2],
                                )
                            )
                    elif trace is not None:
                        trace.record(
                            InteractionRecord(
                                interaction, a, b,
                                objs[i], objs[j], objs[i], objs[j],
                            )
                        )
                    interaction += 1

            if sanitizing:
                # Batch-boundary cadence: cheap enough to run on every
                # batch (each at most one check interval long), and the
                # incremental counts/dup bookkeeping is exactly what the
                # convergence verdicts are computed from.
                _sanitize.check_counts_vector(
                    "fast", counts, n_mobile_agents, interaction
                )
                _sanitize.check_index_vector(
                    "fast",
                    state_idx,
                    nst,
                    table.mobile_indices,
                    leader_agent,
                    interaction,
                )
                if non_null != sanitize_non_null:
                    tracker.note_change(interaction)
                    sanitize_non_null = non_null
                if silent():
                    tracker.note_silent()

            if (
                problem is not None
                and not quiescent_since_check
                and interaction % check_interval == 0
            ):
                if solved():
                    converged_at = interaction
                quiescent_since_check = True

        if converged_at is None and problem is not None and solved():
            converged_at = interaction

        converged = converged_at is not None
        if not converged and raise_on_timeout:
            raise ConvergenceError(
                f"{protocol.display_name} did not converge within "
                f"{max_interactions} interactions",
                interactions=interaction,
            )
        return SimulationResult(
            converged=converged,
            interactions=interaction,
            non_null_interactions=non_null,
            final_configuration=materialize(),
            population=self.population,
            trace=trace,
            convergence_interaction=converged_at,
            faults_injected=0,
            stats=RunStats.measure(started, interaction, non_null),
        )


#: Registry of simulation backends selectable by name.
BACKENDS: dict[str, type] = {
    "reference": Simulator,
    "fast": FastSimulator,
}


def make_simulator(
    backend: str,
    protocol: PopulationProtocol,
    population: Population,
    scheduler: Scheduler,
    problem: Problem | None = None,
    check_interval: int | None = None,
    validate: bool = False,
    sanitize: bool = False,
    leap_eps: float | None = None,
):
    """Build a simulator for ``backend``.

    Known names are the :data:`BACKENDS` keys: ``"reference"``,
    ``"fast"`` and (once :mod:`repro.engine.counts`,
    :mod:`repro.engine.batch`, :mod:`repro.engine.leap` and
    :mod:`repro.engine.bleap` are imported, which ``repro.engine``
    always does) ``"counts"``, ``"batch"``, ``"leap"`` and ``"bleap"``.
    Raises :class:`SimulationError` for unknown backend names.

    ``leap_eps`` sets the per-window relative-change bound of the
    approximate tau-leaping backends, ``"leap"`` and ``"bleap"`` (see
    :data:`repro.engine.leap.DEFAULT_LEAP_EPS`); it is forwarded to the
    backend class only when given, and only those backends accept it.

    ``validate=True`` runs :func:`repro.engine.protocol.verify_protocol`
    before constructing the simulator, so malformed protocols (role
    leaks, broken symmetry claims) fail loudly at construction time with
    a :class:`~repro.errors.ProtocolError` instead of corrupting a run -
    the static sibling of the :class:`~repro.errors.BackendFallbackWarning`
    convention: off by default because it enumerates the full state-pair
    space, opt-in where construction cost matters less than certainty.

    ``sanitize=True`` arms the runtime sanitizer
    (:mod:`repro.engine.sanitize`) on the built simulator: runs assert
    conserved population size, nonnegative counts, state-range/role
    discipline and no post-silence change, raising
    :class:`~repro.errors.SanitizerError` on violation, while remaining
    bit-identical to unsanitized runs.  Only passed to the backend class
    when set, so third-party :data:`BACKENDS` registrations without a
    ``sanitize`` parameter keep working.
    """
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {backend!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from None
    if validate:
        verify_protocol(protocol)
    # Optional knobs are only passed when set, so third-party BACKENDS
    # registrations without the parameters keep working.
    kwargs = {}
    if sanitize:
        kwargs["sanitize"] = True
    if leap_eps is not None:
        kwargs["leap_eps"] = leap_eps
    try:
        return cls(
            protocol, population, scheduler, problem, check_interval,
            **kwargs,
        )
    except TypeError:
        if "leap_eps" in kwargs:
            raise SimulationError(
                f"backend {backend!r} does not accept leap_eps (only "
                "the approximate leap/bleap backends are tunable)"
            ) from None
        raise
