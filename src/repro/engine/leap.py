"""The multinomial leap backend: many interactions per step, with
adaptive error control.

Every other backend - reference, fast, counts, batch - pays O(1) work
*per interaction*, so a run of ``K`` interactions costs at least ``K``
sampler draws no matter how clever the representation.  That is the
classic limitation of exact stochastic simulation (SSA), and the classic
answer is *tau-leaping*: freeze the transition propensities for a window
of tau interactions, draw how often each interaction type fired inside
the window from one multinomial, and apply the aggregate effect in a
single vectorized update.  Per-window cost is O(pairs + states),
independent of both the population size N and the window length tau, so
sweeps that were bottlenecked by event count (naming dynamics at
N = 10^7-10^8) become bottlenecked only by the number of windows.

The chain being leapt is the counts process of
:mod:`repro.engine.counts`: under the uniform-random pair scheduler the
probability that one scheduler proposal realizes the ordered non-null
state pair ``f = (i, j)`` is ``p_f = c_i (c_j - [i = j]) / N(N-1)``,
and a null proposal happens with the remaining mass.  Holding ``c``
fixed for ``tau`` proposals, the vector of per-pair firing counts is
exactly ``Multinomial(tau, (p_1, ..., p_F, p_null))``; the counts move
by ``k @ D`` where row ``f`` of the precompiled delta matrix ``D``
holds pair ``f``'s unit effect ``(-1 at i, -1 at j, +1 at i', +1 at
j')``.  The approximation error is that ``c`` does *not* stay fixed
inside the window - the standard tau-leap trade - and is controlled
three ways:

* **adaptive tau** (the ``leap_eps`` bound): before each window the
  expected drift ``mu = D^T p`` and diffusion ``sigma^2 = (D*D)^T p``
  per interaction are computed, and tau is capped so that no state's
  expected change or variance inside the window exceeds
  ``max(leap_eps * c_s, 1)`` (the Gillespie/Petzold tau-selection rule);
* **clip/repair**: a drawn window that would push any count negative is
  discarded and redrawn with tau halved (counted in
  ``RunStats.repairs``), so configurations stay feasible;
* **exact fallback**: when the adaptive tau collapses towards 1 (heavy
  relative churn, small populations) or the window would contain only a
  handful of events (the sparse endgame near silence, where exact
  geometric gap-skipping is just as fast), the backend advances by
  *exact* SSA steps - geometric null-gap plus categorical event pick,
  the same chain the counts backend samples - so small populations and
  endgames remain faithful to the counts distribution.

Convergence semantics are *windowed*: silence (total non-null weight
zero) is tested at every window refresh, and a silent run's convergence
interaction is rounded up to the next ``check_interval`` boundary
(capped at the budget), matching the per-run backends' check cadence up
to one window.  The naming predicate is evaluated straight off the
counts vector.  Distributional accuracy against the exact counts
backend - silence-time and final-configuration statistics under
KS-style bounds - is validated in ``tests/engine/test_leap.py`` and by
the CI smoke check.

Runs the leap view cannot honour - non-uniform schedulers, fault hooks,
traces/observers, problems other than the permutation-invariant naming
problem, open-role protocols, missing NumPy - fall back to the exact
:class:`~repro.engine.counts.CountSimulator` (which continues down the
ladder ``counts -> fast -> reference``) with a
:class:`~repro.errors.BackendFallbackWarning` naming the reason.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.counts import (
    CountSimulator,
    intern_initial,
    materialize_counts,
)
from repro.engine.fast import BACKENDS, DEFAULT_COMPILE_LIMIT, warn_fallback
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
)
from repro.engine.trace import Trace
from repro.errors import ConvergenceError, SimulationError
from repro.schedulers.base import Scheduler

try:  # NumPy powers the multinomial kernel; without it we delegate.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None

#: Default relative-change bound per window: tau is capped so that no
#: state's expected change (or standard deviation squared) inside one
#: window exceeds ``max(DEFAULT_LEAP_EPS * count, 1)``.  0.03 is the
#: standard tau-leaping operating point: large enough for million-fold
#: aggregation at N >= 10^6, small enough that the KS validation against
#: the exact counts backend passes comfortably.
DEFAULT_LEAP_EPS = 0.03

#: Windows shorter than this run as exact SSA steps instead: a
#: multinomial draw over all pairs costs more than a handful of exact
#: events, and exact steps carry no approximation error.
DEFAULT_MIN_TAU = 16

#: Minimum expected number of non-null events per multinomial window.
#: Below this (the sparse endgame near silence) exact geometric
#: gap-skipping advances just as fast per event and is exact, so the
#: leap adds error for no speed.
MIN_WINDOW_EVENTS = 32.0

#: Exact SSA events advanced per fallback burst before tau is
#: re-estimated (the counts may have drifted enough to leap again).
EXACT_BURST = 64


class _LeapOutcome:
    """Raw outcome of one :meth:`LeapSimulator._advance_native` call.

    Everything the callers (the leap backend's own :meth:`run` and the
    fluid backend's stochastic endgame) need to assemble a
    :class:`~repro.engine.simulator.SimulationResult` without forcing an
    O(N) configuration materialization on them.
    """

    __slots__ = (
        "counts",
        "pos",
        "events",
        "leaps",
        "leap_interactions",
        "repairs",
        "converged_at",
    )

    def __init__(
        self,
        counts,
        pos: int,
        events: int,
        leaps: int,
        leap_interactions: int,
        repairs: int,
        converged_at: int | None,
    ) -> None:
        self.counts = counts
        self.pos = pos
        self.events = events
        self.leaps = leaps
        self.leap_interactions = leap_interactions
        self.repairs = repairs
        self.converged_at = converged_at


class _LeapPlan:
    """Per-table leap tables, shared across simulators of one protocol.

    ``deltas`` is the (pairs, states) int64 matrix whose row ``f`` is
    non-null pair ``f``'s aggregate unit effect on the counts vector;
    ``deltas_sq`` its elementwise square (for the variance term of the
    tau-selection rule).
    """

    __slots__ = ("deltas", "deltas_sq", "fingerprint")

    def __init__(self, plan) -> None:
        self.fingerprint = plan.fingerprint
        n_pairs = plan.pair_i.shape[0]
        deltas = _np.zeros((n_pairs, plan.n_states), dtype=_np.int64)
        rows = _np.arange(n_pairs)
        _np.add.at(deltas, (rows, plan.pair_i), -1)
        _np.add.at(deltas, (rows, plan.pair_j), -1)
        _np.add.at(deltas, (rows, plan.res_i), 1)
        _np.add.at(deltas, (rows, plan.res_j), 1)
        self.deltas = deltas
        self.deltas_sq = deltas * deltas


#: Bound on the fingerprint-keyed leap-plan LRU (mirrors the table cache).
LEAP_CACHE_SIZE = 128

#: Leap plans keyed by the compiled table's content fingerprint (like the
#: table and counts-plan caches): equal protocol instances and serving
#: workers loading precompiled artifacts share one delta matrix.
_LEAP_CACHE: "OrderedDict[str, _LeapPlan]" = OrderedDict()


def seed_leap_plan(leap: _LeapPlan) -> None:
    """Inject precompiled delta matrices into the process-wide cache.

    Called by serving workers (:mod:`repro.serve.pool`) with plans loaded
    from the content-addressed disk store, so tau-leaping runs skip the
    (pairs x states) matrix construction.
    """
    _LEAP_CACHE[leap.fingerprint] = leap
    _LEAP_CACHE.move_to_end(leap.fingerprint)
    while len(_LEAP_CACHE) > LEAP_CACHE_SIZE:
        _LEAP_CACHE.popitem(last=False)


def _leap_plan_for(protocol: PopulationProtocol, plan) -> _LeapPlan:
    """Build (or fetch the cached) delta matrices for ``plan``'s table."""
    cached = _LEAP_CACHE.get(plan.fingerprint)
    if cached is not None:
        _LEAP_CACHE.move_to_end(plan.fingerprint)
        return cached
    leap = _LeapPlan(plan)
    seed_leap_plan(leap)
    return leap


class LeapSimulator:
    """Aggregated-interaction simulator: many interactions per step.

    Accepts the same constructor arguments and exposes the same
    :meth:`run` contract as the other backends (registered as
    ``BACKENDS["leap"]``).  Runs served natively are *approximately*
    distribution-equivalent to the exact counts backend, with the error
    bounded per window by ``leap_eps`` (see the module docstring); runs
    the leap view cannot honour delegate to an internal
    :class:`~repro.engine.counts.CountSimulator` with a
    :class:`~repro.errors.BackendFallbackWarning`.
    :attr:`last_run_native` reports which path served the last
    :meth:`run` call.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`~repro.engine.simulator.Simulator`.
    compile_limit:
        Largest state-space size eagerly compiled (shared with the fast
        and counts backends); larger protocols delegate.
    leap_eps:
        Relative per-window change bound of the adaptive tau selection
        (``--leap-eps`` on the CLIs).  Smaller is more accurate and
        slower; the default :data:`DEFAULT_LEAP_EPS` passes the KS
        validation suite.
    min_tau:
        Windows whose adaptive tau falls below this run as exact SSA
        steps instead (bit-faithful in distribution to the counts
        backend), so small populations never pay leap error.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        the native path checks its counts vector (nonnegative entries
        summing to the population size) at every window refresh and
        tracks post-silence changes at window granularity; delegated
        runs inherit the counts backend's sanitizer.  Checks never
        consume randomness.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        leap_eps: float = DEFAULT_LEAP_EPS,
        min_tau: int = DEFAULT_MIN_TAU,
        sanitize: bool = False,
    ) -> None:
        if not 0.0 < leap_eps < 1.0:
            raise SimulationError(
                f"leap_eps must be in (0, 1), got {leap_eps}"
            )
        if min_tau < 1:
            raise SimulationError(
                f"min_tau must be a positive integer, got {min_tau}"
            )
        # The counts simulator validates the wiring, compiles the shared
        # table/plan, and serves as the exact fallback delegate (which
        # may itself continue down the ladder to fast/reference).
        self._counts = CountSimulator(
            protocol, population, scheduler, problem, check_interval,
            compile_limit, sanitize=sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._counts.check_interval
        self.leap_eps = leap_eps
        self.min_tau = min_tau
        self.sanitize = sanitize
        self._table = self._counts._table
        self._plan = self._counts._plan
        self._leap = (
            _leap_plan_for(protocol, self._plan)
            if _np is not None and self._plan is not None
            else None
        )
        self._rng = (
            _np.random.default_rng(getattr(scheduler, "seed", None))
            if _np is not None
            else None
        )
        #: Whether the most recent :meth:`run` used the leap path.
        self.last_run_native = False
        #: Final counts vector of the most recent native run (interned
        #: order, leader included); ``None`` after delegated runs.
        self.last_counts: list[int] | None = None
        self._leader_pos: int | None = None

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute until certified convergence or the budget is exhausted.

        Same parameters and semantics as :meth:`Simulator.run`, with the
        windowed convergence cadence described in the module docstring.
        Traces, observers and fault hooks need agent identities, and
        only the naming problem can be certified straight off the counts
        vector, so those runs delegate to the exact counts backend.
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        counts, reason = self._native_preconditions(
            initial, trace, fault_hook, observer
        )
        if reason is not None:
            warn_fallback("leap", "counts", reason)
            self.last_run_native = False
            self.last_counts = None
            return self._counts.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_native = True
        self._leader_pos = initial.leader_index
        return self._run_native(counts, max_interactions, raise_on_timeout)

    # ------------------------------------------------------------------
    # Native-path preconditions
    # ------------------------------------------------------------------

    def _native_preconditions(
        self,
        initial: Configuration,
        trace: Trace | None,
        fault_hook: FaultHook | None,
        observer: Observer | None,
    ) -> tuple[list[int] | None, str | None]:
        """Intern the initial configuration, or explain why we cannot."""
        if _np is None:
            return None, "NumPy is not installed (the leap kernel needs it)"
        if self._table is None:
            return None, (
                "the protocol's state space could not be compiled to a "
                "transition table (unhashable, unenumerable or oversized)"
            )
        if not self._plan.closed:
            return None, (
                "a rule moves a state across the mobile/leader role "
                "boundary, so counts alone cannot identify the leader"
            )
        if not getattr(self.scheduler, "uniform_pairs", False):
            return None, (
                f"scheduler {self.scheduler.display_name!r} is not the "
                "uniform-random pair scheduler (multinomial leaping "
                "assumes independent uniform ordered pairs)"
            )
        if fault_hook is not None:
            return None, "fault hooks rewrite per-agent configurations"
        if trace is not None or observer is not None:
            return None, "traces and observers need agent identities"
        problem = self.problem
        if problem is not None:
            # The windowed kernel evaluates convergence straight off the
            # counts vector, which is only exact for the naming
            # predicate (distinct names + silence).
            if type(problem) is not NamingProblem:
                return None, (
                    "the leap kernel only certifies the naming problem; "
                    "other problems run on the exact counts backend"
                )
            if not getattr(problem, "permutation_invariant", False):
                return None, (
                    "the problem is not permutation-invariant, so it "
                    "cannot be evaluated on a canonical representative"
                )
        return intern_initial(self._table, self._plan.n_mobile, initial)

    # ------------------------------------------------------------------
    # The leap hot loop
    # ------------------------------------------------------------------

    def _run_native(
        self,
        counts: list[int],
        max_interactions: int,
        raise_on_timeout: bool,
    ) -> SimulationResult:
        """The windowed multinomial loop; assumes all preconditions."""
        started = time.perf_counter()
        outcome = self._advance_native(counts, 0, max_interactions)
        converged = outcome.converged_at is not None
        if not converged and raise_on_timeout:
            raise ConvergenceError(
                f"{self.protocol.display_name} did not converge within "
                f"{max_interactions} interactions",
                interactions=outcome.pos,
            )
        final_counts = [int(k) for k in outcome.counts]
        self.last_counts = final_counts
        pos, events = outcome.pos, outcome.events
        elapsed = time.perf_counter() - started
        return SimulationResult(
            converged=converged,
            interactions=pos,
            non_null_interactions=events,
            final_configuration=materialize_counts(
                self._table, self._plan.n_mobile, final_counts,
                self._leader_pos,
            ),
            population=self.population,
            trace=None,
            convergence_interaction=outcome.converged_at,
            faults_injected=0,
            stats=RunStats(
                wall_seconds=elapsed,
                interactions_per_second=(
                    pos / elapsed if elapsed > 0 else 0.0
                ),
                null_fraction=(
                    (pos - events) / pos if pos else 0.0
                ),
                leaps=outcome.leaps,
                mean_tau=(
                    outcome.leap_interactions / outcome.leaps
                    if outcome.leaps
                    else 0.0
                ),
                repairs=outcome.repairs,
            ),
        )

    def _advance_native(
        self,
        counts,
        start: int,
        max_interactions: int,
        label: str = "leap",
    ) -> _LeapOutcome:
        """Advance the counts chain from absolute position ``start`` to
        certified convergence or the absolute ``max_interactions`` budget.

        The counts-native core of the backend: takes and returns bare
        counts vectors (interned order, leader included) so callers that
        never hold an agent vector - the fluid backend's post-handoff
        endgame at N = 10^10 - can use it without any O(N) work.
        ``label`` names the backend in sanitizer reports.  Assumes all
        native preconditions hold.
        """
        np = _np
        plan = self._plan
        rng = self._rng
        pair_i, pair_j, diag = plan.pair_i, plan.pair_j, plan.diag
        deltas = self._leap.deltas
        deltas_sq = self._leap.deltas_sq
        n_pairs = pair_i.shape[0]
        n_mobile = plan.n_mobile
        c = np.asarray(counts, dtype=np.int64)
        size = self.population.size
        # Pair weights are computed in float64: the int64 products
        # c_i * c_j overflow beyond N ~ 3 * 10^9 (fluid-tier handoffs
        # reach N = 10^10), while float64 keeps them exact up to 2^53
        # (every stochastic-phase population) and silence detection
        # (weight == 0) exact at any size - a float product is zero iff
        # one factor is.
        total_pairs = float(size) * float(size - 1)
        eps = self.leap_eps
        min_tau = self.min_tau
        check_interval = self.check_interval
        checking = self.problem is not None
        budget = max_interactions

        pos = start  # completed interactions (nulls included)
        events = 0  # non-null interactions
        leaps = 0  # multinomial windows applied
        leap_interactions = 0  # interactions covered by those windows
        repairs = 0  # infeasible draws discarded (tau halved)
        converged_at: int | None = None

        sanitizing = self.sanitize
        if sanitizing:
            tracker = _sanitize.SilenceTracker(label)
        pvals = np.empty(n_pairs + 1)

        def boundary_at(p: int) -> int:
            """First check boundary at/after ``p``, capped at the budget."""
            if p % check_interval:
                p += check_interval - p % check_interval
            return min(p, budget)

        while pos < budget and converged_at is None:
            if sanitizing:
                # Window-refresh cadence: between refreshes the counts
                # move only through the vetted (repaired) aggregate
                # scatter or exact quad updates, so corruption shows
                # up here.
                _sanitize.check_counts_vector(label, c, size, pos)
            # -- refresh: true weights at the current counts --
            w = c[pair_i].astype(np.float64) * (c[pair_j] - diag)
            weight = float(w.sum())
            if weight == 0.0:
                # Silent configuration: frozen forever.  The verdict is
                # delivered at the next check boundary, matching the
                # per-run backends up to one window.
                if sanitizing:
                    tracker.note_silent()
                if checking and bool((c[:n_mobile] <= 1).all()):
                    converged_at = boundary_at(pos)
                    pos = converged_at
                else:
                    pos = budget
                break

            # -- adaptive tau: bound each state's expected change and
            # variance inside the window by max(eps * count, 1) --
            p = w / total_pairs
            mu = deltas.T @ p
            sig2 = deltas_sq.T @ p
            cap = np.maximum(eps * c, 1.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                t_drift = np.where(mu != 0.0, cap / np.abs(mu), np.inf)
                t_noise = np.where(sig2 > 0.0, cap * cap / sig2, np.inf)
            tau = min(float(t_drift.min()), float(t_noise.min()))
            tau = int(min(tau, float(budget - pos)))

            if (
                tau >= min_tau
                and tau * (weight / total_pairs) >= MIN_WINDOW_EVENTS
            ):
                # -- multinomial window, with clip/repair: an infeasible
                # draw (a count pushed negative) is discarded and the
                # window halved until feasible or too small to leap --
                pvals[:n_pairs] = p
                pvals[n_pairs] = max(0.0, 1.0 - float(p.sum()))
                pvals /= pvals.sum()
                applied = False
                while tau >= min_tau:
                    k = rng.multinomial(tau, pvals)[:n_pairs]
                    c_next = c + k @ deltas
                    if (c_next >= 0).all():
                        applied = True
                        break
                    repairs += 1
                    tau >>= 1
                if applied:
                    c = c_next
                    fired = int(k.sum())
                    pos += tau
                    events += fired
                    leaps += 1
                    leap_interactions += tau
                    if sanitizing and fired:
                        tracker.note_change(pos)
                    continue
                # Repair collapsed the window; step exactly instead.

            # -- exact-SSA burst: geometric null-gap plus categorical
            # event pick, the same chain the counts backend samples.
            # Serves collapsed-tau churn, small populations, and the
            # sparse endgame where exact gap-skipping is just as fast --
            burst = 0
            while burst < EXACT_BURST and pos < budget:
                if burst:
                    w = c[pair_i].astype(np.float64) * (c[pair_j] - diag)
                    weight = float(w.sum())
                    if weight == 0.0:
                        break  # the refresh above finalizes silence
                gap = int(rng.geometric(weight / total_pairs))
                if pos + gap > budget:
                    pos = budget
                    break
                pos += gap
                cum = np.cumsum(w, dtype=np.float64)
                f = int(
                    np.searchsorted(
                        cum, rng.random() * float(cum[-1]), side="right"
                    )
                )
                c += deltas[f]
                events += 1
                burst += 1
            if sanitizing and burst:
                tracker.note_change(pos)

        if sanitizing:
            _sanitize.check_counts_vector(label, c, size, pos)

        # Final check: the budget may end exactly at silence.
        if converged_at is None and checking:
            w = c[pair_i].astype(np.float64) * (c[pair_j] - diag)
            if float(w.sum()) == 0.0 and bool((c[:n_mobile] <= 1).all()):
                converged_at = pos

        return _LeapOutcome(
            c, pos, events, leaps, leap_interactions, repairs, converged_at
        )


BACKENDS["leap"] = LeapSimulator
