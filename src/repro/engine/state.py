"""State representations for population-protocol agents.

The paper's mobile agents carry a single bounded integer (their *name*), so
mobile states are plain ``int`` values.  The leader ("BST" in the paper) "can
be as powerful as needed"; each protocol defines its leader state as a frozen
dataclass deriving from :class:`LeaderState`, which keeps leader states
hashable, immutable and easily distinguishable from mobile states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, TypeAlias

#: Any agent state.  Mobile states are ``int``; leader states derive from
#: :class:`LeaderState`.
State: TypeAlias = Hashable

#: A mobile-agent state (a name, or the special sink value).
MobileState: TypeAlias = int


@dataclass(frozen=True)
class LeaderState:
    """Base class for leader (base-station) states.

    Subclasses are frozen dataclasses holding the leader's variables, e.g.
    ``n`` and ``k`` for the counting protocol.  Deriving from a common base
    lets generic code ask "is this agent the leader?" by state type alone.
    """

    def sort_key(self) -> tuple:
        """Deterministic ordering key among leader states of one protocol.

        The default orders by class name, then by the frozen dataclass
        repr (which lists the field values); subclasses with richer fields
        may override it with a direct field tuple.
        """
        return (type(self).__qualname__, repr(self))


def sort_key(state: State) -> tuple:
    """A total-order key over heterogeneous states.

    Configurations, protocol validators and the model checkers need a
    *deterministic* ordering of states that may mix ``int`` names, string
    test states and :class:`LeaderState` dataclasses.  Keys group by kind
    first (so values of different types are never compared directly) and
    order naturally within a kind - integers numerically rather than by
    their ``repr``, which is what the previous ``key=repr`` sorts got
    wrong (``10`` sorted before ``2``).
    """
    if isinstance(state, bool):
        return (1, "bool", (int(state),))
    if isinstance(state, int):
        return (0, "int", (state,))
    if isinstance(state, str):
        return (2, "str", (state,))
    if isinstance(state, LeaderState):
        return (3, *state.sort_key())
    return (4, type(state).__qualname__, (repr(state),))


def is_leader_state(state: State) -> bool:
    """Return ``True`` when ``state`` is a leader state."""
    return isinstance(state, LeaderState)


def is_mobile_state(state: State) -> bool:
    """Return ``True`` when ``state`` is a mobile-agent state."""
    return isinstance(state, int) and not isinstance(state, bool)
