"""State representations for population-protocol agents.

The paper's mobile agents carry a single bounded integer (their *name*), so
mobile states are plain ``int`` values.  The leader ("BST" in the paper) "can
be as powerful as needed"; each protocol defines its leader state as a frozen
dataclass deriving from :class:`LeaderState`, which keeps leader states
hashable, immutable and easily distinguishable from mobile states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, TypeAlias

#: Any agent state.  Mobile states are ``int``; leader states derive from
#: :class:`LeaderState`.
State: TypeAlias = Hashable

#: A mobile-agent state (a name, or the special sink value).
MobileState: TypeAlias = int


@dataclass(frozen=True)
class LeaderState:
    """Base class for leader (base-station) states.

    Subclasses are frozen dataclasses holding the leader's variables, e.g.
    ``n`` and ``k`` for the counting protocol.  Deriving from a common base
    lets generic code ask "is this agent the leader?" by state type alone.
    """


def is_leader_state(state: State) -> bool:
    """Return ``True`` when ``state`` is a leader state."""
    return isinstance(state, LeaderState)


def is_mobile_state(state: State) -> bool:
    """Return ``True`` when ``state`` is a mobile-agent state."""
    return isinstance(state, int) and not isinstance(state, bool)
