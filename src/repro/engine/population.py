"""Populations: collections of pairwise-interacting agents.

A population consists of ``n_mobile`` anonymous mobile agents, indexed
``0 .. n_mobile - 1``, plus optionally one distinguishable *leader* agent
(the paper's base station, BST) which, when present, always carries the
highest index ``n_mobile``.

Agent indices exist only at the simulation level: the protocols themselves
never see them (agents are anonymous), but schedulers and fairness
definitions are phrased in terms of *pairs of agents*, so the engine needs
stable identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.errors import ConfigurationError

#: An agent identity within a population.
AgentId = int


@dataclass(frozen=True)
class Population:
    """An anonymous population of ``n_mobile`` agents plus an optional leader.

    Parameters
    ----------
    n_mobile:
        Number of mobile (non-leader) agents; the paper's ``N``.  Must be
        at least 1.
    has_leader:
        Whether a distinguishable leader agent is present.
    """

    n_mobile: int
    has_leader: bool = False

    def __post_init__(self) -> None:
        if self.n_mobile < 1:
            raise ConfigurationError(
                f"a population needs at least one mobile agent, got {self.n_mobile}"
            )

    @property
    def _mobile_ids(self) -> tuple[AgentId, ...]:
        # Built lazily and cached: counts-native backends (the fluid
        # tier sweeps populations of 10^9-10^10 agents) never enumerate
        # agent identities, and the eager tuple alone would dwarf memory
        # at those sizes.
        cached = self.__dict__.get("_mobile_ids_cache")
        if cached is None:
            cached = tuple(range(self.n_mobile))
            object.__setattr__(self, "_mobile_ids_cache", cached)
        return cached

    @property
    def size(self) -> int:
        """Total number of agents, leader included."""
        return self.n_mobile + (1 if self.has_leader else 0)

    @property
    def leader(self) -> AgentId | None:
        """The leader's agent id, or ``None`` when there is no leader."""
        return self.n_mobile if self.has_leader else None

    @property
    def mobile_agents(self) -> tuple[AgentId, ...]:
        """Ids of the mobile agents, in index order."""
        return self._mobile_ids

    @property
    def agents(self) -> tuple[AgentId, ...]:
        """Ids of all agents (mobile agents first, then the leader)."""
        if self.has_leader:
            return self._mobile_ids + (self.n_mobile,)
        return self._mobile_ids

    def is_leader(self, agent: AgentId) -> bool:
        """Return ``True`` when ``agent`` is the leader's id."""
        return self.has_leader and agent == self.n_mobile

    def unordered_pairs(self) -> Iterator[tuple[AgentId, AgentId]]:
        """All unordered pairs of distinct agents (weak fairness unit)."""
        return combinations(self.agents, 2)

    def ordered_pairs(self) -> Iterator[tuple[AgentId, AgentId]]:
        """All ordered pairs of distinct agents (scheduler proposals)."""
        for x, y in combinations(self.agents, 2):
            yield (x, y)
            yield (y, x)

    def pair_count(self) -> int:
        """Number of unordered agent pairs."""
        n = self.size
        return n * (n - 1) // 2

    def validate_agent(self, agent: AgentId) -> None:
        """Raise :class:`ConfigurationError` unless ``agent`` is a valid id."""
        if not 0 <= agent < self.size:
            raise ConfigurationError(
                f"agent id {agent} out of range for population of size {self.size}"
            )
