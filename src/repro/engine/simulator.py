"""The simulation loop.

A :class:`Simulator` drives a protocol on a population under a scheduler:
repeatedly ask the scheduler for an ordered pair, apply the protocol's rule,
record the interaction, periodically test for certified convergence, and
optionally apply injected faults.

Convergence is *certified* (see :mod:`repro.engine.problems`): the reported
result is a proof that the problem predicate holds and can no longer be
falsified, never a "looks quiet" heuristic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol as TypingProtocol

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import Problem, is_silent
from repro.engine.protocol import PopulationProtocol
from repro.engine.trace import InteractionRecord, Trace
from repro.errors import ConvergenceError, SimulationError
from repro.schedulers.base import Scheduler


class FaultHook(TypingProtocol):
    """Callable invoked before each interaction; may corrupt the
    configuration by returning a replacement (or ``None`` to keep it)."""

    def __call__(
        self, interaction: int, config: Configuration
    ) -> Configuration | None: ...


class Observer(TypingProtocol):
    """Callable invoked after every *non-null* interaction with the
    interaction index and the new configuration; used by invariant
    monitors (see :mod:`repro.analysis.monitors`).  Must not mutate."""

    def __call__(self, interaction: int, config: Configuration) -> None: ...


@dataclass(frozen=True)
class RunStats:
    """Lightweight measurements of how a run performed (not what it did).

    Populated by every backend.  Excluded from :class:`SimulationResult`
    equality because wall-clock numbers differ between otherwise identical
    runs; the differential tests compare semantics, not timings.

    The leap fields are populated only by native runs of the windowed
    backends (``"leap"``, :mod:`repro.engine.leap`, and ``"bleap"``,
    :mod:`repro.engine.bleap`): ``leaps`` counts the multinomial windows
    applied, ``mean_tau`` the mean window length in interactions, and
    ``repairs`` the infeasible draws discarded by the clip/repair loop.
    ``ssa_fallback_rows`` is ``"bleap"``-only: per run it is 1 when the
    replicate's row ever advanced by exact-SSA bursts (collapsed tau,
    small population, near-silence endgame) and 0 when it leapt
    throughout; aggregated over an ensemble
    (:attr:`repro.engine.ensemble.EnsembleResult.stats`) it counts the
    fallen-back rows.  All four stay ``None`` on every exact backend.

    The fluid fields are populated only by native runs of the ``"fluid"``
    backend (:mod:`repro.engine.fluid`): ``ode_steps`` counts the RK4
    integration steps of the mean-field phase, ``handoff_time`` the
    interaction position at which the deterministic trajectory was
    handed off to the stochastic endgame, and ``handoff_backend`` the
    backend that ran that endgame (``"leap"``).  They stay ``None`` on
    every other backend.
    """

    wall_seconds: float
    interactions_per_second: float
    null_fraction: float
    leaps: int | None = None
    mean_tau: float | None = None
    repairs: int | None = None
    ssa_fallback_rows: int | None = None
    ode_steps: int | None = None
    handoff_time: float | None = None
    handoff_backend: str | None = None
    #: Parallel-execution fields, populated only when the run was served
    #: through the shared-memory layer (:mod:`repro.engine.parallel`):
    #: ``shards`` is the number of worker shards the ensemble ran
    #: across, ``shm_bytes`` the size of the shared result buffers the
    #: job allocated, and ``copy_bytes_saved`` the result bytes this run
    #: moved across the process boundary as in-place shared-memory
    #: writes instead of pickled copies.  All three stay ``None`` on
    #: serial and pickle-transport runs.
    shards: int | None = None
    shm_bytes: int | None = None
    copy_bytes_saved: int | None = None

    @classmethod
    def measure(
        cls, started: float, interactions: int, non_null: int
    ) -> "RunStats":
        """Build stats from a ``time.perf_counter()`` start mark."""
        elapsed = time.perf_counter() - started
        return cls(
            wall_seconds=elapsed,
            interactions_per_second=(
                interactions / elapsed if elapsed > 0 else 0.0
            ),
            null_fraction=(
                (interactions - non_null) / interactions
                if interactions
                else 0.0
            ),
        )

    def __str__(self) -> str:
        text = (
            f"{self.wall_seconds:.3f} s wall, "
            f"{self.interactions_per_second:,.0f} interactions/s, "
            f"{self.null_fraction:.1%} null"
        )
        if self.leaps is not None:
            text += (
                f", {self.leaps} leaps (mean tau {self.mean_tau:,.0f}, "
                f"{self.repairs} repairs)"
            )
        if self.ssa_fallback_rows is not None:
            text += f", {self.ssa_fallback_rows} SSA-fallback rows"
        if self.ode_steps is not None:
            text += (
                f", {self.ode_steps} ODE steps (handoff at "
                f"{self.handoff_time:,.0f} -> {self.handoff_backend})"
            )
        if self.shards is not None:
            text += f", {self.shards} shm shards"
            if self.shm_bytes is not None:
                text += f" ({self.shm_bytes:,} B shared"
                if self.copy_bytes_saved is not None:
                    text += f", {self.copy_bytes_saved:,} B copy saved"
                text += ")"
        return text


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    ``interactions`` counts scheduler proposals (null interactions
    included), the model's natural time unit; ``parallel_time`` is the
    standard normalization ``interactions / N``.

    ``final_configuration`` is ``None`` only for counts-native runs that
    skip agent-vector materialization (the fluid backend's
    :meth:`~repro.engine.fluid.FluidSimulator.run_counts` with
    ``materialize=False``, where building an O(N) tuple at N = 10^10 is
    infeasible); those runs carry the final state tally in
    ``final_counts`` (mapping state -> count) instead.
    """

    converged: bool
    interactions: int
    non_null_interactions: int
    final_configuration: Configuration | None
    population: Population
    trace: Trace | None = None
    convergence_interaction: int | None = None
    faults_injected: int = 0
    notes: list[str] = field(default_factory=list)
    #: Final state tally for counts-native runs; ``None`` whenever
    #: ``final_configuration`` is present.
    final_counts: dict | None = None
    #: Run performance measurements; ``compare=False`` keeps backend
    #: differential tests (``reference == fast``) meaningful.
    stats: RunStats | None = field(default=None, compare=False, repr=False)

    @property
    def parallel_time(self) -> float:
        """Interactions divided by the number of agents."""
        return self.interactions / self.population.size

    def names(self) -> tuple:
        """The mobile agents' final states (their names)."""
        if self.final_configuration is None:
            raise SimulationError(
                "this run did not materialize a final configuration "
                "(counts-native fluid run); inspect final_counts instead"
            )
        return self.final_configuration.mobile_states

    #: Maximum number of names shown by ``str()``; large-N runs would
    #: otherwise dump thousands of states into logs.
    _STR_NAME_LIMIT = 8

    def __str__(self) -> str:
        status = "converged" if self.converged else "did not converge"
        if self.final_configuration is None:
            live = sum(1 for v in (self.final_counts or {}).values() if v)
            return (
                f"{status} after {self.interactions} interactions "
                f"({self.non_null_interactions} non-null); "
                f"{live} occupied states (counts-native run)"
            )
        names = self.names()
        shown = ", ".join(repr(s) for s in names[: self._STR_NAME_LIMIT])
        if len(names) > self._STR_NAME_LIMIT:
            shown += f", ... ({len(names) - self._STR_NAME_LIMIT} more)"
        return (
            f"{status} after {self.interactions} interactions "
            f"({self.non_null_interactions} non-null); "
            f"names = ({shown})"
        )


class Simulator:
    """Runs one protocol on one population under one scheduler.

    Parameters
    ----------
    protocol, population, scheduler:
        The three moving parts.  The population must have a leader exactly
        when the protocol requires one.
    problem:
        The convergence criterion.  ``None`` disables convergence checking
        (the run simply uses its whole interaction budget).
    check_interval:
        Convergence is tested every ``check_interval`` interactions and
        after every non-null interaction burst; larger values trade
        detection latency for speed.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        every run asserts conserved population size, state-space/role
        discipline on interaction results and no state change after a
        silent configuration, raising
        :class:`~repro.errors.SanitizerError` on violation.  Fault
        injections are size-checked only (they may deliberately corrupt
        states) and reset the silence tracking.  Checks never consume
        randomness, so sanitized runs are bit-identical to unsanitized
        ones.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        sanitize: bool = False,
    ) -> None:
        if protocol.requires_leader and not population.has_leader:
            raise SimulationError(
                f"{protocol.display_name} requires a leader but the "
                "population has none"
            )
        if not protocol.requires_leader and population.has_leader:
            raise SimulationError(
                f"{protocol.display_name} is leaderless but the population "
                "has a leader"
            )
        if scheduler.population is not population:
            raise SimulationError(
                "scheduler was built for a different population"
            )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = check_interval or max(population.size, 16)
        self.sanitize = sanitize

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute until certified convergence or the budget is exhausted.

        Parameters
        ----------
        initial:
            Starting configuration (size must match the population).
        max_interactions:
            Interaction budget.
        trace:
            Optional trace buffer to fill.
        fault_hook:
            Optional fault injector consulted before every interaction.
        raise_on_timeout:
            When true, a budget exhaustion raises :class:`ConvergenceError`
            instead of returning a non-converged result.
        observer:
            Optional callback fired after every non-null interaction with
            ``(interaction_index, new_configuration)`` - the hook for
            runtime invariant monitors.
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        started = time.perf_counter()
        config = initial
        non_null = 0
        faults = 0
        converged_at: int | None = None
        quiescent_since_check = True

        sanitizing = self.sanitize
        if sanitizing:
            mobile_space = self.protocol.mobile_state_space()
            leader_space = self.protocol.leader_state_space()
            tracker = _sanitize.SilenceTracker("reference")
            _sanitize.check_states_in_space(
                "reference",
                config.states,
                config.leader_index,
                mobile_space,
                leader_space,
                0,
            )

        # With a fault hook, interaction-0 faults must land before any
        # convergence verdict, so the initial check is skipped.
        if (
            fault_hook is None
            and self.problem is not None
            and self.problem.is_solved(self.protocol, config)
        ):
            converged_at = 0

        interaction = 0
        while interaction < max_interactions and converged_at is None:
            if fault_hook is not None:
                replacement = fault_hook(interaction, config)
                if replacement is not None:
                    config = replacement
                    faults += 1
                    quiescent_since_check = False
                    if sanitizing:
                        # Faults may legitimately wake a silent run and
                        # may deliberately corrupt states; only the
                        # population size must survive them.
                        _sanitize.check_population_size(
                            "reference",
                            self.population.size,
                            len(config),
                            interaction,
                        )
                        tracker.reset()

            initiator, responder = self.scheduler.next_pair(config)
            p = config.state_of(initiator)
            q = config.state_of(responder)
            p2, q2 = self.protocol.transition(p, q)
            changed = (p2, q2) != (p, q)
            if changed:
                config = config.apply(initiator, responder, (p2, q2))
                non_null += 1
                quiescent_since_check = False
                if sanitizing:
                    tracker.note_change(interaction)
                    for agent, state in ((initiator, p2), (responder, q2)):
                        _sanitize.check_states_in_space(
                            "reference",
                            (state,),
                            0 if agent == config.leader_index else None,
                            mobile_space,
                            leader_space,
                            interaction,
                        )
                if observer is not None:
                    observer(interaction, config)
            if trace is not None:
                trace.record(
                    InteractionRecord(
                        interaction, initiator, responder, p, q, p2, q2
                    )
                )
            interaction += 1

            if sanitizing and interaction % self.check_interval == 0:
                _sanitize.check_population_size(
                    "reference",
                    self.population.size,
                    len(config),
                    interaction,
                )
                if is_silent(self.protocol, config):
                    tracker.note_silent()

            if (
                self.problem is not None
                and not quiescent_since_check
                and interaction % self.check_interval == 0
            ):
                if self.problem.is_solved(self.protocol, config):
                    converged_at = interaction
                quiescent_since_check = True

        # Final check: the budget may end mid check-interval.
        if (
            converged_at is None
            and self.problem is not None
            and self.problem.is_solved(self.protocol, config)
        ):
            converged_at = interaction

        converged = converged_at is not None
        if not converged and raise_on_timeout:
            raise ConvergenceError(
                f"{self.protocol.display_name} did not converge within "
                f"{max_interactions} interactions",
                interactions=interaction,
            )
        return SimulationResult(
            converged=converged,
            interactions=interaction,
            non_null_interactions=non_null,
            final_configuration=config,
            population=self.population,
            trace=trace,
            convergence_interaction=converged_at,
            faults_injected=faults,
            stats=RunStats.measure(started, interaction, non_null),
        )


def run_protocol(
    protocol: PopulationProtocol,
    population: Population,
    scheduler: Scheduler,
    initial: Configuration,
    problem: Problem,
    max_interactions: int = 1_000_000,
    trace: Trace | None = None,
    fault_hook: Callable | None = None,
    raise_on_timeout: bool = False,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(protocol, population, scheduler, problem)
    return simulator.run(
        initial,
        max_interactions=max_interactions,
        trace=trace,
        fault_hook=fault_hook,
        raise_on_timeout=raise_on_timeout,
    )
