"""Simulation substrate: populations, configurations, protocols, the
simulator and convergence criteria."""

from repro.engine.configuration import Configuration
from repro.engine.ensemble import EnsembleResult, run_ensemble
from repro.engine.fast import (
    BACKENDS,
    FastSimulator,
    TransitionTable,
    compile_table,
    make_simulator,
)

# Imported after ``fast`` so their registrations land in BACKENDS
# whenever the engine package is loaded (``batch`` and ``leap`` build
# on ``counts``; ``bleap`` fuses ``batch`` and ``leap``; ``fluid``
# fast-forwards the mean-field ODE and hands off to ``leap``).
from repro.engine.counts import CountSimulator, configuration_counts
from repro.engine.batch import BatchedEnsembleSimulator
from repro.engine.leap import LeapSimulator
from repro.engine.bleap import BatchedLeapSimulator
from repro.engine.fluid import FluidSimulator
from repro.engine.population import AgentId, Population
from repro.engine.sanitize import SilenceTracker
from repro.engine.problems import (
    CountingProblem,
    NamingProblem,
    Problem,
    is_silent,
)
from repro.engine.protocol import (
    PopulationProtocol,
    TableProtocol,
    asymmetric_witnesses,
    verify_closure,
    verify_protocol,
    verify_symmetric,
)
from repro.engine.simulator import (
    RunStats,
    SimulationResult,
    Simulator,
    run_protocol,
)
from repro.engine.state import (
    LeaderState,
    MobileState,
    State,
    is_leader_state,
    is_mobile_state,
)
from repro.engine.trace import InteractionRecord, Trace, replay

__all__ = [
    "BACKENDS",
    "AgentId",
    "BatchedEnsembleSimulator",
    "BatchedLeapSimulator",
    "Configuration",
    "CountSimulator",
    "CountingProblem",
    "EnsembleResult",
    "FastSimulator",
    "FluidSimulator",
    "InteractionRecord",
    "LeaderState",
    "LeapSimulator",
    "MobileState",
    "NamingProblem",
    "Population",
    "PopulationProtocol",
    "Problem",
    "RunStats",
    "SilenceTracker",
    "SimulationResult",
    "Simulator",
    "State",
    "TableProtocol",
    "Trace",
    "TransitionTable",
    "asymmetric_witnesses",
    "compile_table",
    "configuration_counts",
    "is_leader_state",
    "is_mobile_state",
    "is_silent",
    "make_simulator",
    "replay",
    "run_ensemble",
    "run_protocol",
    "verify_closure",
    "verify_protocol",
    "verify_symmetric",
]
