"""Simulation substrate: populations, configurations, protocols, the
simulator and convergence criteria."""

from repro.engine.configuration import Configuration
from repro.engine.ensemble import EnsembleResult, run_ensemble
from repro.engine.population import AgentId, Population
from repro.engine.problems import (
    CountingProblem,
    NamingProblem,
    Problem,
    is_silent,
)
from repro.engine.protocol import (
    PopulationProtocol,
    TableProtocol,
    asymmetric_witnesses,
    verify_closure,
    verify_protocol,
    verify_symmetric,
)
from repro.engine.simulator import SimulationResult, Simulator, run_protocol
from repro.engine.state import (
    LeaderState,
    MobileState,
    State,
    is_leader_state,
    is_mobile_state,
)
from repro.engine.trace import InteractionRecord, Trace, replay

__all__ = [
    "AgentId",
    "Configuration",
    "CountingProblem",
    "EnsembleResult",
    "InteractionRecord",
    "LeaderState",
    "MobileState",
    "NamingProblem",
    "Population",
    "PopulationProtocol",
    "Problem",
    "SimulationResult",
    "Simulator",
    "State",
    "TableProtocol",
    "Trace",
    "asymmetric_witnesses",
    "is_leader_state",
    "is_mobile_state",
    "is_silent",
    "replay",
    "run_ensemble",
    "run_protocol",
    "verify_closure",
    "verify_protocol",
    "verify_symmetric",
]
