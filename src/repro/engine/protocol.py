"""The population-protocol abstraction.

A protocol is a deterministic pairwise transition function over a finite
state space (paper, Section 2).  Concrete protocols subclass
:class:`PopulationProtocol` and implement :meth:`transition` plus the state
space descriptors; validators below check the model-level well-formedness
conditions (determinism is structural, range discipline and symmetry are
checked by enumeration).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import product
from typing import Iterable, Sequence

from repro.engine.state import State, is_leader_state
from repro.errors import ProtocolError


class PopulationProtocol(ABC):
    """A deterministic population protocol.

    Subclasses must set :attr:`display_name` and :attr:`symmetric` and
    implement the abstract methods.  ``transition`` must be a pure function:
    the engine may call it any number of times for the same inputs.
    """

    #: Human-readable protocol name (used in reports and reprs).
    display_name: str = "population protocol"

    #: Whether the protocol *claims* symmetric transition rules.  Verified
    #: against the actual transition function by :func:`verify_symmetric`.
    symmetric: bool = False

    #: Whether the protocol requires a leader agent in the population.
    requires_leader: bool = False

    @abstractmethod
    def transition(self, p: State, q: State) -> tuple[State, State]:
        """The transition rule ``(p, q) -> (p', q')``.

        ``p`` is the initiator's state and ``q`` the responder's.  Null
        transitions return ``(p, q)`` unchanged.
        """

    @abstractmethod
    def mobile_state_space(self) -> frozenset[State]:
        """The finite set of states a mobile agent may hold."""

    def leader_state_space(self) -> frozenset[State]:
        """The finite set of reachable leader states (empty if leaderless).

        Protocols with a leader must override this; the default reflects a
        leaderless protocol.
        """
        return frozenset()

    def leader_space_size(self) -> int:
        """Number of declared leader states, without enumerating them.

        Size gates (the fast-path table compiler, the symbolic root
        enumerator) consult this *before* materializing
        :meth:`leader_state_space`.  The default counts the enumerated
        space; protocols whose leader space is combinatorially large
        (exponential in the name bound) must override it with the
        closed-form count, or the gate itself triggers the enumeration
        it exists to avoid.
        """
        return len(self.leader_state_space())

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------

    def initial_mobile_state(self) -> State | None:
        """The designated uniform initial mobile state, if the protocol
        relies on uniform initialization; ``None`` for self-stabilizing
        protocols (any mobile state is a legal start)."""
        return None

    def initial_leader_state(self) -> State | None:
        """The designated initial leader state, if the protocol relies on an
        initialized leader; ``None`` otherwise."""
        return None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def num_mobile_states(self) -> int:
        """The paper's space-complexity measure: states per mobile agent."""
        return len(self.mobile_state_space())

    def is_null(self, p: State, q: State) -> bool:
        """Whether the rule applied to ``(p, q)`` leaves both unchanged."""
        return self.transition(p, q) == (p, q)

    def all_states(self) -> frozenset[State]:
        """Union of mobile and leader state spaces."""
        return self.mobile_state_space() | self.leader_state_space()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.display_name!r} "
            f"({self.num_mobile_states} mobile states)>"
        )


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------


def _state_pairs(protocol: PopulationProtocol) -> Iterable[tuple[State, State]]:
    """Ordered state pairs the engine could ever feed to ``transition``.

    Leader/leader pairs are excluded: a population has at most one leader.
    """
    mobile = sorted(protocol.mobile_state_space(), key=repr)
    leader = sorted(protocol.leader_state_space(), key=repr)
    yield from product(mobile, mobile)
    for ls in leader:
        for ms in mobile:
            yield (ls, ms)
            yield (ms, ls)


def verify_closure(protocol: PopulationProtocol) -> None:
    """Check that every transition stays inside the declared state spaces
    and preserves the mobile/leader role of each position.

    Raises :class:`ProtocolError` on the first violation.
    """
    mobile = protocol.mobile_state_space()
    leader = protocol.leader_state_space()
    for p, q in _state_pairs(protocol):
        try:
            p2, q2 = protocol.transition(p, q)
        except Exception as exc:  # pragma: no cover - defensive
            raise ProtocolError(
                f"{protocol.display_name}: transition({p!r}, {q!r}) raised {exc!r}"
            ) from exc
        for before, after in ((p, p2), (q, q2)):
            if is_leader_state(before):
                if after not in leader:
                    raise ProtocolError(
                        f"{protocol.display_name}: leader state {before!r} "
                        f"mapped outside the leader space: {after!r}"
                    )
            elif after not in mobile:
                raise ProtocolError(
                    f"{protocol.display_name}: mobile state {before!r} "
                    f"mapped outside the mobile space: {after!r}"
                )


def _unordered_state_pairs(
    protocol: PopulationProtocol,
) -> Iterable[tuple[State, State]]:
    """One representative per unordered schedulable state pair.

    Symmetry is a property of unordered pairs - ``(p, q)`` violates it
    exactly when ``(q, p)`` does - so the symmetry scans need each pair
    only once.  The diagonal ``(p, p)`` is included (a rule may split two
    equal states asymmetrically).
    """
    mobile = sorted(protocol.mobile_state_space(), key=repr)
    leader = sorted(protocol.leader_state_space(), key=repr)
    for a, p in enumerate(mobile):
        for q in mobile[a:]:
            yield (p, q)
    for ls in leader:
        for ms in mobile:
            yield (ls, ms)


def verify_symmetric(protocol: PopulationProtocol) -> None:
    """Check the paper's symmetry condition on the transition function:
    ``(p, q) -> (p', q')`` implies ``(q, p) -> (q', p')``.

    Raises :class:`ProtocolError` on the first violating pair.  Delegates
    to :func:`asymmetric_witnesses`, which scans each unordered pair once.
    """
    witnesses = asymmetric_witnesses(protocol, limit=1)
    if witnesses:
        p, q = witnesses[0]
        p2, q2 = protocol.transition(p, q)
        q3, p3 = protocol.transition(q, p)
        raise ProtocolError(
            f"{protocol.display_name}: asymmetric rule detected: "
            f"({p!r}, {q!r}) -> ({p2!r}, {q2!r}) but "
            f"({q!r}, {p!r}) -> ({q3!r}, {p3!r})"
        )


def verify_protocol(protocol: PopulationProtocol) -> None:
    """Run all applicable well-formedness checks on ``protocol``."""
    if protocol.requires_leader and not protocol.leader_state_space():
        raise ProtocolError(
            f"{protocol.display_name}: requires a leader but declares an "
            "empty leader state space"
        )
    verify_closure(protocol)
    if protocol.symmetric:
        verify_symmetric(protocol)


def asymmetric_witnesses(
    protocol: PopulationProtocol,
    limit: int | None = None,
) -> list[tuple[State, State]]:
    """Return the pairs on which the protocol behaves asymmetrically.

    Useful for reporting; an empty list means the transition function is
    symmetric regardless of the protocol's declaration.  Each unordered
    pair is scanned - and reported - exactly once, in the canonical order
    of :func:`_unordered_state_pairs` (asymmetry of ``(p, q)`` implies
    asymmetry of ``(q, p)``, so the mirror carries no information).
    ``limit`` stops the scan after that many witnesses.
    """
    witnesses: list[tuple[State, State]] = []
    for p, q in _unordered_state_pairs(protocol):
        p2, q2 = protocol.transition(p, q)
        q3, p3 = protocol.transition(q, p)
        if (p2, q2) != (p3, q3):
            witnesses.append((p, q))
            if limit is not None and len(witnesses) >= limit:
                break
    return witnesses


class TableProtocol(PopulationProtocol):
    """A protocol defined by an explicit transition table.

    Used by the exhaustive-enumeration lower-bound machinery
    (:mod:`repro.analysis.enumeration`) and handy for tests.  The table maps
    ordered state pairs to ordered state pairs; missing entries are null.
    """

    def __init__(
        self,
        table: dict[tuple[State, State], tuple[State, State]],
        mobile_states: Sequence[State],
        leader_states: Sequence[State] = (),
        symmetric: bool = False,
        display_name: str = "table protocol",
    ) -> None:
        self._table = dict(table)
        self._mobile = frozenset(mobile_states)
        self._leader = frozenset(leader_states)
        self.symmetric = symmetric
        self.requires_leader = bool(self._leader)
        self.display_name = display_name

    def transition(self, p: State, q: State) -> tuple[State, State]:
        return self._table.get((p, q), (p, q))

    def mobile_state_space(self) -> frozenset[State]:
        return self._mobile

    def leader_state_space(self) -> frozenset[State]:
        return self._leader

    @property
    def table(self) -> dict[tuple[State, State], tuple[State, State]]:
        """A copy of the non-null entries of the transition table."""
        return dict(self._table)
