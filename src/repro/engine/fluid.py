"""The fluid backend: mean-field ODE fast-forward with certified
stochastic handoff.

Beyond N = 10^8 even the leap backend's multinomial windows stop being
the bottleneck: the O(N) work at the *edges* of a run - building the
initial agent tuple, interning its state tally, materializing the final
configuration - costs more than the windowed kernel in between, and at
N = 10^10 an agent tuple does not fit in memory at all.  The classical
way past that wall is the *fluid (mean-field) limit*: as N grows, the
scaled counts process concentrates on the solution of the deterministic
ODE

    dc/dt = D^T p(c),        p_f(c) = c_i (c_j - [i = j]) / N(N - 1),

per interaction of time - the drift of the very chain the counts/leap
backends sample, with ``D`` the same precompiled per-pair delta matrix
(:class:`~repro.engine.leap._LeapPlan`).  While every stochastically
active species is macroscopic the trajectory is deterministic to
O(1/sqrt(N)) relative error, so the transient can be *integrated*
(classic RK4 with the tau-leaping step-size rule) instead of sampled:
cost per step is O(pairs + states), independent of N **and** of the
interaction budget covered by the step.

The fluid approximation breaks exactly where the interesting dynamics
of the naming problem live - extinction of duplicate names, silence -
because species with O(1) agents have no mean-field limit.  The backend
therefore *hands off*: integration stops at an adaptive crossover and
the rounded counts vector (largest-remainder rounding, conserving N)
continues on the stochastic leap backend
(:meth:`~repro.engine.leap.LeapSimulator._advance_native`), which owns
the endgame and the convergence verdict.  The crossover triggers when

* a species that was macroscopic dwindles below ``handoff_floor``
  agents (fluctuations now decide whether it survives - the naming
  endgame), or
* the drift stalls: no species would change by more than ``leap_eps``
  relative inside the whole remaining budget (the trajectory sits at a
  mean-field fixed point, e.g. the uniform spread start of the scaling
  sweep, and only fluctuations move it), or
* no species is macroscopic to begin with (small populations run pure
  leap, bit-identical to ``backend="leap"`` for the same seed), or
* the fluid weight reaches zero (mean-field silence) or the budget is
  exhausted (the leap phase then just finalizes the verdict).

The handoff is *certified*, not assumed: ``tests/engine/test_fluid.py``
KS-gates fluid-handoff-vs-pure-leap distributions at the crossover in
both the large-N and the near-silence regime (same style as the
leap-vs-counts and bleap-vs-leap gates), and the stochastic phase runs
with the leap backend's own error control.  ``RunStats`` reports
``ode_steps``, ``handoff_time`` and ``handoff_backend`` so ``--verbose``
CLIs show how much of a run was fluid.

Because the whole pipeline is counts-native, the backend also exposes
:meth:`FluidSimulator.run_counts`: start from a ``{state: count}``
tally and (optionally) skip final materialization, so ``scaling
--simulate`` completes full ``10 N`` naming horizons at N = 10^10 -
population sizes whose agent vectors could never be built.

Runs the fluid view cannot honour - leader populations (a count-1
leader species has no mean-field limit), non-uniform schedulers, fault
hooks, traces/observers, non-naming problems, uncompilable protocols,
missing NumPy - fall back to the stochastic
:class:`~repro.engine.leap.LeapSimulator` (which continues down the
ladder ``leap -> counts -> fast -> reference``) with a
:class:`~repro.errors.BackendFallbackWarning` naming the reason.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.counts import materialize_counts
from repro.engine.fast import BACKENDS, DEFAULT_COMPILE_LIMIT, warn_fallback
from repro.engine.leap import (
    DEFAULT_LEAP_EPS,
    DEFAULT_MIN_TAU,
    LeapSimulator,
)
from repro.engine.population import Population
from repro.engine.problems import Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
)
from repro.engine.trace import Trace
from repro.errors import SimulationError
from repro.schedulers.base import Scheduler

try:  # NumPy powers the integrator; without it we delegate.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None

#: Default stochastic floor: a species that was macroscopic and dwindles
#: below this many agents triggers the handoff to the leap backend.
#: 1000 keeps the relative fluctuation of every fluid species below
#: ~3% (1/sqrt(1000)), matching the leap backend's default ``leap_eps``
#: error budget; populations where no species ever reaches the floor
#: run pure leap from interaction 0.
DEFAULT_HANDOFF_FLOOR = 1_000

#: Safety cap on RK4 steps per run; the adaptive step grows the
#: integration stride near fixed points, so well-posed runs take a few
#: hundred steps and anything beyond this indicates dynamics the fluid
#: view cannot fast-forward profitably - hand off and let leap finish.
MAX_ODE_STEPS = 100_000


def _round_conserving(x, size: int):
    """Round a nonnegative float counts vector to integers summing to
    ``size`` (largest-remainder rounding).

    Floor every entry, then hand the missing agents to the largest
    fractional remainders (or reclaim any float-drift surplus from the
    smallest nonzero entries), so the handoff configuration is feasible
    for the stochastic endgame: integral, nonnegative, conserving N.
    """
    np = _np
    base = np.floor(x)
    deficit = size - int(base.sum())
    if deficit > 0:
        order = np.argsort(-(x - base), kind="stable")
        base[order[:deficit]] += 1
    elif deficit < 0:  # pragma: no cover - needs pathological FP drift
        order = np.argsort(np.where(base > 0, x - base, np.inf),
                           kind="stable")
        base[order[:-deficit]] -= 1
    return base.astype(np.int64)


class FluidSimulator:
    """Mean-field fast-forward simulator with certified leap handoff.

    Accepts the same constructor arguments and exposes the same
    :meth:`run` contract as the other backends (registered as
    ``BACKENDS["fluid"]``), plus the counts-native :meth:`run_counts`
    entry for populations whose agent vectors cannot be built.  Runs
    served natively integrate the deterministic mean-field ODE while
    every active species is macroscopic, then hand the rounded counts to
    an internal :class:`~repro.engine.leap.LeapSimulator` for the
    stochastic endgame; runs the fluid view cannot honour delegate to
    that same leap simulator with a
    :class:`~repro.errors.BackendFallbackWarning`.
    :attr:`last_run_native` reports which path served the last run.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`~repro.engine.simulator.Simulator`.
    compile_limit:
        Largest state-space size eagerly compiled (shared down the
        ladder); larger protocols delegate.
    leap_eps:
        Relative per-step change bound, doing double duty: the RK4 step
        is sized so no species moves more than ``leap_eps`` relative per
        step (the same Gillespie/Petzold rule the leap windows use), and
        the handed-off endgame runs with this leap accuracy.
    min_tau:
        Forwarded to the endgame leap simulator.
    handoff_floor:
        The stochastic floor (in agents) of the adaptive crossover; see
        the module docstring.  Larger is more conservative (earlier
        handoff, more of the run is stochastic).
    sanitize:
        Arm the runtime sanitizer: the rounded handoff vector is checked
        (nonnegative, conserving N) before the stochastic phase, which
        then runs its own windowed checks; delegated runs inherit the
        leap backend's sanitizer.  Checks never consume randomness, so
        sanitized runs stay bit-identical.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        leap_eps: float = DEFAULT_LEAP_EPS,
        min_tau: int = DEFAULT_MIN_TAU,
        handoff_floor: int = DEFAULT_HANDOFF_FLOOR,
        sanitize: bool = False,
    ) -> None:
        if handoff_floor < 1:
            raise SimulationError(
                f"handoff_floor must be a positive integer, got "
                f"{handoff_floor}"
            )
        # The leap simulator validates the wiring, compiles the shared
        # table/plan/delta matrices, runs the stochastic endgame, and
        # serves as the fallback delegate (which may itself continue
        # down the ladder leap -> counts -> fast -> reference).
        self._leap = LeapSimulator(
            protocol, population, scheduler, problem, check_interval,
            compile_limit, leap_eps, min_tau, sanitize=sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._leap.check_interval
        self.leap_eps = leap_eps
        self.handoff_floor = handoff_floor
        self.sanitize = sanitize
        self._table = self._leap._table
        self._plan = self._leap._plan
        #: Whether the most recent run used the fluid path.
        self.last_run_native = False
        #: Final counts vector of the most recent native run (interned
        #: order); ``None`` after delegated runs.
        self.last_counts: list[int] | None = None

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Run entry points
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute until certified convergence or the budget is exhausted.

        Same parameters and semantics as :meth:`Simulator.run`; the
        convergence verdict is always delivered by the stochastic leap
        phase, so cadence and certification match ``backend="leap"``.
        Runs the fluid view cannot honour delegate to the leap backend.
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        reason = self._fluid_preconditions()
        counts = None
        if reason is None:
            counts, reason = self._leap._native_preconditions(
                initial, trace, fault_hook, observer
            )
        if reason is not None:
            warn_fallback("fluid", "leap", reason)
            self.last_run_native = False
            self.last_counts = None
            return self._leap.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_native = True
        self._leap._leader_pos = initial.leader_index
        return self._run_native(
            counts, max_interactions, raise_on_timeout, materialize=True,
            leader_pos=initial.leader_index,
        )

    def run_counts(
        self,
        initial_counts: Mapping,
        max_interactions: int = 1_000_000,
        raise_on_timeout: bool = False,
        materialize: bool = False,
    ) -> SimulationResult:
        """Run from a ``{state: count}`` tally, never touching an agent
        vector.

        The entry point for populations whose configurations cannot be
        built (N = 10^9-10^10: an agent tuple alone would exceed
        memory).  ``initial_counts`` maps protocol states to agent
        counts; omitted states are zero; counts must be nonnegative and
        sum to the population size.  With ``materialize=False`` (the
        default) the returned result carries ``final_counts`` (a
        ``{state: count}`` tally) and ``final_configuration=None``;
        ``materialize=True`` restores the O(N) canonical configuration
        of the other backends.

        Unlike :meth:`run` there is no graceful delegation - a
        delegation target would need the very O(N) configuration this
        entry point exists to avoid - so fluid-unsafe setups raise
        :class:`~repro.errors.SimulationError`.
        """
        reason = self._fluid_preconditions()
        if reason is not None:
            raise SimulationError(
                f"run_counts needs the native fluid path, but {reason}"
            )
        table = self._table
        counts = [0] * table.n_states
        total = 0
        for state, k in initial_counts.items():
            k = int(k)
            if k < 0:
                raise SimulationError(
                    f"negative count {k} for state {state!r}"
                )
            try:
                idx = table.index[state]
            except (KeyError, TypeError):
                raise SimulationError(
                    f"state {state!r} is outside the protocol's declared "
                    "state space"
                ) from None
            if idx >= self._plan.n_mobile:
                raise SimulationError(
                    f"state {state!r} is leader-only; run_counts serves "
                    "leaderless populations"
                )
            counts[idx] += k
            total += k
        if total != self.population.size:
            raise SimulationError(
                f"initial counts sum to {total}, population has "
                f"{self.population.size} agents"
            )
        self.last_run_native = True
        self._leap._leader_pos = None
        return self._run_native(
            counts, max_interactions, raise_on_timeout,
            materialize=materialize, leader_pos=None,
        )

    # ------------------------------------------------------------------
    # Native-path preconditions
    # ------------------------------------------------------------------

    def _fluid_preconditions(self) -> str | None:
        """Fluid-specific refusals (the leap preconditions come on top)."""
        if _np is None:
            return "NumPy is not installed (the ODE integrator needs it)"
        if self._table is None:
            return (
                "the protocol's state space could not be compiled to a "
                "transition table (unhashable, unenumerable or oversized)"
            )
        if self.population.has_leader:
            return (
                "a count-1 leader species has no mean-field limit (the "
                "fluid drift treats all species as continuous densities)"
            )
        return None

    # ------------------------------------------------------------------
    # The fluid pipeline: ODE fast-forward, handoff, leap endgame
    # ------------------------------------------------------------------

    def _run_native(
        self,
        counts: list[int],
        max_interactions: int,
        raise_on_timeout: bool,
        materialize: bool,
        leader_pos: int | None,
    ) -> SimulationResult:
        """Integrate, hand off, finish on leap; assumes preconditions."""
        np = _np
        started = time.perf_counter()
        plan = self._plan
        pair_i, pair_j, diag = plan.pair_i, plan.pair_j, plan.diag
        leap_tables = self._leap._leap
        deltas_f = leap_tables.deltas.astype(np.float64)
        size = self.population.size
        total_pairs = float(size) * float(size - 1)
        eps = self.leap_eps
        floor = float(self.handoff_floor)
        budget = max_interactions

        x = np.asarray(counts, dtype=np.float64)
        pos_f = 0.0
        events_f = 0.0  # expected non-null events covered by the ODE
        ode_steps = 0

        def drift(y):
            """Per-interaction expected counts change at ``y``."""
            w = y[pair_i] * (y[pair_j] - diag)
            return (w / total_pairs) @ deltas_f, float(w.sum())

        # Species that ever were macroscopic; one of them dwindling
        # below the floor is the endgame signal that forces handoff.
        was_macroscopic = x >= floor
        if not bool(was_macroscopic.any()):
            # No species to integrate: the whole run is stochastic
            # (bit-identical to backend="leap" for the same seed).
            pass
        else:
            while pos_f < budget and ode_steps < MAX_ODE_STEPS:
                k1, weight = drift(x)
                if weight <= 0.0 or not np.isfinite(weight):
                    break  # mean-field silence; leap finalizes
                remaining = budget - pos_f
                # Gillespie/Petzold step rule: no species moves more
                # than max(eps * count, 1) in expectation per step.
                cap = np.maximum(eps * x, 1.0)
                with np.errstate(divide="ignore", invalid="ignore"):
                    t_drift = np.where(
                        k1 != 0.0, cap / np.abs(k1), np.inf
                    )
                h = float(t_drift.min())
                if h >= remaining:
                    break  # drift stalled: fluctuations own the rest
                h = max(h, 1.0)
                k2, _ = drift(np.maximum(x + (h / 2.0) * k1, 0.0))
                k3, _ = drift(np.maximum(x + (h / 2.0) * k2, 0.0))
                k4, _ = drift(np.maximum(x + h * k3, 0.0))
                x = x + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
                np.maximum(x, 0.0, out=x)
                if not bool(np.isfinite(x).all()):
                    raise SimulationError(
                        "the mean-field integration diverged (non-finite "
                        "counts); rerun on the leap backend"
                    )
                pos_f += h
                events_f += h * (weight / total_pairs)
                ode_steps += 1
                dwindled = was_macroscopic & (x < floor)
                was_macroscopic |= x >= floor
                if bool(dwindled.any()):
                    break  # a macroscopic species hit the floor

        handoff_pos = min(int(round(pos_f)), budget)
        handed = _round_conserving(x, size)
        if self.sanitize:
            _sanitize.check_counts_vector("fluid", handed, size, handoff_pos)

        # -- stochastic endgame: the leap backend owns the verdict --
        outcome = self._leap._advance_native(
            handed, handoff_pos, budget, label="fluid"
        )
        converged = outcome.converged_at is not None
        if not converged and raise_on_timeout:
            from repro.errors import ConvergenceError

            raise ConvergenceError(
                f"{self.protocol.display_name} did not converge within "
                f"{max_interactions} interactions",
                interactions=outcome.pos,
            )
        final_counts = [int(k) for k in outcome.counts]
        self.last_counts = final_counts
        pos = outcome.pos
        events = int(round(events_f)) + outcome.events
        final_configuration = None
        final_tally = None
        if materialize:
            final_configuration = materialize_counts(
                self._table, plan.n_mobile, final_counts, leader_pos
            )
        else:
            final_tally = {
                self._table.states[i]: k
                for i, k in enumerate(final_counts)
                if k
            }
        elapsed = time.perf_counter() - started
        return SimulationResult(
            converged=converged,
            interactions=pos,
            non_null_interactions=events,
            final_configuration=final_configuration,
            population=self.population,
            trace=None,
            convergence_interaction=outcome.converged_at,
            faults_injected=0,
            final_counts=final_tally,
            stats=RunStats(
                wall_seconds=elapsed,
                interactions_per_second=(
                    pos / elapsed if elapsed > 0 else 0.0
                ),
                null_fraction=((pos - events) / pos if pos else 0.0),
                leaps=outcome.leaps,
                mean_tau=(
                    outcome.leap_interactions / outcome.leaps
                    if outcome.leaps
                    else 0.0
                ),
                repairs=outcome.repairs,
                ode_steps=ode_steps,
                handoff_time=float(handoff_pos),
                handoff_backend="leap",
            ),
        )


BACKENDS["fluid"] = FluidSimulator
