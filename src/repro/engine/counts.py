"""The count-based simulation backend: O(states) memory, O(1) amortized
per-interaction cost, independent of the population size.

Population-protocol agents are anonymous, so under the uniform-random pair
scheduler a configuration is fully described by the *counts vector* of its
mobile states plus the leader's state (the paper's Section 3.1 equivalence,
and the multiset view the counting line of work reasons in).  The counts
process is itself a Markov chain: the probability that the next interaction
realizes the ordered state pair ``(i, j)`` is

    ``w_ij(c) = c_i * (c_j - [i = j])  over  N * (N - 1)``

which depends only on the current counts ``c``.  :class:`CountSimulator`
exploits this:

* the state space is interned once through the shared
  :class:`~repro.engine.fast.TransitionTable` (compiled and cached per
  protocol, exactly as the fast backend does);
* the configuration is a small integer vector ``c`` (one entry per state;
  the leader's state is the unique count-1 entry among leader-only
  indices), so memory is O(states), not O(N);
* interacting state pairs are sampled **directly from the counts** in
  NumPy-generated batches of thousands of trials per Python-level step;
* a transition updates four counts; the naming predicate (every mobile
  count <= 1) and the silence certificate (total non-null pair weight
  zero) are evaluated straight off the vector.

Sampling: exact thinning with batched proposals
-----------------------------------------------

Between two non-null interactions the counts are constant, so the run of
consecutive nulls is geometric and can be skipped in O(1).  To batch the
non-null draws without resampling per event, the backend fixes an
*envelope* ``ĉ = c + 2 * nu`` (no count can grow by more than 2 per event,
so ``ĉ`` dominates ``c`` for the next ``nu`` events) and presamples, per
batch, geometric gaps with success probability ``min(1, Ŵ / (N(N-1)))``
plus a uniform position inside the envelope's cumulative weight.  Each
candidate pair ``f`` is then *thinned* against the true weight: accepted
with probability ``w_f(c) / ŵ_f``, where ``c`` is the counts at that very
trial.  By the standard composition/thinning argument every trial realizes
pair ``f`` with probability exactly ``w_f(c) / (N(N-1))`` - the true
chain - while rejected candidates and skipped trials are exactly the null
interactions.  Convergence checks keep the reference semantics: they fire
at ``check_interval`` boundaries, only when a non-null interaction
happened since the previous check (geometric memorylessness makes
discarding a candidate at a boundary exact).

The native path is therefore *distribution-exact* (up to the float64
resolution of the sampler, the same caveat as any floating-point RNG):
convergence verdicts, convergence-time distributions and counts
trajectories match the agent-based backends statistically, which the
KS-style tests in ``tests/engine/test_counts.py`` verify.  It is *not*
stream-identical to the fast backend - it consumes NumPy randomness, not
the scheduler's Mersenne stream - so ``final_configuration`` is a
canonical representative of the reached equivalence class (mobile states
in interned order), exact up to the paper's Section 3.1 equivalence.

Runs the counts view cannot honour - non-uniform or adversarial
schedulers, fault hooks, traces/observers (which need agent identities),
protocols whose rules move states across the mobile/leader role boundary,
or missing NumPy - fall back to :class:`~repro.engine.fast.FastSimulator`
(which may itself fall back to the reference loop), with a
:class:`~repro.errors.BackendFallbackWarning` naming the reason.
"""

from __future__ import annotations

import time
from collections import Counter, OrderedDict

from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.fast import (
    BACKENDS,
    DEFAULT_COMPILE_LIMIT,
    FastSimulator,
    TransitionTable,
    compile_table,
    warn_fallback,
)
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import (
    FaultHook,
    Observer,
    RunStats,
    SimulationResult,
)
from repro.engine.trace import InteractionRecord, Trace
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    SimulationError,
)
from repro.schedulers.base import Scheduler

try:  # NumPy powers the batched sampler; without it the backend delegates.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None


def configuration_counts(
    table: TransitionTable, config: Configuration
) -> list[int]:
    """The counts vector of ``config`` over ``table``'s interned states.

    Includes the leader's state (as a count-1 entry), matching the
    internal representation of :class:`CountSimulator`; used by the
    differential trajectory tests.
    """
    counts = [0] * table.n_states
    index = table.index
    for state in config.states:
        counts[index[state]] += 1
    return counts


def apply_record(
    table: TransitionTable, counts: list[int], record: InteractionRecord
) -> None:
    """Apply one trace record to a counts vector, in place.

    The aggregate effect of a pair stream on the counts telescopes over
    per-record deltas, so replaying a :class:`~repro.engine.trace.Trace`
    this way reproduces the counts trajectory of the agent-based backends
    exactly - the basis of the shared-pair-stream differential test.
    """
    index = table.index
    counts[index[record.before_initiator]] -= 1
    counts[index[record.before_responder]] -= 1
    counts[index[record.after_initiator]] += 1
    counts[index[record.after_responder]] += 1


class _CountsPlan:
    """Per-table sampling tables: the non-null pairs, flattened.

    ``pair_i/pair_j`` (NumPy) index the interacting states of every
    non-null table entry and ``res_i/res_j`` their successor states,
    ``diag`` flags self-pairs (their weight is ``c * (c - 1)``);
    ``quads`` carries the same rows as plain tuples for the Python hot
    loop.  ``closed`` records whether every rule preserves the
    mobile/leader role split - the invariant that keeps the leader
    identifiable as the unique count among leader-only indices.
    """

    __slots__ = (
        "n_states",
        "n_mobile",
        "closed",
        "pair_i",
        "pair_j",
        "res_i",
        "res_j",
        "diag",
        "quads",
        "fingerprint",
    )

    def __init__(self, table: TransitionTable) -> None:
        self.fingerprint = table.fingerprint
        n = table.n_states
        n_mobile = len(table.mobile_indices)
        pi: list[int] = []
        pj: list[int] = []
        ri: list[int] = []
        rj: list[int] = []
        closed = True
        delta = table.delta
        for i in range(n):
            row = i * n
            for j in range(n):
                hit = delta[row + j]
                if hit is None:
                    continue
                i2, j2 = hit
                pi.append(i)
                pj.append(j)
                ri.append(i2)
                rj.append(j2)
                if (i < n_mobile) != (i2 < n_mobile) or (j < n_mobile) != (
                    j2 < n_mobile
                ):
                    closed = False
        self.n_states = n
        self.n_mobile = n_mobile
        self.closed = closed
        # One tuple per non-null pair for the Python hot loop:
        # (i, j, i2, j2, [i = j]) - a single index + unpack per event.
        self.quads = [
            (a, b, a2, b2, int(a == b))
            for a, b, a2, b2 in zip(pi, pj, ri, rj)
        ]
        self.pair_i = _np.asarray(pi, dtype=_np.int64)
        self.pair_j = _np.asarray(pj, dtype=_np.int64)
        self.res_i = _np.asarray(ri, dtype=_np.int64)
        self.res_j = _np.asarray(rj, dtype=_np.int64)
        self.diag = (self.pair_i == self.pair_j).astype(_np.int64)


def intern_initial(
    table: TransitionTable, n_mobile: int, initial: Configuration
) -> tuple[list[int] | None, str | None]:
    """Intern ``initial`` into a counts vector over ``table``'s states.

    Returns ``(counts, None)`` on success and ``(None, reason)`` when the
    configuration cannot be represented by counts alone (states outside
    the declared space, or a role mix-up that would make the leader
    unidentifiable).  Shared by the counts and batch backends.
    """
    counts = [0] * table.n_states
    leader_pos = initial.leader_index
    leader_state = (
        initial.states[leader_pos] if leader_pos is not None else None
    )
    # Tally distinct states at C speed (the per-agent Python loop
    # would dominate run() at N = 10^5+), then intern and role-check
    # per *distinct* state only.  The tally is cached on the immutable
    # configuration, so re-running from the same start (ensembles,
    # benchmark baselines) pays the hash pass once.
    try:
        tally = initial.state_tally()
        for state, k in tally.items():
            idx = table.index[state]
            if idx >= n_mobile and (k != 1 or state != leader_state):
                return None, "a mobile agent holds a leader-only state"
            counts[idx] += k
    except (KeyError, TypeError):
        return None, (
            "the initial configuration holds states outside the "
            "protocol's declared state space"
        )
    if leader_state is not None and table.index[leader_state] < n_mobile:
        return None, (
            "the leader holds a mobile state, which is "
            "ambiguous in the counts representation"
        )
    return counts, None


def materialize_counts(
    table: TransitionTable,
    n_mobile: int,
    counts: list[int],
    leader_pos: int | None,
) -> Configuration:
    """A canonical representative of the counts' equivalence class.

    Mobile states are expanded in interned (``sort_key``) order; the
    leader - the unique count among leader-only indices - returns to the
    agent slot it occupied initially.  Exact up to the paper's
    Section 3.1 equivalence; O(N).  Shared by the counts and batch
    backends.
    """
    objs = table.states
    states: list = []
    for i in range(n_mobile):
        k = counts[i]
        if k:
            states.extend([objs[i]] * k)
    if leader_pos is None:
        return Configuration(tuple(states), None)
    leader_state = None
    for i in range(n_mobile, table.n_states):
        if counts[i]:
            leader_state = objs[i]
            break
    states.insert(leader_pos, leader_state)
    return Configuration(tuple(states), leader_pos)


def _rebuild_counts_configuration(
    pairs: tuple, leader_state, leader_pos: int | None
) -> "CountsConfiguration":
    """Pickle reconstructor for :class:`CountsConfiguration`."""
    return CountsConfiguration(pairs, leader_state, leader_pos)


class CountsConfiguration(Configuration):
    """A :class:`Configuration` materialized lazily from a counts row.

    Stores the O(S) ``(state, count)`` pairs of the canonical
    representative instead of the O(N) per-agent states tuple; the full
    ``states`` tuple is built on first access and cached.  Equality,
    hashing and every view are interchangeable with an eagerly
    materialized :class:`Configuration` of the same equivalence-class
    representative (mixed comparisons in either order agree), so callers
    cannot tell the difference - except that a result whose final
    configuration is never inspected costs O(S), not O(N).

    This is what lets the lockstep engines return R-replicate ensembles
    without holding R O(N) tuples alive, and what lets the shared-memory
    parallel layer (:mod:`repro.engine.parallel`) transport results as
    (R, S) count rows with no per-agent pickling: pickling one of these
    ships the pairs, not the expansion.
    """

    __slots__ = ("_pairs", "_lazy_leader", "_states_cache")

    def __init__(
        self,
        pairs,
        leader_state,
        leader_pos: int | None,
    ) -> None:
        object.__setattr__(self, "_pairs", tuple(pairs))
        object.__setattr__(self, "_lazy_leader", leader_state)
        object.__setattr__(self, "_states_cache", None)
        object.__setattr__(self, "leader_index", leader_pos)
        object.__setattr__(self, "_canonical_cache", None)
        object.__setattr__(self, "_tally_cache", None)
        if leader_pos is not None and not (0 <= leader_pos <= self._n_mobile()):
            raise ConfigurationError(
                f"leader index {leader_pos} out of range for "
                f"{self._n_mobile() + 1} agents"
            )

    def _n_mobile(self) -> int:
        return sum(k for _, k in self._pairs)

    @property
    def states(self) -> tuple:  # type: ignore[override]
        cached = self._states_cache
        if cached is None:
            states: list = []
            for state, k in self._pairs:
                states.extend([state] * k)
            if self.leader_index is not None:
                states.insert(self.leader_index, self._lazy_leader)
            cached = tuple(states)
            object.__setattr__(self, "_states_cache", cached)
        return cached

    # -- O(S) overrides of the O(N) derived views ----------------------

    def __len__(self) -> int:
        return self._n_mobile() + (1 if self.leader_index is not None else 0)

    @property
    def size(self) -> int:  # type: ignore[override]
        return len(self)

    @property
    def leader_state(self):  # type: ignore[override]
        if self.leader_index is None:
            raise ConfigurationError("configuration has no leader")
        return self._lazy_leader

    def multiset(self) -> Counter:
        return Counter(dict(self._pairs))

    def state_tally(self) -> Counter:
        if self._tally_cache is None:
            tally = Counter(dict(self._pairs))
            if self.leader_index is not None:
                tally[self._lazy_leader] += 1
            object.__setattr__(self, "_tally_cache", tally)
        return self._tally_cache

    def names_distinct(self) -> bool:
        return all(k < 2 for _, k in self._pairs)

    # -- identity: interchangeable with eager configurations -----------

    def __eq__(self, other) -> bool:
        if isinstance(other, Configuration):
            return (self.states, self.leader_index) == (
                other.states,
                other.leader_index,
            )
        return NotImplemented

    def __hash__(self) -> int:
        # Matches the frozen-dataclass hash of an equal Configuration.
        return hash((self.states, self.leader_index))

    def __reduce__(self):
        # Pickle the O(S) pairs, never the O(N) expansion: results
        # shipped across processes (memo stores, worker fallbacks) stay
        # count-sized.
        return (
            _rebuild_counts_configuration,
            (self._pairs, self._lazy_leader, self.leader_index),
        )


def materialize_counts_lazy(
    table: TransitionTable,
    n_mobile: int,
    counts,
    leader_pos: int | None,
) -> Configuration:
    """O(S) lazy variant of :func:`materialize_counts`.

    Returns a :class:`CountsConfiguration` equal (``==``, ``hash``) to
    ``materialize_counts(table, n_mobile, counts, leader_pos)`` but
    holding only the nonzero ``(state, count)`` pairs; the O(N) states
    tuple is expanded on first access.  Used by the lockstep engines and
    the shared-memory parallel layer, where final configurations are
    frequently never inspected per agent.
    """
    objs = table.states
    pairs = tuple(
        (objs[i], int(counts[i])) for i in range(n_mobile) if counts[i]
    )
    leader_state = None
    if leader_pos is not None:
        for i in range(n_mobile, table.n_states):
            if counts[i]:
                leader_state = objs[i]
                break
    return CountsConfiguration(pairs, leader_state, leader_pos)


#: Bound on the fingerprint-keyed plan LRU (mirrors the table cache).
PLAN_CACHE_SIZE = 128

#: Sampling plans keyed by the compiled table's content fingerprint, so
#: equal protocol instances - and serving workers loading precompiled
#: artifacts - share one plan instead of rebuilding per instance.
_PLAN_CACHE: "OrderedDict[str, _CountsPlan]" = OrderedDict()


def seed_counts_plan(plan: _CountsPlan) -> None:
    """Inject a precompiled sampling plan into the process-wide cache.

    The serving workers (:mod:`repro.serve.pool`) call this with plans
    loaded from the content-addressed disk store; subsequent
    :func:`_plan_for` calls on tables with the same fingerprint reuse
    the injected plan without re-deriving the NumPy pair arrays.
    """
    _PLAN_CACHE[plan.fingerprint] = plan
    _PLAN_CACHE.move_to_end(plan.fingerprint)
    while len(_PLAN_CACHE) > PLAN_CACHE_SIZE:
        _PLAN_CACHE.popitem(last=False)


def _plan_for(
    protocol: PopulationProtocol, table: TransitionTable
) -> _CountsPlan:
    """Build (or fetch the cached) sampling plan for ``table``."""
    cached = _PLAN_CACHE.get(table.fingerprint)
    if cached is not None:
        _PLAN_CACHE.move_to_end(table.fingerprint)
        return cached
    plan = _CountsPlan(table)
    seed_counts_plan(plan)
    return plan


class CountSimulator:
    """Counts-vector simulator: per-interaction cost independent of N.

    Accepts the same constructor arguments and exposes the same
    :meth:`run` contract as the other backends.  Runs served natively
    are *statistically* equivalent to the agent-based backends (same
    counts Markov chain, same convergence-check semantics), with
    ``final_configuration`` a canonical representative of the reached
    equivalence class; runs the counts view cannot honour delegate to an
    internal :class:`~repro.engine.fast.FastSimulator` with a
    :class:`~repro.errors.BackendFallbackWarning`.  :attr:`last_run_native`
    reports which path served the last :meth:`run` call.

    Parameters
    ----------
    protocol, population, scheduler, problem, check_interval:
        As for :class:`~repro.engine.simulator.Simulator`.
    compile_limit:
        Largest state-space size eagerly compiled (shared with the fast
        backend); larger protocols delegate.
    events_per_batch:
        Non-null events simulated per envelope refresh (the ``nu`` of the
        module docstring).  Defaults to ``clamp(N // 32, 8, 512)``.
    sanitize:
        Arm the runtime sanitizer (see :mod:`repro.engine.sanitize`):
        the native path checks its counts vector (nonnegative entries
        summing to the population size) at every envelope refresh and at
        run end; delegated runs inherit the fast/reference sanitizers.
        Role discipline is already a native-path precondition
        (``plan.closed``), and silent configurations freeze the loop by
        construction.  Checks never consume randomness.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        population: Population,
        scheduler: Scheduler,
        problem: Problem | None = None,
        check_interval: int | None = None,
        compile_limit: int = DEFAULT_COMPILE_LIMIT,
        events_per_batch: int | None = None,
        sanitize: bool = False,
    ) -> None:
        # The fast simulator validates the wiring and serves as the
        # graceful-fallback delegate (it may in turn delegate to the
        # reference loop).
        self._fast = FastSimulator(
            protocol, population, scheduler, problem, check_interval,
            compile_limit, sanitize,
        )
        self.protocol = protocol
        self.population = population
        self.scheduler = scheduler
        self.problem = problem
        self.check_interval = self._fast.check_interval
        self.sanitize = sanitize
        self._table = compile_table(protocol, compile_limit)
        self._plan = (
            _plan_for(protocol, self._table)
            if _np is not None and self._table is not None
            else None
        )
        self._rng = (
            _np.random.default_rng(getattr(scheduler, "seed", None))
            if _np is not None
            else None
        )
        self._events_per_batch = events_per_batch or max(
            8, min(512, population.size // 32)
        )
        #: Whether the most recent :meth:`run` used the counts path.
        self.last_run_native = False
        #: Final counts vector of the most recent native run (interned
        #: order, leader included); ``None`` after delegated runs.
        self.last_counts: list[int] | None = None
        self._leader_pos: int | None = None

    @property
    def compiled(self) -> bool:
        """Whether the protocol compiled to a transition table."""
        return self._table is not None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_interactions: int = 1_000_000,
        trace: Trace | None = None,
        fault_hook: FaultHook | None = None,
        raise_on_timeout: bool = False,
        observer: Observer | None = None,
    ) -> SimulationResult:
        """Execute until certified convergence or the budget is exhausted.

        Same parameters and semantics as :meth:`Simulator.run`.  Traces,
        observers and fault hooks need agent identities, and non-uniform
        schedulers need the full agent vector, so those runs delegate.
        """
        if len(initial) != self.population.size:
            raise SimulationError(
                f"initial configuration has {len(initial)} agents, "
                f"population has {self.population.size}"
            )
        counts, reason = self._native_preconditions(
            initial, trace, fault_hook, observer
        )
        if reason is not None:
            warn_fallback("counts", "fast", reason)
            self.last_run_native = False
            self.last_counts = None
            return self._fast.run(
                initial,
                max_interactions=max_interactions,
                trace=trace,
                fault_hook=fault_hook,
                raise_on_timeout=raise_on_timeout,
                observer=observer,
            )
        self.last_run_native = True
        self._leader_pos = initial.leader_index
        return self._run_native(counts, max_interactions, raise_on_timeout)

    # ------------------------------------------------------------------
    # Native-path preconditions
    # ------------------------------------------------------------------

    def _native_preconditions(
        self,
        initial: Configuration,
        trace: Trace | None,
        fault_hook: FaultHook | None,
        observer: Observer | None,
    ) -> tuple[list[int] | None, str | None]:
        """Intern the initial configuration, or explain why we cannot."""
        if _np is None:
            return None, "NumPy is not installed (batched sampling needs it)"
        if self._table is None:
            return None, (
                "the protocol's state space could not be compiled to a "
                "transition table (unhashable, unenumerable or oversized)"
            )
        if not self._plan.closed:
            return None, (
                "a rule moves a state across the mobile/leader role "
                "boundary, so counts alone cannot identify the leader"
            )
        if not getattr(self.scheduler, "uniform_pairs", False):
            return None, (
                f"scheduler {self.scheduler.display_name!r} is not the "
                "uniform-random pair scheduler (counts sampling assumes "
                "independent uniform ordered pairs)"
            )
        if fault_hook is not None:
            return None, "fault hooks rewrite per-agent configurations"
        if trace is not None or observer is not None:
            return None, "traces and observers need agent identities"
        if self.problem is not None and not getattr(
            self.problem, "permutation_invariant", False
        ):
            return None, (
                "the problem is not permutation-invariant, so it cannot "
                "be evaluated on a canonical representative"
            )
        return intern_initial(self._table, self._plan.n_mobile, initial)

    # ------------------------------------------------------------------
    # Counts hot loop
    # ------------------------------------------------------------------

    def _materialize(self, counts: list[int]) -> Configuration:
        """A canonical representative of the counts' equivalence class.

        Mobile states are expanded in interned (``sort_key``) order; the
        leader - the unique count among leader-only indices - returns to
        the agent slot it occupied initially.  Exact up to the paper's
        Section 3.1 equivalence; O(N), called once per run plus once per
        generic-problem convergence check.
        """
        return materialize_counts(
            self._table, self._plan.n_mobile, counts, self._leader_pos
        )

    def _run_native(
        self,
        counts: list[int],
        max_interactions: int,
        raise_on_timeout: bool,
    ) -> SimulationResult:
        """The batched-thinning hot loop; assumes all preconditions."""
        np = _np
        started = time.perf_counter()
        plan = self._plan
        rng = self._rng
        problem = self.problem
        protocol = self.protocol
        check_interval = self.check_interval
        n_mobile = plan.n_mobile
        pair_i, pair_j, diag = plan.pair_i, plan.pair_j, plan.diag
        quads = plan.quads
        c = counts
        size = self.population.size
        total_pairs = size * (size - 1)
        nu = self._events_per_batch

        # Number of duplicated mobile states; the naming predicate
        # (names_distinct) is exactly ``dup == 0``.
        dup = 0
        for i in range(n_mobile):
            if c[i] >= 2:
                dup += 1

        checking = problem is not None
        fast_naming = checking and type(problem) is NamingProblem

        def total_weight() -> int:
            """Sum of non-null ordered-pair weights at the current counts.

            Zero exactly when the configuration is silent (every
            realizable meeting is null): counts-native mirror of
            :func:`repro.engine.problems.is_silent`.
            """
            a = np.asarray(c, dtype=np.int64)
            return int((a[pair_i] * (a[pair_j] - diag)).sum())

        def solved() -> bool:
            """Certified convergence, matching ``problem.is_solved``."""
            if fast_naming:
                return dup == 0 and total_weight() == 0
            return problem.is_solved(protocol, self._materialize(c))

        pos = 0  # completed interactions (nulls included)
        events = 0  # non-null interactions
        converged_at: int | None = None
        if problem is not None and solved():
            converged_at = 0

        budget = max_interactions
        # ``stop`` is the next position the gap jumps must not cross:
        # either a pending convergence-check boundary or the budget.
        stop = budget
        pending_check = False

        sanitizing = self.sanitize
        while pos < budget and converged_at is None:
            if sanitizing:
                # Envelope-refresh cadence: between refreshes the loop
                # only applies (-1, -1, +1, +1) quad updates, so any
                # corruption shows up here.
                _sanitize.check_counts_vector("counts", c, size, pos)
            # -- refresh: true weights at the current counts --
            a = np.asarray(c, dtype=np.int64)
            w_true = a[pair_i] * (a[pair_j] - diag)
            weight = int(w_true.sum())
            if weight == 0:
                # Silent configuration: frozen forever - fast-forward.
                if pending_check:
                    pos = stop
                    pending_check = False
                    stop = budget
                    if solved():
                        converged_at = pos
                        break
                pos = budget
                break
            envelope = a + 2 * nu  # dominates the counts for nu events
            w_hat = envelope[pair_i] * (envelope[pair_j] - diag)
            cum = np.cumsum(w_hat, dtype=np.float64)
            w_hat_total = float(cum[-1])
            p_hat = w_hat_total / total_pairs
            if p_hat >= 1.0:
                # Dense regime (small populations or heavy churn): the
                # inflated envelope is no thinning bound at all here, so
                # draw the next non-null event straight from the *true*
                # weights instead - gap ~ Geometric(W / N(N-1)), event f
                # with probability w_f / W.  Exact; one event per
                # refresh, which only costs where N is small anyway.
                gap = int(rng.geometric(weight / total_pairs))
                npos = pos + gap
                if npos > stop:
                    pos = stop
                    if not pending_check:
                        break  # budget exhausted mid-gap
                    # Memoryless gap: discard and redraw next iteration.
                    pending_check = False
                    stop = budget
                    if solved():
                        converged_at = pos
                    continue
                pos = npos
                cum_true = np.cumsum(w_true, dtype=np.float64)
                f = int(
                    np.searchsorted(
                        cum_true, rng.random() * weight, side="right"
                    )
                )
                i, j, i2, j2, _ = quads[f]
                if i != i2:
                    v = c[i] - 1
                    c[i] = v
                    if v == 1 and i < n_mobile:
                        dup -= 1
                    v = c[i2] + 1
                    c[i2] = v
                    if v == 2 and i2 < n_mobile:
                        dup += 1
                if j != j2:
                    v = c[j] - 1
                    c[j] = v
                    if v == 1 and j < n_mobile:
                        dup -= 1
                    v = c[j2] + 1
                    c[j2] = v
                    if v == 2 and j2 < n_mobile:
                        dup += 1
                events += 1
                if checking:
                    if pos % check_interval == 0:
                        pending_check = False
                        stop = budget
                        if solved():
                            converged_at = pos
                    elif not pending_check:
                        boundary = (
                            pos - pos % check_interval + check_interval
                        )
                        if boundary < budget:
                            stop = boundary
                            pending_check = True
                continue

            # Sparse regime: presample geometric gaps against the
            # envelope plus a position inside its cumulative weight,
            # then thin each candidate against the true weights.  At
            # most ``nu`` of the ``nu`` candidates can be accepted, so
            # the envelope guarantee holds for the whole batch.
            garr = rng.geometric(p_hat, size=nu)
            total_gap = int(garr.sum())
            gaps = garr.tolist()
            values = rng.random(nu) * w_hat_total
            buckets = np.searchsorted(cum, values, side="right")
            lower = cum[buckets - 1]
            lower[buckets == 0] = 0.0
            offsets = (values - lower).tolist()
            buckets = buckets.tolist()

            if checking:
                next_boundary = (
                    pos - pos % check_interval + check_interval
                )
                limit = next_boundary if next_boundary < stop else stop
            else:
                next_boundary = budget
                limit = stop
            if pos + total_gap < limit:
                # Bare loop: the whole batch provably stays short of the
                # next check boundary, any pending boundary and the
                # budget, so every per-candidate boundary test - and the
                # per-event check bookkeeping - can be hoisted out.
                before = events
                for gap, f, off in zip(gaps, buckets, offsets):
                    pos += gap
                    i, j, i2, j2, d = quads[f]
                    if off >= c[i] * (c[j] - d):
                        continue  # thinned candidate: a null interaction
                    if i != i2:
                        v = c[i] - 1
                        c[i] = v
                        if v == 1 and i < n_mobile:
                            dup -= 1
                        v = c[i2] + 1
                        c[i2] = v
                        if v == 2 and i2 < n_mobile:
                            dup += 1
                    if j != j2:
                        v = c[j] - 1
                        c[j] = v
                        if v == 1 and j < n_mobile:
                            dup -= 1
                        v = c[j2] + 1
                        c[j2] = v
                        if v == 2 and j2 < n_mobile:
                            dup += 1
                    events += 1
                # All events of this batch share one check boundary
                # (they happened strictly inside one check interval).
                if (
                    checking
                    and events != before
                    and not pending_check
                    and next_boundary < budget
                ):
                    stop = next_boundary
                    pending_check = True
                continue

            done = False
            for gap, f, off in zip(gaps, buckets, offsets):
                npos = pos + gap
                if npos > stop:
                    pos = stop
                    if not pending_check:
                        done = True  # budget exhausted mid-gap
                        break
                    # Check boundary crossed: the geometric gap is
                    # memoryless, so discarding this candidate and moving
                    # on to the next (a fresh draw) is exact.
                    pending_check = False
                    stop = budget
                    if solved():
                        converged_at = pos
                        done = True
                        break
                    continue
                pos = npos
                i, j, i2, j2, d = quads[f]
                if off >= c[i] * (c[j] - d):
                    continue  # thinned candidate: a null interaction
                # Accepted: the non-null event (i, j) -> (i2, j2).
                if i != i2:
                    v = c[i] - 1
                    c[i] = v
                    if v == 1 and i < n_mobile:
                        dup -= 1
                    v = c[i2] + 1
                    c[i2] = v
                    if v == 2 and i2 < n_mobile:
                        dup += 1
                if j != j2:
                    v = c[j] - 1
                    c[j] = v
                    if v == 1 and j < n_mobile:
                        dup -= 1
                    v = c[j2] + 1
                    c[j2] = v
                    if v == 2 and j2 < n_mobile:
                        dup += 1
                events += 1
                if checking:
                    if pos % check_interval == 0:
                        pending_check = False
                        stop = budget
                        if solved():
                            converged_at = pos
                            done = True
                            break
                    elif not pending_check:
                        boundary = (
                            pos - pos % check_interval + check_interval
                        )
                        if boundary < budget:
                            stop = boundary
                            pending_check = True
                        # Boundaries at/after the budget are covered by
                        # the final check below, as in the reference loop.
            if done:
                break

        if sanitizing:
            _sanitize.check_counts_vector("counts", c, size, pos)

        # Final check: the budget may end mid check-interval.
        if converged_at is None and problem is not None and solved():
            converged_at = pos

        converged = converged_at is not None
        if not converged and raise_on_timeout:
            raise ConvergenceError(
                f"{protocol.display_name} did not converge within "
                f"{max_interactions} interactions",
                interactions=pos,
            )
        self.last_counts = list(c)
        return SimulationResult(
            converged=converged,
            interactions=pos,
            non_null_interactions=events,
            final_configuration=self._materialize(c),
            population=self.population,
            trace=None,
            convergence_interaction=converged_at,
            faults_injected=0,
            stats=RunStats.measure(started, pos, events),
        )


BACKENDS["counts"] = CountSimulator
