"""Quotient (multiset) model checking for global fairness.

Population protocols are *uniform*: agents are interchangeable, so the
transition system factors through the multiset abstraction - a node is
(multiset of mobile states, leader state) instead of a labelled vector.
The quotient graph is exponentially smaller (multisets instead of tuples),
which pushes exact verification to larger instances: Proposition 13 at
``N = P = 6`` or Protocol 3 at ``N = P = 5`` become checkable.

Equivalence (proved by the uniform-lifting argument, exercised by the test
suite against the labelled checker): a protocol solves naming under global
fairness iff every reachable *quotient* sink SCC (i) contains no
mobile-changing edge - crucially including multiset-preserving self-loops
such as name swaps ``(s, t) -> (t, s)`` - and (ii) consists of
duplicate-free multisets.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import permutations
from typing import Callable, Hashable, Iterable

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import VerificationError

#: A quotient node: (sorted tuple of mobile states, leader state or None).
QuotientNode = tuple


def quotient_of(config: Configuration) -> QuotientNode:
    """The quotient node of a labelled configuration."""
    mobile = tuple(sorted(config.mobile_states, key=repr))
    leader = config.leader_state if config.has_leader else None
    return (mobile, leader)


@dataclass(frozen=True, slots=True)
class QuotientEdge:
    """One realizable interaction between quotient nodes."""

    source: QuotientNode
    target: QuotientNode
    changes_mobile: bool


@dataclass
class QuotientGraph:
    """The reachable quotient transition system."""

    nodes: set[QuotientNode] = field(default_factory=set)
    edges: dict[QuotientNode, list[QuotientEdge]] = field(default_factory=dict)
    initial: set[QuotientNode] = field(default_factory=set)

    def successors(self, node: QuotientNode) -> Iterable[QuotientNode]:
        """Distinct one-step successors of ``node``."""
        seen: set[QuotientNode] = set()
        for edge in self.edges.get(node, []):
            if edge.target not in seen:
                seen.add(edge.target)
                yield edge.target


def _node_edges(
    protocol: PopulationProtocol,
    node: QuotientNode,
    project: Callable[[object], object] = lambda state: state,
) -> list[QuotientEdge]:
    """All realizable non-null interactions out of a quotient node.

    ``project`` maps a mobile state to its name; ``changes_mobile`` is
    computed on projected names.
    """
    mobile, leader = node
    counts = Counter(mobile)
    edges: list[QuotientEdge] = []

    def mobile_target(remove: tuple, add: tuple) -> tuple:
        updated = counts.copy()
        for s in remove:
            updated[s] -= 1
        for s in add:
            updated[s] += 1
        return tuple(
            sorted(
                (s for s, c in updated.items() for _ in range(c)), key=repr
            )
        )

    # Mobile-mobile meetings: ordered pairs of states with availability.
    ordered: list[tuple[State, State]] = list(permutations(counts, 2))
    ordered.extend((s, s) for s, c in counts.items() if c >= 2)
    for p, q in ordered:
        p2, q2 = protocol.transition(p, q)
        if (p2, q2) == (p, q):
            continue
        target = (mobile_target((p, q), (p2, q2)), leader)
        changes = project(p2) != project(p) or project(q2) != project(q)
        edges.append(QuotientEdge(node, target, changes))

    # Leader-mobile meetings, both orientations.
    if leader is not None:
        for s in counts:
            for args in ((leader, s), (s, leader)):
                out = protocol.transition(*args)
                if out == args:
                    continue
                if args[0] == leader:
                    leader2, s2 = out
                else:
                    s2, leader2 = out
                target = (mobile_target((s,), (s2,)), leader2)
                edges.append(
                    QuotientEdge(node, target, project(s2) != project(s))
                )
    return edges


def explore_quotient(
    protocol: PopulationProtocol,
    initial: Iterable[QuotientNode],
    max_nodes: int = 5_000_000,
    name_of: Callable[[object], object] | None = None,
) -> QuotientGraph:
    """Breadth-first exploration of the quotient graph."""
    project = name_of if name_of is not None else lambda state: state
    graph = QuotientGraph()
    queue: deque[QuotientNode] = deque()
    for node in initial:
        if node not in graph.nodes:
            graph.nodes.add(node)
            graph.initial.add(node)
            queue.append(node)
    if not graph.nodes:
        raise VerificationError("no initial quotient nodes supplied")
    while queue:
        node = queue.popleft()
        edges = _node_edges(protocol, node, project)
        graph.edges[node] = edges
        for edge in edges:
            if edge.target not in graph.nodes:
                if len(graph.nodes) >= max_nodes:
                    raise VerificationError(
                        f"quotient graph exceeded {max_nodes} nodes"
                    )
                graph.nodes.add(edge.target)
                queue.append(edge.target)
    return graph


def _tarjan(
    nodes: Iterable[Hashable], successors
) -> list[list[Hashable]]:
    """Generic iterative Tarjan over an explicit successor function."""
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[list] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(list(successors(root))))]
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass
class QuotientVerdict:
    """Outcome of a quotient global-fairness check."""

    solves: bool
    explored_nodes: int
    counterexample: QuotientNode | None = None
    reason: str = ""


def check_naming_global_quotient(
    protocol: PopulationProtocol,
    initial: Iterable[QuotientNode],
    max_nodes: int = 5_000_000,
    name_of: Callable[[object], object] | None = None,
) -> QuotientVerdict:
    """Exact global-fairness naming check on the quotient graph.

    ``name_of`` projects a mobile state to its name (see
    :func:`repro.analysis.model_checker.check_naming_global`).
    """
    project = name_of if name_of is not None else lambda state: state
    graph = explore_quotient(
        protocol, initial, max_nodes=max_nodes, name_of=project
    )
    components = _tarjan(graph.nodes, graph.successors)
    membership: dict[QuotientNode, int] = {}
    for i, component in enumerate(components):
        for node in component:
            membership[node] = i
    for i, component in enumerate(components):
        members = set(component)
        is_sink = all(
            membership[target] == i
            for node in component
            for target in graph.successors(node)
        )
        if not is_sink:
            continue
        for node in component:
            for edge in graph.edges.get(node, []):
                if edge.changes_mobile and edge.target in members:
                    return QuotientVerdict(
                        solves=False,
                        explored_nodes=len(graph.nodes),
                        counterexample=node,
                        reason=(
                            "a fair execution keeps changing mobile states "
                            "in a recurrent component (names never "
                            "stabilize)"
                        ),
                    )
        mobile, _ = component[0]
        names = tuple(project(s) for s in mobile)
        if len(set(names)) != len(names):
            return QuotientVerdict(
                solves=False,
                explored_nodes=len(graph.nodes),
                counterexample=component[0],
                reason=(
                    f"a fair execution stabilizes on duplicates: {names}"
                ),
            )
    return QuotientVerdict(solves=True, explored_nodes=len(graph.nodes))


def arbitrary_quotient_initials(
    protocol: PopulationProtocol,
    n_mobile: int,
    leader_states: Iterable[State] | None = None,
) -> list[QuotientNode]:
    """All quotient nodes of arbitrary mobile initialization.

    Multisets instead of tuples: C(|Q| + N - 1, N) nodes rather than
    |Q|^N.
    """
    from itertools import combinations_with_replacement

    mobile_space = sorted(protocol.mobile_state_space())
    if protocol.requires_leader:
        if leader_states is None:
            leaders: list[State | None] = sorted(
                protocol.leader_state_space(), key=repr
            )
        else:
            leaders = list(leader_states)
    else:
        leaders = [None]
    return [
        (tuple(sorted(mobiles, key=repr)), leader)
        for mobiles in combinations_with_replacement(mobile_space, n_mobile)
        for leader in leaders
    ]
