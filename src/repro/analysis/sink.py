"""Sink-state analysis - the Section 3.1 machinery.

For a symmetric protocol, repeatedly letting two agents in the same state
``s`` interact walks a deterministic chain ``(s,s) -> (s1,s1) -> ...``
through the (finite) state space, so it must enter a cycle.  Section 3.1
proves that any ``P``-state symmetric naming protocol has exactly one such
cyclic state ``m`` - the *sink* - with ``(m, m) ->* (m, m)``, that the
sink's self-loop is immediate (Proposition 6), and builds *reduced
executions* where homonym pairs are immediately driven into the sink.

This module computes homonym chains, detects sink states for arbitrary
symmetric protocols, and performs the homonym-reduction used in the proofs
of Lemmas 8-10 and Theorem 11 - letting tests replay the paper's
constructions on the concrete protocols.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State, is_leader_state
from repro.errors import VerificationError


@dataclass(frozen=True)
class HomonymChain:
    """The deterministic chain of repeated same-state interactions.

    ``states`` starts at the seed state; ``cycle_start`` is the index where
    the chain first revisits a state (the entry into its terminal cycle).
    """

    states: tuple[State, ...]
    cycle_start: int

    @property
    def cycle(self) -> tuple[State, ...]:
        """The states forming the terminal cycle."""
        return self.states[self.cycle_start :]

    @property
    def entered_cycle_state(self) -> State:
        """The first state of the terminal cycle."""
        return self.states[self.cycle_start]


def homonym_chain(protocol: PopulationProtocol, seed: State) -> HomonymChain:
    """Follow ``(s, s) -> (s', s')`` from ``seed`` until a state repeats.

    Raises :class:`VerificationError` if the protocol is not symmetric on
    the chain (two equal states must map to two equal states).
    """
    seen: dict[State, int] = {}
    chain: list[State] = []
    state = seed
    while state not in seen:
        seen[state] = len(chain)
        chain.append(state)
        p2, q2 = protocol.transition(state, state)
        if p2 != q2:
            raise VerificationError(
                f"{protocol.display_name}: rule ({state!r}, {state!r}) -> "
                f"({p2!r}, {q2!r}) is not symmetric"
            )
        state = p2
    return HomonymChain(tuple(chain), seen[state])


def sink_states(protocol: PopulationProtocol) -> set[State]:
    """All mobile states ``m`` with ``(m, m) ->* (m, m)`` via non-empty
    chains - i.e. states on a homonym-interaction cycle.

    Section 3.1 (Proposition 6) shows a correct ``P``-state symmetric
    naming protocol has exactly one, whose cycle is the immediate self-loop.
    """
    sinks: set[State] = set()
    for state in protocol.mobile_state_space():
        chain = homonym_chain(protocol, state)
        sinks.update(chain.cycle)
    return sinks


def unique_sink(protocol: PopulationProtocol) -> State:
    """The protocol's unique sink state.

    Raises :class:`VerificationError` when the sink is not unique or its
    cycle is not the immediate self-loop ``(m, m) -> (m, m)``.
    """
    sinks = sink_states(protocol)
    if len(sinks) != 1:
        raise VerificationError(
            f"{protocol.display_name}: expected a unique sink state, "
            f"found {sorted(sinks, key=repr)}"
        )
    (sink,) = sinks
    if protocol.transition(sink, sink) != (sink, sink):
        raise VerificationError(
            f"{protocol.display_name}: sink {sink!r} lacks the immediate "
            "self-loop required by Proposition 6"
        )
    return sink


def reduce_homonyms(
    protocol: PopulationProtocol,
    config: Configuration,
    sink: State,
) -> tuple[Configuration, list[tuple[int, int]]]:
    """Drive every non-sink homonym pair into the sink (Section 3.1's
    *reducing sequences*), returning the reduced configuration and the
    sequence of agent pairs interacted.

    A configuration is *reduced* when its only homonyms are sink-state
    agents.
    """
    config_now = config
    interactions: list[tuple[int, int]] = []
    guard = 0
    limit = 4 * len(config) * max(1, len(protocol.mobile_state_space())) ** 2
    while True:
        guard += 1
        if guard > limit:
            raise VerificationError(
                f"{protocol.display_name}: homonym reduction did not "
                "terminate; the protocol has no proper sink behaviour"
            )
        by_state: dict[State, list[int]] = {}
        for agent, state in enumerate(config_now.states):
            if is_leader_state(state) or state == sink:
                continue
            by_state.setdefault(state, []).append(agent)
        pair = next(
            (
                (agents[0], agents[1])
                for agents in by_state.values()
                if len(agents) >= 2
            ),
            None,
        )
        if pair is None:
            return config_now, interactions
        x, y = pair
        # Walk the homonym chain until both agents reach the sink; a chain
        # longer than the state space means the cycle avoids the sink.
        steps = 0
        while (
            config_now.state_of(x) != sink
            and config_now.state_of(x) == config_now.state_of(y)
        ):
            steps += 1
            if steps > len(protocol.mobile_state_space()) + 1:
                raise VerificationError(
                    f"{protocol.display_name}: homonym chain from "
                    f"{config_now.state_of(x)!r} never reaches the sink "
                    f"{sink!r}"
                )
            p = config_now.state_of(x)
            outcome = protocol.transition(p, p)
            config_now = config_now.apply(x, y, outcome)
            interactions.append((x, y))


def is_reduced(config: Configuration, sink: State) -> bool:
    """Whether the only homonyms in ``config`` are sink-state agents."""
    return all(s == sink for s in config.homonym_states())
