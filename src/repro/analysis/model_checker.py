"""Global-fairness model checking.

Fact (paper Section 2 + standard argument): in a finite transition system a
globally fair execution eventually enters a *sink* strongly connected
component of the reachability graph and then visits each of its
configurations infinitely often.  Naming demands that every mobile agent's
name is eventually fixed and distinct; inside a sink SCC that holds exactly
when every edge of the SCC preserves all mobile states (so all member
configurations share one mobile vector) and that vector is duplicate-free.

So: *a protocol solves naming under global fairness from a set of initial
configurations iff every sink SCC reachable from them is mobile-constant
with distinct names.*  This module decides that condition exactly and
produces counterexample certificates, machine-verifying Propositions 13 and
17 and refuting the ``P``-state candidates of Proposition 2's lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.reachability import ConfigurationGraph, explore
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import PopulationProtocol
from repro.errors import VerificationError


@dataclass
class GlobalFairnessVerdict:
    """Outcome of a global-fairness naming check.

    ``solves`` is the headline answer; on failure ``counterexample`` holds
    a configuration of an offending sink SCC and ``reason`` explains which
    requirement broke.
    """

    solves: bool
    explored_nodes: int
    sink_scc_count: int
    counterexample: Configuration | None = None
    reason: str = ""
    #: One representative configuration per correct terminal class.
    terminal_examples: list[Configuration] = field(default_factory=list)


def strongly_connected_components(
    graph: ConfigurationGraph,
) -> list[list[Configuration]]:
    """Tarjan's algorithm, iterative (graphs can be deep)."""
    index: dict[Configuration, int] = {}
    lowlink: dict[Configuration, int] = {}
    on_stack: set[Configuration] = set()
    stack: list[Configuration] = []
    components: list[list[Configuration]] = []
    counter = 0

    for root in graph.nodes:
        if root in index:
            continue
        work: list[tuple[Configuration, Iterable[Configuration]]] = []
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(list(graph.successors(root)))))
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(graph.successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[Configuration] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def sink_components(
    graph: ConfigurationGraph,
) -> list[list[Configuration]]:
    """SCCs with no edge leaving them (every fair run's destiny)."""
    components = strongly_connected_components(graph)
    membership: dict[Configuration, int] = {}
    for i, component in enumerate(components):
        for config in component:
            membership[config] = i
    sinks: list[list[Configuration]] = []
    for i, component in enumerate(components):
        is_sink = all(
            membership[target] == i
            for config in component
            for target in graph.successors(config)
        )
        if is_sink:
            sinks.append(component)
    return sinks


def check_naming_global(
    protocol: PopulationProtocol,
    population: Population,
    initial: Iterable[Configuration],
    max_nodes: int = 2_000_000,
    name_of: Callable[[object], object] | None = None,
) -> GlobalFairnessVerdict:
    """Decide whether ``protocol`` solves naming under global fairness from
    the given initial configurations, on this exact population size.

    ``name_of`` projects an agent state to its *name* variable; the paper
    requires the name - not necessarily the whole state - to be eventually
    fixed and distinct.  Defaults to the identity, which is exact for all
    the paper's protocols (their state *is* the name); the symmetrized
    transformer needs the coin-stripping projection.
    """
    initial = list(initial)
    if not initial:
        raise VerificationError("no initial configurations supplied")
    project = name_of if name_of is not None else lambda state: state

    def names_of(config: Configuration) -> tuple:
        return tuple(project(s) for s in config.mobile_states)

    graph = explore(protocol, population, initial, max_nodes=max_nodes)
    sinks = sink_components(graph)

    terminal_examples: list[Configuration] = []
    for component in sinks:
        # Every edge inside the component must preserve mobile names.
        for config in component:
            for edge in graph.edges.get(config, []):
                if edge.changes_mobile and names_of(
                    edge.source
                ) != names_of(edge.target):
                    return GlobalFairnessVerdict(
                        solves=False,
                        explored_nodes=len(graph.nodes),
                        sink_scc_count=len(sinks),
                        counterexample=config,
                        reason=(
                            "a fair execution ends in a recurrent component "
                            "where mobile states keep changing (names never "
                            "stabilize)"
                        ),
                    )
        representative = component[0]
        names = names_of(representative)
        if len(set(names)) != len(names):
            return GlobalFairnessVerdict(
                solves=False,
                explored_nodes=len(graph.nodes),
                sink_scc_count=len(sinks),
                counterexample=representative,
                reason=(
                    "a fair execution stabilizes with duplicate names: "
                    f"{names}"
                ),
            )
        terminal_examples.append(representative)
    return GlobalFairnessVerdict(
        solves=True,
        explored_nodes=len(graph.nodes),
        sink_scc_count=len(sinks),
        terminal_examples=terminal_examples,
    )
