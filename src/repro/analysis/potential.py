"""The hole / hole-distance potential of Proposition 12's proof.

For the asymmetric protocol ``(s, s) -> (s, s + 1 mod P)`` the paper
defines, for a configuration ``C`` over states ``{0, ..., P-1}``:

* a *hole* is a value ``i`` no agent holds in ``C``;
* the *hole distance* of an agent in state ``i`` is the least ``j`` such
  that ``i + j mod P`` is a hole (0 if there is no hole);
* ``f(C) = (number of holes, sum of agents' hole distances)``.

Every non-null transition strictly decreases ``f`` lexicographically, and
``f`` is bounded, so executions terminate in silent configurations - which
must have all-distinct states.  The property-based tests drive random
executions and assert the strict decrease, turning the proof's invariant
into an executable oracle.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.errors import VerificationError


def holes(states: Sequence[int], bound: int) -> set[int]:
    """The values in ``{0, ..., bound-1}`` that no agent holds."""
    present = set(states)
    out_of_range = present.difference(range(bound))
    if out_of_range:
        raise VerificationError(
            f"states {sorted(out_of_range)} outside {{0,...,{bound - 1}}}"
        )
    return set(range(bound)) - present


def hole_distance_of_agent(state: int, hole_set: set[int], bound: int) -> int:
    """Minimum ``j >= 0`` with ``state + j mod bound`` a hole; 0 if none."""
    if not hole_set:
        return 0
    for j in range(bound):
        if (state + j) % bound in hole_set:
            return j
    raise AssertionError("non-empty hole set must be hit within bound steps")


def hole_distance(states: Sequence[int], bound: int) -> int:
    """Sum of the agents' hole distances in the configuration."""
    hole_set = holes(states, bound)
    counts = Counter(states)
    return sum(
        hole_distance_of_agent(s, hole_set, bound) * c
        for s, c in counts.items()
    )


def potential(states: Sequence[int], bound: int) -> tuple[int, int]:
    """The paper's lexicographic potential ``f(C)``."""
    hole_set = holes(states, bound)
    counts = Counter(states)
    distance = sum(
        hole_distance_of_agent(s, hole_set, bound) * c
        for s, c in counts.items()
    )
    return (len(hole_set), distance)


def potential_upper_bound(bound: int) -> tuple[int, int]:
    """The paper's bound ``(P, P(P-1))`` dominating every ``f(C)``."""
    return (bound, bound * (bound - 1))
