"""Convergence statistics over repeated simulation runs.

The paper makes no time-complexity claims (it is an exact *space* study),
but any reproduction should still report how expensive convergence is; the
supplementary experiments use these helpers to aggregate interaction counts
across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.simulator import SimulationResult
from repro.errors import VerificationError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of interaction counts."""

    count: int
    mean: float
    stdev: float
    minimum: int
    median: float
    p90: float
    maximum: int

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} sd={self.stdev:.1f} "
            f"min={self.minimum} med={self.median:.1f} "
            f"p90={self.p90:.1f} max={self.maximum}"
        )


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted values."""
    if not sorted_values:
        raise VerificationError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise VerificationError(f"quantile must be in [0, 1], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize(values: Sequence[int]) -> Summary:
    """Summary statistics for a sample of interaction counts."""
    if not values:
        raise VerificationError("cannot summarize an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = (
        sum((v - mean) ** 2 for v in ordered) / (n - 1) if n > 1 else 0.0
    )
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        median=quantile(ordered, 0.5),
        p90=quantile(ordered, 0.9),
        maximum=ordered[-1],
    )


def convergence_sample(
    run: Callable[[int], SimulationResult],
    seeds: Sequence[int],
    require_convergence: bool = True,
) -> list[int]:
    """Run ``run(seed)`` per seed and collect convergence interactions.

    ``run`` builds and executes one simulation; non-converged runs raise
    (when ``require_convergence``) or are skipped otherwise.
    """
    sample: list[int] = []
    for seed in seeds:
        result = run(seed)
        if not result.converged:
            if require_convergence:
                raise VerificationError(
                    f"run with seed {seed} did not converge within "
                    f"{result.interactions} interactions"
                )
            continue
        assert result.convergence_interaction is not None
        sample.append(result.convergence_interaction)
    return sample
