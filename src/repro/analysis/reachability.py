"""Exhaustive configuration-graph construction.

For small populations and state spaces the entire transition system is
finite and explicit exploration is feasible.  Nodes are full (labelled)
configurations - agent identities preserved, which the weak-fairness
checker needs; edges carry the interacting ordered pair.  The graph is the
common substrate of both model checkers.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Iterator

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import VerificationError


@dataclass(frozen=True, slots=True)
class Edge:
    """A non-null transition between configurations.

    ``pair`` is the unordered agent pair realizing it; ``changes_mobile``
    records whether any mobile agent's state differs between source and
    target (the property the naming-convergence analyses care about).
    """

    source: Configuration
    target: Configuration
    pair: frozenset[AgentId]
    changes_mobile: bool


@dataclass
class ConfigurationGraph:
    """The reachable fragment of a protocol's transition system."""

    population: Population
    nodes: set[Configuration] = field(default_factory=set)
    #: Outgoing non-null edges per node.  Null self-loops are implicit:
    #: every configuration can always repeat a null interaction.
    edges: dict[Configuration, list[Edge]] = field(default_factory=dict)
    initial: set[Configuration] = field(default_factory=set)

    def successors(self, config: Configuration) -> Iterator[Configuration]:
        """Distinct one-step successors of ``config`` (non-null only)."""
        seen: set[Configuration] = set()
        for edge in self.edges.get(config, []):
            if edge.target not in seen:
                seen.add(edge.target)
                yield edge.target

    def edge_count(self) -> int:
        """Total number of non-null edges in the graph."""
        return sum(len(es) for es in self.edges.values())


def one_step_edges(
    protocol: PopulationProtocol,
    population: Population,
    config: Configuration,
) -> list[Edge]:
    """All non-null edges out of ``config`` (both orders of every pair)."""
    edges: list[Edge] = []
    mobile_count = population.n_mobile
    for x, y in population.unordered_pairs():
        for initiator, responder in ((x, y), (y, x)):
            p = config.state_of(initiator)
            q = config.state_of(responder)
            p2, q2 = protocol.transition(p, q)
            if (p2, q2) == (p, q):
                continue
            target = config.apply(initiator, responder, (p2, q2))
            changes_mobile = (
                initiator < mobile_count and p2 != p
            ) or (responder < mobile_count and q2 != q)
            edges.append(
                Edge(config, target, frozenset((x, y)), changes_mobile)
            )
    return edges


#: Explored graphs kept per process, keyed by protocol content
#: fingerprint + population + root set.  Repeated lint/check sweeps over
#: *equal* protocol instances (the registry builds a fresh object per
#: cell) reuse one exploration instead of re-enumerating successor
#: lists.  Bounded LRU, same idiom as the compiled-table cache in
#: :mod:`repro.engine.fast`.
GRAPH_CACHE_SIZE = 32

_GRAPH_CACHE: "OrderedDict[tuple, ConfigurationGraph]" = OrderedDict()


def _graph_key(
    protocol: PopulationProtocol,
    population: Population,
    roots: list[Configuration],
) -> tuple | None:
    """Content key for one exploration; ``None`` when uncacheable."""
    from repro.engine.fast import table_fingerprint

    fingerprint = table_fingerprint(protocol)
    if fingerprint is None:
        return None  # too large / not enumerable: explore uncached
    return (
        fingerprint,
        population.n_mobile,
        population.has_leader,
        tuple(sorted(repr(c.states) for c in roots)),
    )


def _remember_graph(key: tuple, graph: ConfigurationGraph) -> None:
    """Insert ``graph`` into the LRU, evicting the oldest beyond the cap."""
    _GRAPH_CACHE[key] = graph
    _GRAPH_CACHE.move_to_end(key)
    while len(_GRAPH_CACHE) > GRAPH_CACHE_SIZE:
        _GRAPH_CACHE.popitem(last=False)


def seed_configuration_graph(
    protocol: PopulationProtocol,
    population: Population,
    initial: Iterable[Configuration],
    graph: ConfigurationGraph,
) -> None:
    """Inject a pre-explored graph into the process-wide cache.

    The ``seed_*`` injection idiom from :mod:`repro.engine.fast`: a
    worker that received a graph out of band can make the next
    :func:`explore` call with the same protocol content, population and
    roots return it without re-enumerating.  No-op when the protocol is
    not fingerprintable (those explorations are never cached).
    """
    key = _graph_key(protocol, population, list(initial))
    if key is not None:
        _remember_graph(key, graph)


def explore(
    protocol: PopulationProtocol,
    population: Population,
    initial: Iterable[Configuration],
    max_nodes: int = 2_000_000,
) -> ConfigurationGraph:
    """Breadth-first exploration from the given initial configurations.

    Results are cached per (protocol content fingerprint, population,
    root set), so equal protocol instances share one exploration; the
    ``max_nodes`` cap is enforced on cache hits too (a cached graph
    larger than this call's cap raises exactly as a fresh exploration
    would).
    """
    roots = list(initial)
    key = _graph_key(protocol, population, roots)
    if key is not None:
        cached = _GRAPH_CACHE.get(key)
        if cached is not None:
            _GRAPH_CACHE.move_to_end(key)
            if len(cached.nodes) > max_nodes:
                raise VerificationError(
                    f"configuration graph exceeded {max_nodes} nodes; "
                    "use a smaller instance"
                )
            return cached
    graph = ConfigurationGraph(population)
    queue: deque[Configuration] = deque()
    for config in roots:
        if len(config) != population.size:
            raise VerificationError(
                f"initial configuration has {len(config)} agents, "
                f"population has {population.size}"
            )
        if config not in graph.nodes:
            graph.nodes.add(config)
            graph.initial.add(config)
            queue.append(config)
    while queue:
        config = queue.popleft()
        edges = one_step_edges(protocol, population, config)
        graph.edges[config] = edges
        for edge in edges:
            if edge.target not in graph.nodes:
                if len(graph.nodes) >= max_nodes:
                    raise VerificationError(
                        f"configuration graph exceeded {max_nodes} nodes; "
                        "use a smaller instance"
                    )
                graph.nodes.add(edge.target)
                queue.append(edge.target)
    if key is not None:
        _remember_graph(key, graph)
    return graph


def arbitrary_initial_configurations(
    protocol: PopulationProtocol,
    population: Population,
    leader_states: Iterable[State] | None = None,
) -> Iterator[Configuration]:
    """Every configuration allowed by arbitrary mobile initialization.

    ``leader_states`` restricts the leader's initial states (pass the
    protocol's single initialized state, or leave ``None`` for the full
    leader space - the self-stabilizing reading).
    """
    mobile_space = sorted(protocol.mobile_state_space())
    if population.has_leader:
        if leader_states is None:
            leaders: list[State] = sorted(
                protocol.leader_state_space(), key=repr
            )
        else:
            leaders = list(leader_states)
        if not leaders:
            raise VerificationError("no leader states to initialize from")
        for mobiles in product(mobile_space, repeat=population.n_mobile):
            for leader in leaders:
                yield Configuration.from_states(population, mobiles, leader)
    else:
        for mobiles in product(mobile_space, repeat=population.n_mobile):
            yield Configuration.from_states(population, mobiles)


def uniform_initial_configurations(
    protocol: PopulationProtocol,
    population: Population,
    leader_states: Iterable[State] | None = None,
) -> Iterator[Configuration]:
    """Configurations with all mobile agents in the protocol's designated
    initial state (falling back to every uniform value when the protocol
    does not designate one)."""
    designated = protocol.initial_mobile_state()
    values = (
        [designated]
        if designated is not None
        else sorted(protocol.mobile_state_space())
    )
    if population.has_leader:
        if leader_states is None:
            designated_leader = protocol.initial_leader_state()
            leaders = (
                [designated_leader]
                if designated_leader is not None
                else sorted(protocol.leader_state_space(), key=repr)
            )
        else:
            leaders = list(leader_states)
        for value in values:
            for leader in leaders:
                yield Configuration.uniform(population, value, leader)
    else:
        for value in values:
            yield Configuration.uniform(population, value)
