"""Symbolic frontier model checking on the counts quotient.

The explicit checkers in :mod:`repro.analysis` walk *labelled*
configuration graphs (one node per agent-indexed state vector), which
caps exhaustive verification at tiny populations.  Population protocols
are uniform, so the transition system factors through the *counts
quotient*: a configuration is a vector of per-state counts (plus the
leader's state), and an interaction is a sparse delta on that vector.
This module ports the frontier/fixpoint style of set-based model
checking (reach/react) onto that quotient:

* :class:`CountsSystem` compiles a protocol into packed NumPy transition
  rules - one delta row per non-null ordered state pair, with
  leader-state rules compiled lazily per *encountered* leader state, so
  a 10^4-state leader space costs only what the frontier touches.
* :func:`reach` runs a breadth-first fixpoint over hashed count rows,
  recording predecessor links (for witness paths) and, on request, the
  full edge relation (for SCC analysis).
* :func:`check_reach` / :func:`check_sinks` / :func:`check_liveness`
  decide naming-on-silence, sink-SCC discipline and weak-fairness
  liveness as frontier-intersection / SCC / trap-fixpoint queries.

Every FAIL verdict carries a :class:`SymbolicWitness` - a concrete
initial configuration plus an explicit meeting schedule - and is
replay-validated step by step through the reference
:class:`~repro.engine.simulator.Simulator` before it is reported.

Soundness.  Reachability and sink-SCC discipline are *exact* on the
quotient (uniformity: the labelled graph and the quotient graph have the
same reachable count vectors and corresponding SCC structure).  The
weak-fairness check is exact too, via a two-level scheme: the quotient
frontier finds *candidate* SCCs (an internal name-changing edge or a
duplicate-name member - every labelled failure projects into one), and
only their *fibers* (the labelled configurations over those count
vectors - multinomially many in N, independent of the state bound P)
are expanded for the exact labelled SCC + pair-coverage
characterization of :mod:`repro.analysis.weak_fairness`.  Agent
anonymity makes the fiber graph permutation-symmetric, which is what
lets a quotient witness path be re-anchored onto a concrete violating
component.  The differential tests gate this equivalence against the
explicit labelled checker on every instance small enough for both.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import combinations_with_replacement, permutations
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import is_silent
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State, is_leader_state, sort_key
from repro.errors import VerificationError

#: An ordered meeting: (initiator, responder) agent ids.
Meeting = tuple[int, int]

#: Hard ceiling on enumerated initial count vectors when no explicit
#: ``max_roots`` budget is given.  Matches the default frontier cap of
#: :func:`reach` - more roots than that could never be explored anyway,
#: and failing before enumeration keeps protocols whose declared leader
#: space is exponential in the bound from exhausting memory.
MAX_ENUMERATED_ROOTS = 2_000_000


# ----------------------------------------------------------------------
# State closure (frontier-incremental)
# ----------------------------------------------------------------------


def initial_state_sets(protocol: PopulationProtocol) -> tuple[set, set]:
    """The mobile/leader states legal in an initial configuration.

    A designated uniform initial state restricts the set to it; a
    ``None`` designation (the self-stabilizing reading) admits the full
    space.
    """
    designated = protocol.initial_mobile_state()
    mobiles = (
        {designated}
        if designated is not None
        else set(protocol.mobile_state_space())
    )
    leader_designated = protocol.initial_leader_state()
    leaders = (
        {leader_designated}
        if leader_designated is not None
        else set(protocol.leader_state_space())
    )
    return mobiles, leaders


def state_closure(
    protocol: PopulationProtocol,
) -> tuple[set, set] | None:
    """States reachable from the declared initial states, role-split.

    A sound over-approximation of configuration reachability: it tracks
    which *states* can ever occur (ignoring counts), so a state outside
    the closure is unreachable in every population under every
    scheduler.  Frontier-incremental: each newly discovered state is
    paired once against every state known so far, so the total cost is
    O(|closure|^2) transition calls rather than the quadratic-per-
    iteration rescan of a naive fixpoint.  Returns
    ``(mobile_reached, leader_reached)``, or ``None`` when the closure
    escapes the declared spaces (the ``closure`` lint rule reports that
    separately).
    """
    mobile_space = protocol.mobile_state_space()
    leader_space = protocol.leader_state_space()
    mobiles, leaders = initial_state_sets(protocol)
    queue: deque[State] = deque(mobiles)
    queue.extend(leaders)

    def absorb(state: State) -> bool:
        """Intern a freshly produced state; True if it escapes."""
        if is_leader_state(state):
            if state in leaders:
                return False
            if state not in leader_space:
                return True
            leaders.add(state)
        else:
            if state in mobiles:
                return False
            if state not in mobile_space:
                return True
            mobiles.add(state)
        queue.append(state)
        return False

    while queue:
        new = queue.popleft()
        # Pair the new state against everything known, both orders.
        # Leader/leader pairs are unschedulable (one leader) and skipped.
        if is_leader_state(new):
            partners: Iterable[State] = list(mobiles)
        else:
            partners = list(mobiles) + list(leaders)
        for other in partners:
            for x, y in ((new, other), (other, new)):
                if is_leader_state(x) and is_leader_state(y):
                    continue
                for produced in protocol.transition(x, y):
                    if absorb(produced):
                        return None
        if not is_leader_state(new):
            for produced in protocol.transition(new, new):
                if absorb(produced):
                    return None
    return mobiles, leaders


# ----------------------------------------------------------------------
# Compilation: protocol -> packed counts-quotient transition system
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicRule:
    """One non-null interaction rule on the counts quotient.

    ``before``/``after`` are the actual states in (initiator, responder)
    order; ``changes_name`` records whether a mobile participant's
    *projected name* differs across the rule.
    """

    rid: int
    kind: str  # "mm" (mobile-mobile) or "lm" (leader involved)
    before: tuple[State, State]
    after: tuple[State, State]
    changes_name: bool


@dataclass
class _LeaderGroup:
    """Lazily compiled leader-mobile rules for one leader state."""

    #: Mobile state index of the mobile participant, per rule.
    s: np.ndarray
    #: Interned index of the post-interaction leader state, per rule.
    post: np.ndarray
    #: Mobile-counts delta row per rule (leader column zeroed).
    delta: np.ndarray
    #: Global rule id per rule.
    rid: np.ndarray
    #: Whether the (leader, mobile) orientation is non-null, per mobile
    #: state index; same for (mobile, leader).
    nonnull_lf: np.ndarray
    nonnull_mf: np.ndarray
    #: (mobile state index, orientation 0=leader-first) -> rule position.
    rule_pos: dict[tuple[int, int], int]


class CountsSystem:
    """A protocol compiled onto the counts quotient.

    A node is an ``int32`` row of length ``width``: one count per mobile
    state (sorted by :func:`repro.engine.state.sort_key`) plus, for
    leader protocols, a trailing column holding the *interned index* of
    the leader state.  Leader states are interned on first encounter, so
    huge declared leader spaces cost nothing until the frontier reaches
    them.

    Raises :class:`VerificationError` at compile (or lazy leader
    compile) time when a transition leaves the declared mobile space or
    moves a state across the mobile/leader role boundary - the explicit
    checkers have no such precondition, which is exactly why the lint
    ladder falls back to them.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        name_of: Callable[[State], object] | None = None,
    ) -> None:
        self.protocol = protocol
        self.project = name_of if name_of is not None else lambda s: s
        self.mobile: list[State] = sorted(
            protocol.mobile_state_space(), key=sort_key
        )
        if not self.mobile:
            raise VerificationError(
                f"{protocol.display_name}: empty mobile state space"
            )
        self.midx: dict[State, int] = {
            s: i for i, s in enumerate(self.mobile)
        }
        self.M = len(self.mobile)
        self.has_leader = protocol.requires_leader
        self.width = self.M + (1 if self.has_leader else 0)
        self.rules: list[SymbolicRule] = []
        # Interned leader states, discovered lazily.
        self._leaders: list[State] = []
        self._lidx: dict[State, int] = {}
        self._leader_groups: dict[int, _LeaderGroup] = {}
        # Name projection: M x n_names incidence matrix.
        names = [self.project(s) for s in self.mobile]
        name_order = sorted(set(names), key=sort_key)
        name_col = {n: c for c, n in enumerate(name_order)}
        self.name_matrix = np.zeros((self.M, len(name_order)), dtype=np.int32)
        for i, n in enumerate(names):
            self.name_matrix[i, name_col[n]] = 1
        self._compile_mobile_rules()

    # -- compilation ---------------------------------------------------

    def _mobile_index(self, state: State, context: str) -> int:
        idx = self.midx.get(state)
        if idx is None:
            raise VerificationError(
                f"{self.protocol.display_name}: {context} produced "
                f"{state!r}, outside the declared mobile state space"
            )
        return idx

    def _compile_mobile_rules(self) -> None:
        M = self.M
        self._mm_null = np.ones((M, M), dtype=bool)
        self._mm_rule = np.full((M, M), -1, dtype=np.int64)
        mm_i: list[int] = []
        mm_j: list[int] = []
        deltas: list[np.ndarray] = []
        rids: list[int] = []
        for i, p in enumerate(self.mobile):
            for j, q in enumerate(self.mobile):
                p2, q2 = self.protocol.transition(p, q)
                if (p2, q2) == (p, q):
                    continue
                context = f"transition({p!r}, {q!r})"
                if is_leader_state(p2) or is_leader_state(q2):
                    raise VerificationError(
                        f"{self.protocol.display_name}: {context} turned a "
                        "mobile agent into a leader state"
                    )
                i2 = self._mobile_index(p2, context)
                j2 = self._mobile_index(q2, context)
                delta = np.zeros(self.width, dtype=np.int32)
                delta[i] -= 1
                delta[j] -= 1
                delta[i2] += 1
                delta[j2] += 1
                rid = len(self.rules)
                changes = self.project(p2) != self.project(p) or (
                    self.project(q2) != self.project(q)
                )
                self.rules.append(
                    SymbolicRule(rid, "mm", (p, q), (p2, q2), changes)
                )
                self._mm_null[i, j] = False
                self._mm_rule[i, j] = rid
                mm_i.append(i)
                mm_j.append(j)
                deltas.append(delta)
                rids.append(rid)
        self._mm_i = np.asarray(mm_i, dtype=np.int64)
        self._mm_j = np.asarray(mm_j, dtype=np.int64)
        self._mm_delta = (
            np.stack(deltas)
            if deltas
            else np.zeros((0, self.width), dtype=np.int32)
        )
        self._mm_rid = np.asarray(rids, dtype=np.int64)

    def leader_index(self, state: State) -> int:
        """Intern a leader state, assigning it a stable row value."""
        idx = self._lidx.get(state)
        if idx is None:
            if not is_leader_state(state):
                raise VerificationError(
                    f"{self.protocol.display_name}: {state!r} is not a "
                    "leader state"
                )
            idx = len(self._leaders)
            self._leaders.append(state)
            self._lidx[state] = idx
        return idx

    def leader_state(self, index: int) -> State:
        """The leader state interned at ``index``."""
        return self._leaders[index]

    def leader_group(self, index: int) -> _LeaderGroup:
        """The (lazily compiled) leader-mobile rules for one leader."""
        group = self._leader_groups.get(index)
        if group is not None:
            return group
        leader = self._leaders[index]
        s_list: list[int] = []
        post_list: list[int] = []
        delta_list: list[np.ndarray] = []
        rid_list: list[int] = []
        nonnull_lf = np.zeros(self.M, dtype=bool)
        nonnull_mf = np.zeros(self.M, dtype=bool)
        rule_pos: dict[tuple[int, int], int] = {}
        for i, m in enumerate(self.mobile):
            for orient, args in enumerate(((leader, m), (m, leader))):
                out = self.protocol.transition(*args)
                if out == args:
                    continue
                context = f"transition({args[0]!r}, {args[1]!r})"
                if orient == 0:
                    leader2, m2 = out
                else:
                    m2, leader2 = out
                if not is_leader_state(leader2) or is_leader_state(m2):
                    raise VerificationError(
                        f"{self.protocol.display_name}: {context} moved a "
                        "state across the mobile/leader role boundary"
                    )
                i2 = self._mobile_index(m2, context)
                delta = np.zeros(self.width, dtype=np.int32)
                delta[i] -= 1
                delta[i2] += 1
                rid = len(self.rules)
                self.rules.append(
                    SymbolicRule(
                        rid,
                        "lm",
                        args,
                        out,
                        self.project(m2) != self.project(m),
                    )
                )
                rule_pos[(i, orient)] = len(s_list)
                (nonnull_lf if orient == 0 else nonnull_mf)[i] = True
                s_list.append(i)
                post_list.append(self.leader_index(leader2))
                delta_list.append(delta)
                rid_list.append(rid)
        group = _LeaderGroup(
            s=np.asarray(s_list, dtype=np.int64),
            post=np.asarray(post_list, dtype=np.int64),
            delta=(
                np.stack(delta_list)
                if delta_list
                else np.zeros((0, self.width), dtype=np.int32)
            ),
            rid=np.asarray(rid_list, dtype=np.int64),
            nonnull_lf=nonnull_lf,
            nonnull_mf=nonnull_mf,
            rule_pos=rule_pos,
        )
        self._leader_groups[index] = group
        return group

    # -- encoding ------------------------------------------------------

    def encode(self, config: Configuration) -> np.ndarray:
        """The count row of a labelled configuration."""
        row = np.zeros(self.width, dtype=np.int32)
        for s in config.mobile_states:
            row[self._mobile_index(s, "configuration")] += 1
        if self.has_leader:
            row[self.M] = self.leader_index(config.leader_state)
        return row

    def decode(self, row: np.ndarray, population: Population) -> Configuration:
        """A canonical labelled representative of a count row."""
        mobiles: list[State] = []
        for i in range(self.M):
            mobiles.extend([self.mobile[i]] * int(row[i]))
        leader = (
            self._leaders[int(row[self.M])] if self.has_leader else None
        )
        return Configuration.from_states(population, mobiles, leader)

    def count_summary(self, row: np.ndarray) -> dict[str, int]:
        """JSON-friendly rendering of a count row."""
        summary = {
            repr(self.mobile[i]): int(row[i])
            for i in range(self.M)
            if row[i]
        }
        if self.has_leader:
            summary["leader"] = repr(self._leaders[int(row[self.M])])
        return summary

    # -- roots ---------------------------------------------------------

    def root_matrix(
        self,
        n_mobile: int,
        mobile_mode: str = "auto",
        leader_states: Iterable[State] | None = None,
        max_roots: int | None = None,
    ) -> np.ndarray:
        """Initial count rows for a population of ``n_mobile`` agents.

        ``mobile_mode``: ``"uniform"`` puts all agents in the designated
        initial state (every uniform value when none is designated),
        ``"arbitrary"`` enumerates all multisets, ``"auto"`` picks
        uniform exactly when the protocol designates an initial state.
        ``leader_states`` defaults to the full declared leader space for
        arbitrary mobile init (the self-stabilizing reading) and to the
        designated initial leader (when one exists) for uniform init,
        matching the explicit root enumerators in
        :mod:`repro.analysis.reachability`.
        """
        if mobile_mode == "auto":
            mobile_mode = (
                "uniform"
                if self.protocol.initial_mobile_state() is not None
                else "arbitrary"
            )
        if mobile_mode == "uniform":
            designated = self.protocol.initial_mobile_state()
            values = [designated] if designated is not None else self.mobile
            mobile_rows = []
            for value in values:
                row = np.zeros(self.M, dtype=np.int32)
                row[self._mobile_index(value, "initial state")] = n_mobile
                mobile_rows.append(row)
        elif mobile_mode == "arbitrary":
            count = _multiset_count(self.M, n_mobile)
            if max_roots is not None and count > max_roots:
                raise VerificationError(
                    f"{count} initial count vectors exceed the root "
                    f"budget of {max_roots}"
                )
            mobile_rows = []
            for combo in combinations_with_replacement(
                range(self.M), n_mobile
            ):
                row = np.zeros(self.M, dtype=np.int32)
                for i in combo:
                    row[i] += 1
                mobile_rows.append(row)
        else:
            raise ValueError(f"unknown mobile_mode {mobile_mode!r}")
        if not self.has_leader:
            roots = np.stack(mobile_rows)
        else:
            if leader_states is None:
                # Mirror the explicit root conventions: arbitrary mobile
                # init reads self-stabilizing (full leader space);
                # uniform init starts from the designated leader when
                # one exists.
                designated_leader = (
                    self.protocol.initial_leader_state()
                    if mobile_mode == "uniform"
                    else None
                )
                if designated_leader is not None:
                    leader_states = [designated_leader]
                else:
                    # Fail fast on the closed-form size hint before
                    # materializing a leader space that is exponential
                    # in the name bound.
                    size = self.protocol.leader_space_size()
                    total = len(mobile_rows) * size
                    cap = (
                        max_roots
                        if max_roots is not None
                        else MAX_ENUMERATED_ROOTS
                    )
                    if total > cap:
                        raise VerificationError(
                            f"{total} initial count vectors ({size} "
                            f"declared leader states) exceed the root "
                            f"budget of {cap}; pass leader_states or "
                            "lower the bound"
                        )
                    leader_states = sorted(
                        self.protocol.leader_state_space(), key=sort_key
                    )
            leader_idx = [self.leader_index(s) for s in leader_states]
            if not leader_idx:
                raise VerificationError("no leader states to initialize from")
            roots = np.zeros(
                (len(mobile_rows) * len(leader_idx), self.width),
                dtype=np.int32,
            )
            k = 0
            for mrow in mobile_rows:
                for li in leader_idx:
                    roots[k, : self.M] = mrow
                    roots[k, self.M] = li
                    k += 1
        if max_roots is not None and len(roots) > max_roots:
            raise VerificationError(
                f"{len(roots)} initial count vectors exceed the root "
                f"budget of {max_roots}"
            )
        return roots


def _multiset_count(m: int, n: int) -> int:
    """C(m + n - 1, n): multisets of size n over m states."""
    from math import comb

    return comb(m + n - 1, n)


# ----------------------------------------------------------------------
# Frontier fixpoint reachability
# ----------------------------------------------------------------------


@dataclass
class ReachSet:
    """The reachable fragment of the counts quotient.

    ``rows[k]`` is node ``k``'s count row; ``index`` maps packed rows to
    node ids.  ``pred``/``pred_rule`` form the BFS predecessor forest
    (roots carry ``-1``), from which :func:`path_to` extracts shortest
    witness paths.  When the reach ran with ``track_edges=True`` the
    full edge relation is kept for SCC/liveness analysis.
    """

    system: CountsSystem
    rows: list[np.ndarray]
    index: dict[bytes, int]
    n_roots: int
    pred: list[int]
    pred_rule: list[int]
    edges_src: list[int] | None = None
    edges_dst: list[int] | None = None
    edges_rule: list[int] | None = None

    @property
    def n_nodes(self) -> int:
        return len(self.rows)

    @property
    def n_edges(self) -> int:
        return len(self.edges_src) if self.edges_src is not None else 0

    def node_of(self, row: np.ndarray) -> int | None:
        """The node id of a count row, or ``None`` if unreachable."""
        return self.index.get(row.astype(np.int32).tobytes())

    def path_to(self, node: int) -> tuple[int, list[int]]:
        """(root node, rule ids) of the BFS path reaching ``node``."""
        rids: list[int] = []
        here = node
        while self.pred[here] >= 0:
            rids.append(self.pred_rule[here])
            here = self.pred[here]
        rids.reverse()
        return here, rids


#: Worker-side compiled mobile-mobile rule arrays, installed once per
#: worker by :func:`_reach_worker_init` so tasks carry only indices.
_REACH_RULES: tuple | None = None

#: Worker-side cached attachment to the current frontier block, keyed
#: by segment name: every task of one BFS level shares one frontier, so
#: the worker attaches once per level, not once per task.
_REACH_FRONTIER: tuple | None = None


def _reach_worker_init(mm_i, mm_j, mm_delta, mm_rid) -> None:
    """Process-pool initializer: install the system's mm-rule arrays."""
    global _REACH_RULES
    _REACH_RULES = (mm_i, mm_j, mm_delta, mm_rid)


def _reach_expand_tile(task: tuple) -> tuple:
    """Expand one (rule, frontier-tile) pair against the shared frontier.

    Reads rows ``[lo, hi)`` of the level's shared frontier block,
    applies rule ``t``'s guard mask and delta, and returns the matching
    frontier indices (global, i.e. offset by ``lo``) with their
    successor rows.  The returned arrays are small (only the rows the
    guard admits); the frontier itself never crosses the pipe.
    """
    meta, t, lo, hi = task
    global _REACH_FRONTIER
    from repro.engine.parallel import SharedBlock

    if _REACH_FRONTIER is None or _REACH_FRONTIER[0] != meta.name:
        if _REACH_FRONTIER is not None:
            _REACH_FRONTIER[1].close()
        _REACH_FRONTIER = (meta.name, SharedBlock.attach(meta))
    F = _REACH_FRONTIER[1].array
    mm_i, mm_j, mm_delta, mm_rid = _REACH_RULES
    tile = F[lo:hi]
    i = mm_i[t]
    j = mm_j[t]
    if i == j:
        mask = tile[:, i] >= 2
    else:
        mask = (tile[:, i] >= 1) & (tile[:, j] >= 1)
    src_local = np.nonzero(mask)[0]
    if not len(src_local):
        return t, lo, None, None
    succ = tile[src_local] + mm_delta[t]
    return t, lo, (src_local + lo).astype(np.int64), np.ascontiguousarray(succ)


#: Smallest ``frontier rows x mm rules`` product worth fanning a level
#: out to workers; below it the per-level dispatch overhead dominates.
_REACH_PARALLEL_MIN_WORK = 4096


class _ReachSharder:
    """Shared-memory fan-out of one reach call's frontier expansions.

    Owns a worker pool (created lazily, on the first level big enough
    to shard) whose workers hold the system's mm-rule arrays; per level
    it publishes the frontier block once over shared memory and
    partitions the ``rules x tiles`` grid across the workers.  Results
    come back merged **rule-major, tile-ascending** - exactly the order
    the serial loop generates batches in - so downstream dedup sees an
    identical stream and the resulting :class:`ReachSet` is
    bit-identical to serial.
    """

    def __init__(self, system: CountsSystem, n_jobs: int) -> None:
        self.system = system
        self.n_jobs = n_jobs
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                initializer=_reach_worker_init,
                initargs=(
                    self.system._mm_i,
                    self.system._mm_j,
                    self.system._mm_delta,
                    self.system._mm_rid,
                ),
            )
        return self._pool

    def expand_mm(self, F: np.ndarray) -> list[tuple]:
        """The level's mm-rule batches, sharded when big enough."""
        system = self.system
        n_rules = len(system._mm_rid)
        if len(F) * n_rules < _REACH_PARALLEL_MIN_WORK:
            return _expand_mm_serial(system, F)
        from repro.engine.parallel import SharedBlock

        pool = self._ensure_pool()
        block = SharedBlock.create(F.shape, str(F.dtype))
        try:
            block.array[:] = F
            tile = -(-len(F) // self.n_jobs)
            tasks = [
                (block.meta, t, lo, min(lo + tile, len(F)))
                for t in range(n_rules)
                for lo in range(0, len(F), tile)
            ]
            batches: list[tuple] = []
            for t, _lo, src_local, succ in pool.map(
                _reach_expand_tile,
                tasks,
                chunksize=max(1, len(tasks) // (self.n_jobs * 4)),
            ):
                if src_local is None:
                    continue
                rid = np.full(
                    len(src_local), system._mm_rid[t], dtype=np.int64
                )
                batches.append((src_local, succ, rid))
            return batches
        finally:
            block.close()
            block.unlink()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None


def _expand_mm_serial(system: CountsSystem, F: np.ndarray) -> list[tuple]:
    """Mobile-mobile rule batches over one frontier block, in rule order."""
    batches: list[tuple] = []
    for t in range(len(system._mm_rid)):
        i = system._mm_i[t]
        j = system._mm_j[t]
        if i == j:
            mask = F[:, i] >= 2
        else:
            mask = (F[:, i] >= 1) & (F[:, j] >= 1)
        src_local = np.nonzero(mask)[0]
        if not len(src_local):
            continue
        succ = F[src_local] + system._mm_delta[t]
        rid = np.full(len(src_local), system._mm_rid[t], dtype=np.int64)
        batches.append((src_local, succ, rid))
    return batches


def _expand_lm(system: CountsSystem, F: np.ndarray) -> list[tuple]:
    """Leader-mobile rule batches, bucketed by the frontier's leaders.

    Always runs in the parent: leader groups compile lazily against
    the live system, and the serial batch order (leader buckets after
    every mm rule) is part of the dedup contract.
    """
    batches: list[tuple] = []
    M = system.M
    lv = F[:, M]
    for li in np.unique(lv):
        sel = np.nonzero(lv == li)[0]
        group = system.leader_group(int(li))
        for g in range(len(group.rid)):
            mask = F[sel, group.s[g]] >= 1
            src_local = sel[mask]
            if not len(src_local):
                continue
            succ = F[src_local] + group.delta[g]
            succ[:, M] = group.post[g]
            rid = np.full(len(src_local), group.rid[g], dtype=np.int64)
            batches.append((src_local, succ, rid))
    return batches


def _merge_level(
    rs: ReachSet,
    frontier: list[int],
    batches: list[tuple],
    max_nodes: int,
    track_edges: bool,
) -> list[int]:
    """Vectorized packed-row dedup of one level's successor batches.

    Equivalent to the serial per-successor loop, occurrence for
    occurrence: rows are packed to fixed-width byte keys and
    deduplicated with :func:`numpy.unique` whose ``return_index`` gives
    each key's **first** occurrence - the same occurrence whose
    ``(src, rule)`` the serial loop records as the predecessor.  New
    nodes are appended in first-encounter order, so node ids, the
    predecessor forest, the edge stream and the ``max_nodes`` overflow
    point all come out identical to serial.
    """
    if not batches:
        return []
    src_all = np.concatenate([b[0] for b in batches])
    succ_all = np.ascontiguousarray(
        np.concatenate([b[1] for b in batches]), dtype=np.int32
    )
    rid_all = np.concatenate([b[2] for b in batches])
    frontier_arr = np.asarray(frontier, dtype=np.int64)
    src_nodes = frontier_arr[src_all]
    width = succ_all.shape[1]
    keys = succ_all.view(
        np.dtype((np.void, succ_all.dtype.itemsize * width))
    ).ravel()
    uniq, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    next_frontier: list[int] = []
    tgt_of_uniq = np.empty(len(uniq), dtype=np.int64)
    for u in np.argsort(first_idx, kind="stable"):
        key = uniq[u].tobytes()
        tgt = rs.index.get(key)
        if tgt is None:
            if len(rs.rows) >= max_nodes:
                raise VerificationError(
                    f"symbolic frontier exceeded {max_nodes} "
                    "nodes; use a smaller instance"
                )
            n = first_idx[u]
            tgt = len(rs.rows)
            rs.index[key] = tgt
            rs.rows.append(succ_all[n].copy())
            rs.pred.append(int(src_nodes[n]))
            rs.pred_rule.append(int(rid_all[n]))
            next_frontier.append(tgt)
        tgt_of_uniq[u] = tgt
    if track_edges:
        rs.edges_src.extend(src_nodes.tolist())
        rs.edges_dst.extend(tgt_of_uniq[inverse].tolist())
        rs.edges_rule.extend(rid_all.tolist())
    return next_frontier


def reach(
    system: CountsSystem,
    roots: np.ndarray,
    max_nodes: int = 2_000_000,
    track_edges: bool = False,
    n_jobs: int = 1,
) -> ReachSet:
    """Breadth-first frontier fixpoint over the counts quotient.

    Successors are generated rule-batched: each compiled rule applies
    its guard mask and delta row to the whole frontier block at once;
    only the per-successor dedup against the visited set runs at Python
    speed.  Raises :class:`VerificationError` when the reachable set
    exceeds ``max_nodes``.

    With ``n_jobs > 1`` (and working POSIX shared memory - otherwise a
    :class:`~repro.errors.BackendFallbackWarning` and the serial path)
    each level's mobile-mobile expansion fans out across worker
    processes: the frontier block ships once per level over shared
    memory, the ``rules x tiles`` grid is partitioned across workers,
    and the merged levels are deduplicated with a vectorized packed-row
    pass whose order reproduces the serial loop exactly - the returned
    :class:`ReachSet` is bit-identical either way.
    """
    rs = ReachSet(
        system=system,
        rows=[],
        index={},
        n_roots=0,
        pred=[],
        pred_rule=[],
        edges_src=[] if track_edges else None,
        edges_dst=[] if track_edges else None,
        edges_rule=[] if track_edges else None,
    )
    frontier: list[int] = []
    for row in np.asarray(roots, dtype=np.int32):
        key = row.tobytes()
        if key not in rs.index:
            node = len(rs.rows)
            rs.index[key] = node
            rs.rows.append(row.copy())
            rs.pred.append(-1)
            rs.pred_rule.append(-1)
            frontier.append(node)
    rs.n_roots = len(rs.rows)
    if not rs.rows:
        raise VerificationError("no initial count vectors supplied")

    sharder = None
    if n_jobs > 1:
        from repro.engine.fast import warn_fallback
        from repro.engine.parallel import shm_available

        available, reason = shm_available()
        if available:
            sharder = _ReachSharder(system, n_jobs)
        else:
            warn_fallback("check-parallel", "serial frontier", reason)
    try:
        while frontier:
            F = np.stack([rs.rows[k] for k in frontier])
            if sharder is not None:
                batches = sharder.expand_mm(F)
            else:
                batches = _expand_mm_serial(system, F)
            # Leader-mobile rules, bucketed by the frontier's leader
            # values - after every mm rule, as the dedup order requires.
            if system.has_leader:
                batches.extend(_expand_lm(system, F))
            if sharder is not None:
                frontier = _merge_level(
                    rs, frontier, batches, max_nodes, track_edges
                )
                continue
            next_frontier: list[int] = []
            for src_local, succ, rid in batches:
                for n in range(len(src_local)):
                    key = succ[n].tobytes()
                    src = frontier[src_local[n]]
                    tgt = rs.index.get(key)
                    if tgt is None:
                        if len(rs.rows) >= max_nodes:
                            raise VerificationError(
                                f"symbolic frontier exceeded {max_nodes} "
                                "nodes; use a smaller instance"
                            )
                        tgt = len(rs.rows)
                        rs.index[key] = tgt
                        rs.rows.append(succ[n].copy())
                        rs.pred.append(src)
                        rs.pred_rule.append(int(rid[n]))
                        next_frontier.append(tgt)
                    if track_edges:
                        rs.edges_src.append(src)
                        rs.edges_dst.append(tgt)
                        rs.edges_rule.append(int(rid[n]))
            frontier = next_frontier
        return rs
    finally:
        if sharder is not None:
            sharder.close()


# ----------------------------------------------------------------------
# Node-level predicates (vectorized)
# ----------------------------------------------------------------------


def node_matrix(rs: ReachSet) -> np.ndarray:
    """All reached count rows stacked as one matrix."""
    return np.stack(rs.rows)


def silent_mask(rs: ReachSet) -> np.ndarray:
    """Per-node: no non-null interaction is enabled (silence)."""
    system = rs.system
    N = node_matrix(rs)
    enabled = np.zeros(len(N), dtype=bool)
    for t in range(len(system._mm_rid)):
        i = system._mm_i[t]
        j = system._mm_j[t]
        if i == j:
            enabled |= N[:, i] >= 2
        else:
            enabled |= (N[:, i] >= 1) & (N[:, j] >= 1)
    if system.has_leader:
        lv = N[:, system.M]
        for li in np.unique(lv):
            sel = np.nonzero(lv == li)[0]
            group = system.leader_group(int(li))
            sub = np.zeros(len(sel), dtype=bool)
            for g in range(len(group.rid)):
                sub |= N[sel, group.s[g]] >= 1
            enabled[sel] |= sub
    return ~enabled


def duplicate_mask(rs: ReachSet) -> np.ndarray:
    """Per-node: two mobile agents share a projected name."""
    N = node_matrix(rs)
    name_counts = N[:, : rs.system.M] @ rs.system.name_matrix
    return (name_counts >= 2).any(axis=1)


# ----------------------------------------------------------------------
# SCC analysis over the packed graph
# ----------------------------------------------------------------------


def _adjacency(
    n_nodes: int, edges_src: Sequence[int], edges_dst: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated CSR adjacency (offsets, targets)."""
    if not len(edges_src):
        return np.zeros(n_nodes + 1, dtype=np.int64), np.zeros(
            0, dtype=np.int64
        )
    pairs = np.stack(
        [
            np.asarray(edges_src, dtype=np.int64),
            np.asarray(edges_dst, dtype=np.int64),
        ],
        axis=1,
    )
    pairs = np.unique(pairs, axis=0)
    offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.add.at(offsets, pairs[:, 0] + 1, 1)
    np.cumsum(offsets, out=offsets)
    return offsets, pairs[:, 1].copy()


def _int_sccs(
    n_nodes: int, offsets: np.ndarray, targets: np.ndarray
) -> list[list[int]]:
    """Iterative Tarjan over integer node ids with CSR adjacency."""
    index = np.full(n_nodes, -1, dtype=np.int64)
    lowlink = np.zeros(n_nodes, dtype=np.int64)
    on_stack = np.zeros(n_nodes, dtype=bool)
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    for root in range(n_nodes):
        if index[root] >= 0:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        work: list[list[int]] = [[root, int(offsets[root])]]
        while work:
            frame = work[-1]
            node = frame[0]
            advanced = False
            while frame[1] < offsets[node + 1]:
                succ = int(targets[frame[1]])
                frame[1] += 1
                if index[succ] < 0:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append([succ, int(offsets[succ])])
                    advanced = True
                    break
                if on_stack[succ]:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def symbolic_sccs(rs: ReachSet) -> list[list[int]]:
    """SCCs of the reached quotient (requires ``track_edges=True``)."""
    if rs.edges_src is None:
        raise VerificationError(
            "SCC analysis needs a reach with track_edges=True"
        )
    offsets, targets = _adjacency(rs.n_nodes, rs.edges_src, rs.edges_dst)
    return _int_sccs(rs.n_nodes, offsets, targets)


# ----------------------------------------------------------------------
# Witnesses: lifting quotient paths to replayable labelled schedules
# ----------------------------------------------------------------------


@dataclass
class SymbolicWitness:
    """A replayable counterexample extracted from the quotient.

    ``meetings`` is an explicit (initiator, responder) schedule from
    ``initial``; ``checkpoint`` is the index into ``meetings`` after
    which the execution first sits on the violating count vector
    (``violating_counts``); the remaining meetings (a quotient lasso or
    the fairness rounds of a liveness witness) demonstrate recurrence.
    :func:`replay_witness` re-executes the schedule on the reference
    simulator and re-checks the claimed violation.
    """

    kind: str
    initial: Configuration
    meetings: list[Meeting]
    checkpoint: int
    final: Configuration
    violating_counts: dict[str, int]
    description: str
    #: Liveness only: meeting-index boundaries of the fairness rounds.
    round_ends: list[int] = field(default_factory=list)


class _Lifter:
    """Realizes quotient rules as concrete agent meetings."""

    def __init__(
        self, system: CountsSystem, population: Population, config: Configuration
    ) -> None:
        self.system = system
        self.population = population
        self.config = config
        self.meetings: list[Meeting] = []

    def _agent_in(self, state: State, exclude: int = -1) -> int:
        for agent in range(self.population.n_mobile):
            if agent != exclude and self.config.state_of(agent) == state:
                return agent
        raise VerificationError(
            f"no mobile agent in state {state!r} to realize a rule"
        )

    def apply_rule(self, rule: SymbolicRule) -> None:
        """Pick agents matching the rule's reactants and interact them."""
        p, q = rule.before
        if rule.kind == "mm":
            x = self._agent_in(p)
            y = self._agent_in(q, exclude=x)
        elif is_leader_state(p):
            x = self.population.leader
            y = self._agent_in(q)
        else:
            x = self._agent_in(p)
            y = self.population.leader
        self.meet(x, y)

    def meet(self, initiator: int, responder: int) -> None:
        """Schedule one meeting (null or not) and apply its outcome."""
        p = self.config.state_of(initiator)
        q = self.config.state_of(responder)
        outcome = self.system.protocol.transition(p, q)
        self.meetings.append((initiator, responder))
        if outcome != (p, q):
            self.config = self.config.apply(initiator, responder, outcome)

    def quotient_node(self, rs: ReachSet) -> int:
        node = rs.node_of(self.system.encode(self.config))
        if node is None:
            raise VerificationError(
                "lifted execution left the reached quotient"
            )
        return node


def lift_path(
    rs: ReachSet, node: int, population: Population
) -> tuple[Configuration, list[Meeting], Configuration]:
    """Realize the BFS witness path to ``node`` as concrete meetings.

    Returns ``(initial, meetings, final)``; the final labelled
    configuration's counts equal ``rs.rows[node]``.
    """
    root, rids = rs.path_to(node)
    initial = rs.system.decode(rs.rows[root], population)
    lifter = _Lifter(rs.system, population, initial)
    for rid in rids:
        lifter.apply_rule(rs.system.rules[rid])
    if not np.array_equal(rs.system.encode(lifter.config), rs.rows[node]):
        raise VerificationError(
            "witness path lifting diverged from the quotient"
        )  # internal consistency; never expected
    return initial, lifter.meetings, lifter.config


def _quotient_bfs(
    rs: ReachSet,
    start: int,
    goal: Callable[[int], bool],
    members: set[int],
) -> list[int]:
    """Rule ids of a shortest in-``members`` path from ``start`` to a
    node satisfying ``goal`` (start included)."""
    if goal(start):
        return []
    seen = {start}
    queue: deque[tuple[int, list[int]]] = deque([(start, [])])
    while queue:
        node, path = queue.popleft()
        for tgt, rid in _enabled_rules(rs, node):
            if tgt not in members or tgt in seen:
                continue
            if goal(tgt):
                return path + [rid]
            seen.add(tgt)
            queue.append((tgt, path + [rid]))
    raise VerificationError("no in-component path to the requested node")


def _enabled_rules(rs: ReachSet, node: int) -> list[tuple[int, int]]:
    """(target node, rule id) for every rule enabled at ``node``."""
    system = rs.system
    row = rs.rows[node]
    out: list[tuple[int, int]] = []
    for t in range(len(system._mm_rid)):
        i = system._mm_i[t]
        j = system._mm_j[t]
        need = 2 if i == j else 1
        if row[i] < need or row[j] < 1:
            continue
        tgt = rs.node_of(row + system._mm_delta[t])
        if tgt is not None:
            out.append((tgt, int(system._mm_rid[t])))
    if system.has_leader:
        group = system.leader_group(int(row[system.M]))
        for g in range(len(group.rid)):
            if row[group.s[g]] < 1:
                continue
            succ = row + group.delta[g]
            succ[system.M] = group.post[g]
            tgt = rs.node_of(succ)
            if tgt is not None:
                out.append((tgt, int(group.rid[g])))
    return out


def replay_witness(
    protocol: PopulationProtocol,
    population: Population,
    witness: SymbolicWitness,
    name_of: Callable[[State], object] | None = None,
) -> bool:
    """Replay a witness schedule through the reference simulator and
    re-check its claims.

    The schedule runs on :class:`~repro.engine.simulator.Simulator` with
    a :class:`~repro.schedulers.adversarial.FixedSequenceScheduler`, so
    the counterexample is validated against the same engine the
    experiments use, not against this module's own arithmetic.
    """
    from repro.engine.simulator import Simulator
    from repro.schedulers.adversarial import FixedSequenceScheduler

    project = name_of if name_of is not None else lambda s: s
    if not witness.meetings:
        # A root is itself the violation; nothing to schedule.
        return _witness_claims_hold(
            protocol, witness, witness.initial, project
        )
    scheduler = FixedSequenceScheduler(population, witness.meetings)
    simulator = Simulator(protocol, population, scheduler, problem=None)
    result = simulator.run(
        witness.initial, max_interactions=len(witness.meetings)
    )
    final = result.final_configuration
    if final != witness.final:
        return False
    return _witness_claims_hold(protocol, witness, final, project)


def _witness_claims_hold(
    protocol: PopulationProtocol,
    witness: SymbolicWitness,
    final: Configuration,
    project: Callable[[State], object],
) -> bool:
    """Re-derive the violation claims on the replayed configuration."""

    def names(config: Configuration) -> tuple:
        return tuple(project(s) for s in config.mobile_states)

    def has_duplicates(config: Configuration) -> bool:
        ns = names(config)
        return len(set(ns)) != len(ns)

    # Re-walk the schedule with bare transition applications to inspect
    # the checkpoint configuration and the per-round behavior.
    config = witness.initial
    checkpoint_config = config if witness.checkpoint == 0 else None
    changed_after = False
    round_pairs: set[frozenset] = set()
    round_changed = False
    rounds_ok = True
    round_ends = list(witness.round_ends)
    for k, (x, y) in enumerate(witness.meetings):
        p, q = config.state_of(x), config.state_of(y)
        outcome = protocol.transition(p, q)
        if outcome != (p, q):
            before = names(config)
            config = config.apply(x, y, outcome)
            if k >= witness.checkpoint and names(config) != before:
                changed_after = True
                round_changed = True
        if k >= witness.checkpoint:
            round_pairs.add(frozenset((x, y)))
        if round_ends and k == round_ends[0] - 1:
            round_ends.pop(0)
            all_pairs = {
                frozenset(p)
                for p in Population(
                    len(witness.initial.mobile_states),
                    witness.initial.has_leader,
                ).unordered_pairs()
            }
            if round_pairs < all_pairs:
                rounds_ok = False
            if witness.kind == "weak-livelock" and not round_changed:
                rounds_ok = False
            round_pairs = set()
            round_changed = False
        if k + 1 == witness.checkpoint:
            checkpoint_config = config
    if checkpoint_config is None:
        checkpoint_config = config
    if config != final:
        return False

    kind = witness.kind
    if kind == "silent-duplicates":
        return is_silent(protocol, final) and has_duplicates(final)
    if kind in ("sink-livelock", "sink-duplicates"):
        # The lasso must return to the checkpoint's equivalence class
        # (same mobile multiset and leader state - the quotient node).
        same_class = checkpoint_config.is_equivalent(final)
        if kind == "sink-livelock":
            return same_class and changed_after
        return has_duplicates(checkpoint_config) and not changed_after
    if kind in ("weak-livelock", "weak-duplicates"):
        if not rounds_ok:
            return False
        if kind == "weak-livelock":
            return changed_after
        return not changed_after and has_duplicates(final)
    return False


# ----------------------------------------------------------------------
# Weak-fairness liveness on the fiber of a candidate SCC
# ----------------------------------------------------------------------


def _fiber_assignments(
    system: CountsSystem, row: np.ndarray, population: Population
) -> list[Configuration]:
    """All labelled configurations whose counts vector is ``row``."""
    states: list[State] = []
    for i, s in enumerate(system.mobile):
        states.extend([s] * int(row[i]))
    leader = (
        system.leader_state(int(row[system.M]))
        if system.has_leader
        else None
    )
    seen: set[tuple] = set()
    out: list[Configuration] = []
    for perm in permutations(states):
        if perm in seen:
            continue
        seen.add(perm)
        out.append(
            Configuration.from_states(population, list(perm), leader)
        )
    return out


@dataclass
class _FiberGraph:
    """The labelled meeting graph over one quotient SCC's fiber.

    Keys are full labelled state tuples (``Configuration.states``);
    edges keep only meetings whose outcome stays over the SCC, which is
    exactly the subgraph a weakly fair execution confined to the SCC can
    use.
    """

    configs: dict  # key -> Configuration
    nulls: dict  # key -> set of frozenset agent pairs with a null meeting
    edges: dict  # key -> list of (target key, x, y, changes_name)
    components: list  # list of key lists (labelled SCCs)
    comp_of: dict  # key -> component index
    kinds: dict  # component index -> "weak-livelock" | "weak-duplicates"


def _fiber_graph(
    rs: ReachSet,
    comp: list[int],
    population: Population,
    max_fiber: int,
) -> _FiberGraph:
    """Expand one candidate quotient SCC into its labelled fiber and run
    the exact weak-fairness SCC + pair-coverage analysis on it."""
    from repro.analysis.quotient import _tarjan

    system = rs.system
    protocol = system.protocol
    project = system.project
    comp_set = set(comp)
    configs: dict = {}
    for node in comp:
        for cfg in _fiber_assignments(system, rs.rows[node], population):
            configs[cfg.states] = cfg
        if len(configs) > max_fiber:
            raise VerificationError(
                f"{protocol.display_name}: labelled fiber of a candidate "
                f"component exceeded {max_fiber} configurations; use a "
                "smaller population or raise max_fiber"
            )
    nulls: dict = {key: set() for key in configs}
    edges: dict = {key: [] for key in configs}
    for key, cfg in configs.items():
        names = tuple(project(s) for s in cfg.mobile_states)
        for x, y in population.ordered_pairs():
            p, q = cfg.state_of(x), cfg.state_of(y)
            outcome = protocol.transition(p, q)
            if outcome == (p, q):
                nulls[key].add(frozenset((x, y)))
                continue
            after = cfg.apply(x, y, outcome)
            if rs.node_of(system.encode(after)) not in comp_set:
                continue
            after_names = tuple(
                project(s) for s in after.mobile_states
            )
            edges[key].append(
                (after.states, x, y, after_names != names)
            )

    def successors(key: tuple) -> list[tuple]:
        return [tkey for tkey, _, _, _ in edges[key]]

    components = _tarjan(list(configs), successors)
    comp_of = {
        key: cid
        for cid, members in enumerate(components)
        for key in members
    }
    all_pairs = {frozenset(p) for p in population.unordered_pairs()}
    kinds: dict = {}
    for cid, members in enumerate(components):
        member_set = set(members)
        covered: set = set()
        changes = False
        for key in members:
            covered |= nulls[key]
            for tkey, x, y, chg in edges[key]:
                if tkey in member_set:
                    covered.add(frozenset((x, y)))
                    changes = changes or chg
        if covered != all_pairs:
            continue  # no weakly fair execution can live here
        if changes:
            kinds[cid] = "weak-livelock"
        else:
            rep = configs[members[0]]
            names = [project(s) for s in rep.mobile_states]
            if len(set(names)) != len(names):
                kinds[cid] = "weak-duplicates"
    return _FiberGraph(configs, nulls, edges, components, comp_of, kinds)


# ----------------------------------------------------------------------
# Property checkers
# ----------------------------------------------------------------------

#: The properties ``repro check`` understands.
PROPERTIES: tuple[str, ...] = ("reach", "sinks", "liveness")


@dataclass
class SymbolicVerdict:
    """Outcome of one symbolic property check."""

    prop: str
    holds: bool
    protocol: str
    n_mobile: int
    explored: int
    edges: int
    reason: str = ""
    witness: SymbolicWitness | None = None
    #: ``True`` when the witness replayed successfully on the reference
    #: simulator; ``None`` for PASS verdicts (nothing to replay).
    replay_validated: bool | None = None
    details: dict = field(default_factory=dict)

    def render(self) -> str:
        """One-line summary for the CLI."""
        status = "PASS" if self.holds else "FAIL"
        line = (
            f"{status}: {self.prop}: {self.protocol} (N={self.n_mobile}): "
            f"{self.explored} quotient nodes"
        )
        if self.edges:
            line += f", {self.edges} edges"
        if self.reason:
            line += f": {self.reason}"
        if self.replay_validated:
            line += " [witness replayed on the reference simulator]"
        return line


def _finish_fail(
    verdict: SymbolicVerdict,
    protocol: PopulationProtocol,
    population: Population,
    name_of: Callable[[State], object] | None,
    validate: bool,
) -> SymbolicVerdict:
    """Replay-validate a FAIL verdict's witness before reporting it."""
    if validate and verdict.witness is not None:
        ok = replay_witness(protocol, population, verdict.witness, name_of)
        if not ok:
            raise VerificationError(
                f"{protocol.display_name}: symbolic {verdict.prop} "
                "counterexample failed replay validation on the "
                "reference simulator"
            )
        verdict.replay_validated = True
    return verdict


def check_reach(
    protocol: PopulationProtocol,
    n_mobile: int,
    mobile_mode: str = "auto",
    leader_states: Iterable[State] | None = None,
    max_nodes: int = 2_000_000,
    max_roots: int | None = None,
    name_of: Callable[[State], object] | None = None,
    validate: bool = True,
    n_jobs: int = 1,
) -> SymbolicVerdict:
    """Naming-on-silence as a frontier-intersection query.

    Silence is terminal, so a reachable silent configuration with
    duplicate projected names refutes naming under *every* fairness
    notion.  Exact on the quotient.  ``n_jobs > 1`` shards the frontier
    expansion over worker processes (verdict-identical; see
    :func:`reach`).
    """
    system = CountsSystem(protocol, name_of)
    population = Population(n_mobile, protocol.requires_leader)
    roots = system.root_matrix(
        n_mobile, mobile_mode, leader_states, max_roots
    )
    rs = reach(system, roots, max_nodes=max_nodes, n_jobs=n_jobs)
    violating = np.nonzero(silent_mask(rs) & duplicate_mask(rs))[0]
    if not len(violating):
        return SymbolicVerdict(
            prop="reach",
            holds=True,
            protocol=protocol.display_name,
            n_mobile=n_mobile,
            explored=rs.n_nodes,
            edges=0,
            reason="every reachable silent configuration is duplicate-free",
            details={"roots": int(rs.n_roots)},
        )
    node = int(violating[0])
    initial, meetings, final = lift_path(rs, node, population)
    witness = SymbolicWitness(
        kind="silent-duplicates",
        initial=initial,
        meetings=meetings,
        checkpoint=len(meetings),
        final=final,
        violating_counts=system.count_summary(rs.rows[node]),
        description=(
            "a reachable silent configuration carries duplicate names; "
            "silence is terminal, so naming can never be solved from it"
        ),
    )
    verdict = SymbolicVerdict(
        prop="reach",
        holds=False,
        protocol=protocol.display_name,
        n_mobile=n_mobile,
        explored=rs.n_nodes,
        edges=0,
        reason=witness.description,
        witness=witness,
        details={
            "roots": int(rs.n_roots),
            "violating_silent_nodes": int(len(violating)),
        },
    )
    return _finish_fail(verdict, protocol, population, name_of, validate)


def check_sinks(
    protocol: PopulationProtocol,
    n_mobile: int,
    mobile_mode: str = "auto",
    leader_states: Iterable[State] | None = None,
    max_nodes: int = 2_000_000,
    max_roots: int | None = None,
    name_of: Callable[[State], object] | None = None,
    validate: bool = True,
    n_jobs: int = 1,
) -> SymbolicVerdict:
    """Sink-SCC naming discipline on the quotient.

    Exactly the global-fairness naming condition: every reachable sink
    SCC must be free of name-changing internal edges (livelock) and
    consist of duplicate-free name vectors.  For symmetric protocols the
    details also record the Proposition 6 state-level unique-sink audit.
    ``n_jobs > 1`` shards the frontier expansion (verdict-identical).
    """
    system = CountsSystem(protocol, name_of)
    population = Population(n_mobile, protocol.requires_leader)
    roots = system.root_matrix(
        n_mobile, mobile_mode, leader_states, max_roots
    )
    rs = reach(
        system, roots, max_nodes=max_nodes, track_edges=True, n_jobs=n_jobs
    )
    components = symbolic_sccs(rs)
    comp_of = np.zeros(rs.n_nodes, dtype=np.int64)
    for cid, comp in enumerate(components):
        for node in comp:
            comp_of[node] = cid
    src = np.asarray(rs.edges_src, dtype=np.int64)
    dst = np.asarray(rs.edges_dst, dtype=np.int64)
    rid = np.asarray(rs.edges_rule, dtype=np.int64)
    changes = np.asarray(
        [r.changes_name for r in system.rules], dtype=bool
    )
    n_comps = len(components)
    leaves = np.zeros(n_comps, dtype=bool)
    livelock = np.zeros(n_comps, dtype=bool)
    if len(src):
        internal = comp_of[src] == comp_of[dst]
        np.logical_or.at(leaves, comp_of[src[~internal]], True)
        live = internal & changes[rid]
        np.logical_or.at(livelock, comp_of[src[live]], True)
    dup = duplicate_mask(rs)

    details: dict = {"roots": int(rs.n_roots), "sink_sccs": 0}
    if protocol.symmetric:
        from repro.analysis.sink import unique_sink

        try:
            details["unique_sink"] = repr(unique_sink(protocol))
        except VerificationError as exc:
            details["unique_sink_violation"] = str(exc)

    for cid, comp in enumerate(components):
        if leaves[cid]:
            continue
        details["sink_sccs"] += 1
        if livelock[cid]:
            witness = _sink_lasso_witness(
                rs, comp, comp_of, population, src, dst, rid, changes
            )
            verdict = SymbolicVerdict(
                prop="sinks",
                holds=False,
                protocol=protocol.display_name,
                n_mobile=n_mobile,
                explored=rs.n_nodes,
                edges=rs.n_edges,
                reason=(
                    "a fair execution ends in a recurrent component "
                    "where mobile names keep changing (names never "
                    "stabilize)"
                ),
                witness=witness,
                details=details,
            )
            return _finish_fail(
                verdict, protocol, population, name_of, validate
            )
        if dup[comp[0]]:
            node = comp[0]
            initial, meetings, final = lift_path(rs, node, population)
            witness = SymbolicWitness(
                kind="sink-duplicates",
                initial=initial,
                meetings=meetings,
                checkpoint=len(meetings),
                final=final,
                violating_counts=system.count_summary(rs.rows[node]),
                description=(
                    "a fair execution stabilizes in a sink component "
                    "with duplicate names"
                ),
            )
            verdict = SymbolicVerdict(
                prop="sinks",
                holds=False,
                protocol=protocol.display_name,
                n_mobile=n_mobile,
                explored=rs.n_nodes,
                edges=rs.n_edges,
                reason=witness.description,
                witness=witness,
                details=details,
            )
            return _finish_fail(
                verdict, protocol, population, name_of, validate
            )
    return SymbolicVerdict(
        prop="sinks",
        holds=True,
        protocol=protocol.display_name,
        n_mobile=n_mobile,
        explored=rs.n_nodes,
        edges=rs.n_edges,
        reason=(
            f"{details['sink_sccs']} sink component(s), all "
            "name-constant with distinct names"
        ),
        details=details,
    )


def _sink_lasso_witness(
    rs: ReachSet,
    comp: list[int],
    comp_of: np.ndarray,
    population: Population,
    src: np.ndarray,
    dst: np.ndarray,
    rid: np.ndarray,
    changes: np.ndarray,
) -> SymbolicWitness:
    """Prefix to a sink component + an internal lasso through a
    name-changing edge, realized as concrete meetings."""
    system = rs.system
    members = set(comp)
    cid = comp_of[comp[0]]
    live = np.nonzero(
        (comp_of[src] == cid) & (comp_of[dst] == cid) & changes[rid]
    )[0][0]
    u, v, change_rid = int(src[live]), int(dst[live]), int(rid[live])
    anchor = comp[0]
    initial, prefix, config = lift_path(rs, anchor, population)
    lifter = _Lifter(system, population, config)
    for step in _quotient_bfs(rs, anchor, lambda n: n == u, members):
        lifter.apply_rule(system.rules[step])
    lifter.apply_rule(system.rules[change_rid])
    for step in _quotient_bfs(rs, v, lambda n: n == anchor, members):
        lifter.apply_rule(system.rules[step])
    return SymbolicWitness(
        kind="sink-livelock",
        initial=initial,
        meetings=prefix + lifter.meetings,
        checkpoint=len(prefix),
        final=lifter.config,
        violating_counts=system.count_summary(rs.rows[anchor]),
        description=(
            "a lasso inside a sink component changes mobile names and "
            "returns to its anchor configuration class"
        ),
    )


def check_liveness(
    protocol: PopulationProtocol,
    n_mobile: int,
    mobile_mode: str = "auto",
    leader_states: Iterable[State] | None = None,
    max_nodes: int = 2_000_000,
    max_roots: int | None = None,
    name_of: Callable[[State], object] | None = None,
    validate: bool = True,
    rounds: int = 2,
    max_fiber: int = 200_000,
    n_jobs: int = 1,
) -> SymbolicVerdict:
    """Weak-fairness naming via candidate-SCC fiber expansion.

    The quotient frontier filters the reachable space down to candidate
    SCCs (internal name-changing edge or duplicate-name member); only
    those fibers are expanded for the exact labelled SCC +
    pair-coverage characterization, so the verdict matches
    :func:`repro.analysis.weak_fairness.check_naming_weak` while the
    exploration scales with the quotient.  FAIL verdicts come with a
    constructive weakly fair schedule (every agent pair meets every
    round), replay-validated on the reference simulator.
    """
    system = CountsSystem(protocol, name_of)
    population = Population(n_mobile, protocol.requires_leader)
    roots = system.root_matrix(
        n_mobile, mobile_mode, leader_states, max_roots
    )
    rs = reach(
        system, roots, max_nodes=max_nodes, track_edges=True, n_jobs=n_jobs
    )
    components = symbolic_sccs(rs)
    comp_of = np.zeros(rs.n_nodes, dtype=np.int64)
    for cid, comp in enumerate(components):
        for node in comp:
            comp_of[node] = cid
    src = np.asarray(rs.edges_src, dtype=np.int64)
    dst = np.asarray(rs.edges_dst, dtype=np.int64)
    rid = np.asarray(rs.edges_rule, dtype=np.int64)
    changes = np.asarray(
        [r.changes_name for r in system.rules], dtype=bool
    )
    dup = duplicate_mask(rs)
    n_comps = len(components)
    candidate = np.zeros(n_comps, dtype=bool)
    np.logical_or.at(candidate, comp_of, dup)
    if len(src):
        internal = (comp_of[src] == comp_of[dst]) & changes[rid]
        np.logical_or.at(candidate, comp_of[src[internal]], True)

    candidates_checked = 0
    for cid, comp in enumerate(components):
        if not candidate[cid]:
            continue
        candidates_checked += 1
        fiber = _fiber_graph(rs, comp, population, max_fiber)
        if not fiber.kinds:
            continue
        vcid = min(fiber.kinds)
        kind = fiber.kinds[vcid]
        witness = _liveness_witness(
            rs, fiber, vcid, population, rounds
        )
        verdict = SymbolicVerdict(
            prop="liveness",
            holds=False,
            protocol=protocol.display_name,
            n_mobile=n_mobile,
            explored=rs.n_nodes,
            edges=rs.n_edges,
            reason=(
                "a weakly fair execution can change mobile names "
                "forever while meeting every pair (livelock)"
                if kind == "weak-livelock"
                else "a weakly fair execution can stay at duplicate "
                "names forever"
            ),
            witness=witness,
            details={
                "roots": int(rs.n_roots),
                "component_size": len(fiber.components[vcid]),
            },
        )
        return _finish_fail(
            verdict, protocol, population, name_of, validate
        )
    return SymbolicVerdict(
        prop="liveness",
        holds=True,
        protocol=protocol.display_name,
        n_mobile=n_mobile,
        explored=rs.n_nodes,
        edges=rs.n_edges,
        reason=(
            "no reachable component admits a weakly fair livelock or "
            "duplicate-name parking"
        ),
        details={
            "roots": int(rs.n_roots),
            "candidates_checked": candidates_checked,
        },
    )


def _liveness_witness(
    rs: ReachSet,
    fiber: _FiberGraph,
    vcid: int,
    population: Population,
    rounds: int,
) -> SymbolicWitness:
    """A concrete weakly fair schedule inside a violating labelled
    component.

    The quotient prefix is lifted to a concrete configuration; by agent
    anonymity its labelled component is a permutation image of the
    violating one, so the analysis kinds carry over.  Each fairness
    round meets every unordered pair once - in place when the meeting
    is null or internal, else after a BFS walk to a configuration where
    it is - and livelock rounds weave in one name-changing edge.
    """
    system = rs.system
    project = system.project

    # Re-anchor onto the component containing the lifted entry config.
    entry_node = rs.node_of(
        system.encode(fiber.configs[fiber.components[vcid][0]])
    )
    initial, prefix, config = lift_path(rs, entry_node, population)
    acid = fiber.comp_of[config.states]
    kind = fiber.kinds.get(acid)
    if kind is None:
        raise VerificationError(
            "fiber component lost its violation under re-anchoring"
        )  # internal consistency; never expected
    members = set(fiber.components[acid])

    def names(cfg: Configuration) -> tuple:
        return tuple(project(s) for s in cfg.mobile_states)

    def internal_meetings(key: tuple) -> list[tuple]:
        return [
            (tkey, x, y, chg)
            for tkey, x, y, chg in fiber.edges[key]
            if tkey in members
        ]

    def walk_to(cfg: Configuration, good) -> tuple[Configuration, list]:
        """BFS inside the component to a config satisfying ``good``."""
        if good(cfg.states):
            return cfg, []
        seen = {cfg.states}
        queue = deque([(cfg, [])])
        while queue:
            cur, path = queue.popleft()
            for tkey, x, y, _ in internal_meetings(cur.states):
                if tkey in seen:
                    continue
                seen.add(tkey)
                nxt = cur.apply(
                    x, y, _meeting_outcome(system, cur, x, y)
                )
                step = path + [(x, y)]
                if good(tkey):
                    return nxt, step
                queue.append((nxt, step))
        raise VerificationError(
            "no in-component configuration satisfies the scheduling goal"
        )  # internal consistency; never expected

    meetings: list[Meeting] = []
    round_ends: list[int] = []
    for _ in range(rounds):
        round_changed = False
        for pair in sorted(
            tuple(sorted(p)) for p in population.unordered_pairs()
        ):
            fpair = frozenset(pair)

            def safe_here(key: tuple) -> bool:
                if fpair in fiber.nulls[key]:
                    return True
                return any(
                    frozenset((x, y)) == fpair
                    for _, x, y, _ in internal_meetings(key)
                )

            prev = config
            config, walk = walk_to(config, safe_here)
            for x, y in walk:
                before_walk = names(prev)
                prev = prev.apply(
                    x, y, _meeting_outcome(system, prev, x, y)
                )
                if names(prev) != before_walk:
                    round_changed = True
            meetings.extend(walk)
            before = names(config)
            config, step = _meet_pair(
                system, fiber, members, config, fpair
            )
            meetings.append(step)
            if names(config) != before:
                round_changed = True
        if kind == "weak-livelock" and not round_changed:

            def has_change(key: tuple) -> bool:
                return any(
                    chg for _, _, _, chg in internal_meetings(key)
                )

            config, walk = walk_to(config, has_change)
            meetings.extend(walk)
            for tkey, x, y, chg in internal_meetings(config.states):
                if chg:
                    config = config.apply(
                        x, y, _meeting_outcome(system, config, x, y)
                    )
                    meetings.append((x, y))
                    break
        round_ends.append(len(prefix) + len(meetings))
    rep_node = rs.node_of(system.encode(config))
    return SymbolicWitness(
        kind=kind,
        initial=initial,
        meetings=prefix + meetings,
        checkpoint=len(prefix),
        final=config,
        violating_counts=system.count_summary(rs.rows[rep_node]),
        description=(
            "a weakly fair schedule (every pair meets every round) that "
            + (
                "changes mobile names on every round"
                if kind == "weak-livelock"
                else "stays on duplicate names forever"
            )
        ),
        round_ends=round_ends,
    )


def _meeting_outcome(
    system: CountsSystem, cfg: Configuration, x: int, y: int
) -> tuple[State, State]:
    return system.protocol.transition(cfg.state_of(x), cfg.state_of(y))


def _meet_pair(
    system: CountsSystem,
    fiber: _FiberGraph,
    members: set,
    config: Configuration,
    fpair: frozenset,
) -> tuple[Configuration, Meeting]:
    """Meet one unordered pair at ``config`` via a null meeting or an
    in-component edge (the caller guarantees one exists)."""
    x, y = sorted(fpair)
    if fpair in fiber.nulls[config.states]:
        for initiator, responder in ((x, y), (y, x)):
            p = config.state_of(initiator)
            q = config.state_of(responder)
            if system.protocol.transition(p, q) == (p, q):
                return config, (initiator, responder)
    for tkey, a, b, _ in fiber.edges[config.states]:
        if frozenset((a, b)) == fpair and tkey in members:
            outcome = _meeting_outcome(system, config, a, b)
            return config.apply(a, b, outcome), (a, b)
    raise VerificationError(
        "pair has no safe meeting at the scheduled configuration"
    )  # internal consistency; never expected


_CHECKERS: dict[str, Callable[..., SymbolicVerdict]] = {
    "reach": check_reach,
    "sinks": check_sinks,
    "liveness": check_liveness,
}


def check_property(
    protocol: PopulationProtocol,
    prop: str,
    n_mobile: int,
    **kwargs,
) -> SymbolicVerdict:
    """Dispatch to :func:`check_reach` / :func:`check_sinks` /
    :func:`check_liveness` by property name."""
    checker = _CHECKERS.get(prop)
    if checker is None:
        known = ", ".join(PROPERTIES)
        raise ValueError(f"unknown property {prop!r}; known: {known}")
    return checker(protocol, n_mobile, **kwargs)
