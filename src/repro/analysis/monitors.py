"""Runtime invariant monitors.

The proofs rest on run-time invariants (the Prop. 12 potential strictly
decreases; Protocol 1's guess never decreases nor overshoots).  These
monitors plug into the simulator's observer hook and raise the moment an
invariant breaks, turning every simulation - including the randomized,
fault-injected ones - into a continuous check of the proof obligations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.potential import potential
from repro.engine.configuration import Configuration
from repro.errors import VerificationError


class InvariantViolation(VerificationError):
    """A monitored run-time invariant broke."""


@dataclass
class PotentialMonitor:
    """Asserts the Prop. 12 potential strictly decreases on every change.

    Attach to simulations of :class:`AsymmetricNamingProtocol`; any
    non-null interaction there changes mobile states, so every observer
    call must see a strictly smaller potential.
    """

    bound: int
    last: tuple[int, int] | None = None
    observations: int = 0

    def __call__(self, interaction: int, config: Configuration) -> None:
        current = potential(config.mobile_states, self.bound)
        if self.last is not None and current >= self.last:
            raise InvariantViolation(
                f"potential did not decrease at interaction {interaction}: "
                f"{self.last} -> {current}"
            )
        self.last = current
        self.observations += 1


@dataclass
class CountMonitor:
    """Asserts Protocol 1's guess is monotone and bounded by the true
    population size (Theorem 15's run-time shape)."""

    true_size: int
    last: int = 0
    observations: int = 0

    def __call__(self, interaction: int, config: Configuration) -> None:
        guess = (
            getattr(config.leader_state, "n", None)
            if config.has_leader
            else None
        )
        if guess is None:
            raise InvariantViolation(
                "CountMonitor attached to a protocol without a count"
            )
        if guess < self.last:
            raise InvariantViolation(
                f"guess decreased at interaction {interaction}: "
                f"{self.last} -> {guess}"
            )
        if guess > self.true_size:
            raise InvariantViolation(
                f"guess overshot the population at interaction "
                f"{interaction}: {guess} > {self.true_size}"
            )
        self.last = guess
        self.observations += 1


@dataclass
class StateSpaceMonitor:
    """Asserts every agent stays inside the protocol's declared spaces -
    the run-time face of :func:`repro.engine.protocol.verify_closure`."""

    mobile_space: frozenset
    leader_space: frozenset
    observations: int = 0

    def __call__(self, interaction: int, config: Configuration) -> None:
        for state in config.mobile_states:
            if state not in self.mobile_space:
                raise InvariantViolation(
                    f"mobile state {state!r} escaped the declared space "
                    f"at interaction {interaction}"
                )
        if config.has_leader and config.leader_state not in self.leader_space:
            raise InvariantViolation(
                f"leader state {config.leader_state!r} escaped the "
                f"declared space at interaction {interaction}"
            )
        self.observations += 1


@dataclass
class CompositeMonitor:
    """Run several monitors off one observer hook."""

    monitors: list = field(default_factory=list)

    def __call__(self, interaction: int, config: Configuration) -> None:
        for monitor in self.monitors:
            monitor(interaction, config)
