"""Parallel-time analysis of executions.

"In a real distributed execution, interactions of distinct agents are
independent and could take place simultaneously" (paper, Section 2): a
serialized trace therefore over-counts wall-clock time.  This module packs
a trace's interactions greedily into *rounds* of pairwise-disjoint
meetings - the standard parallel-time reading - and reports both the round
count and the common normalization ``interactions / N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.population import AgentId
from repro.engine.trace import InteractionRecord


@dataclass(frozen=True)
class ParallelismReport:
    """Parallel-time summary of a trace."""

    interactions: int
    rounds: int
    n_agents: int

    @property
    def normalized_time(self) -> float:
        """The literature's parallel time: interactions / agents."""
        if self.n_agents == 0:
            return 0.0
        return self.interactions / self.n_agents

    @property
    def speedup(self) -> float:
        """Serialized interactions per greedy parallel round."""
        if self.rounds == 0:
            return 0.0
        return self.interactions / self.rounds


def greedy_rounds(
    meetings: list[tuple[AgentId, AgentId]],
) -> list[list[tuple[AgentId, AgentId]]]:
    """Pack an ordered meeting sequence into rounds of disjoint pairs.

    Greedy and order-respecting: a meeting goes into the current round
    unless it shares an agent with one already there (dependencies between
    meetings of the *same* agent must stay ordered, so reordering across
    a conflict is not allowed).
    """
    rounds: list[list[tuple[AgentId, AgentId]]] = []
    busy: set[AgentId] = set()
    current: list[tuple[AgentId, AgentId]] = []
    for x, y in meetings:
        if x in busy or y in busy:
            rounds.append(current)
            current = []
            busy = set()
        current.append((x, y))
        busy.update((x, y))
    if current:
        rounds.append(current)
    return rounds


def analyze_trace(
    records: list[InteractionRecord], n_agents: int
) -> ParallelismReport:
    """Parallel-time report for a recorded trace (non-null meetings)."""
    meetings = [
        (r.initiator, r.responder) for r in records if not r.is_null
    ]
    return ParallelismReport(
        interactions=len(meetings),
        rounds=len(greedy_rounds(meetings)),
        n_agents=n_agents,
    )
