"""Fairness auditing of finite schedules.

Fairness is a property of infinite executions, so no finite run can prove
it - but a finite prefix can be *audited*: how often did each pair meet,
what was the largest gap between consecutive meetings of the same pair,
did any pair starve relative to a window?  The audit quantifies how
"fair" each scheduler's finite behaviour actually is, and the test suite
uses it to validate the schedulers' advertised guarantees empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.population import AgentId, Population
from repro.errors import VerificationError

#: An unordered agent pair key.
PairKey = frozenset


@dataclass
class FairnessAudit:
    """Meeting statistics of a finite schedule."""

    population: Population
    meetings: int = 0
    counts: dict[PairKey, int] = field(default_factory=dict)
    last_seen: dict[PairKey, int] = field(default_factory=dict)
    max_gap: dict[PairKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pair in self.population.unordered_pairs():
            key = frozenset(pair)
            self.counts[key] = 0
            self.last_seen[key] = -1
            self.max_gap[key] = 0

    def observe(self, initiator: AgentId, responder: AgentId) -> None:
        """Record one meeting."""
        key = frozenset((initiator, responder))
        if key not in self.counts:
            raise VerificationError(
                f"({initiator}, {responder}) is not an agent pair of this "
                "population"
            )
        gap = self.meetings - self.last_seen[key]
        self.max_gap[key] = max(self.max_gap[key], gap)
        self.last_seen[key] = self.meetings
        self.counts[key] += 1
        self.meetings += 1

    def finish(self) -> None:
        """Close the audit window: trailing gaps count too."""
        for key in self.counts:
            gap = self.meetings - self.last_seen[key]
            self.max_gap[key] = max(self.max_gap[key], gap)

    # -- queries ---------------------------------------------------------

    def starving_pairs(self) -> list[PairKey]:
        """Pairs that never met during the audit."""
        return [key for key, count in self.counts.items() if count == 0]

    def min_meetings(self) -> int:
        """The least-met pair's meeting count."""
        return min(self.counts.values())

    def worst_gap(self) -> int:
        """The largest observed gap between consecutive meetings of any
        pair (window-closure included after :meth:`finish`)."""
        return max(self.max_gap.values())

    def imbalance(self) -> float:
        """Max/min meeting-count ratio (1.0 = perfectly balanced)."""
        low = self.min_meetings()
        if low == 0:
            return float("inf")
        return max(self.counts.values()) / low


def audit_scheduler(
    scheduler,
    config,
    meetings: int,
) -> FairnessAudit:
    """Drive a scheduler for a fixed number of proposals and audit it.

    The configuration is passed unchanged to every proposal (auditing the
    schedule, not the protocol); state-dependent schedulers can be audited
    on live runs by calling :meth:`FairnessAudit.observe` from a loop.
    """
    audit = FairnessAudit(scheduler.population)
    for _ in range(meetings):
        x, y = scheduler.next_pair(config)
        audit.observe(x, y)
    audit.finish()
    return audit
