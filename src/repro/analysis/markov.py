"""Exact expected convergence times via absorbing Markov chains.

Under the uniform-random scheduler, an execution is a Markov chain on
configurations.  Because protocols are uniform and agents anonymous, the
chain *lumps* onto the quotient (multiset) space: the probability of
moving between multiset classes is the same from every labelled
configuration of a class - it depends only on state counts.  The lumped
chain is tiny, so the expected number of interactions to reach a solved
configuration can be computed **exactly** by solving the absorbing-chain
linear system ``(I - Q) t = 1`` - no simulation variance, no budget.

This turns the supplementary time measurements into checkable numbers:
the simulated means of exp-s1 must agree with the linear-algebra answer,
and quantities far beyond simulation (Protocol 3's ``N = P`` sweep
expectation) become computable.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from itertools import permutations
from typing import Callable, Iterable

import numpy

from repro.analysis.quotient import QuotientNode
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import VerificationError


@dataclass(frozen=True)
class ExpectedTime:
    """Exact expected interactions to absorption from one start."""

    start: QuotientNode
    expected_interactions: float


def _transition_distribution(
    protocol: PopulationProtocol,
    node: QuotientNode,
    has_leader: bool,
) -> dict[QuotientNode, float]:
    """Outgoing one-interaction distribution of the lumped chain.

    The scheduler draws an ordered pair of distinct agents uniformly:
    ``A (A - 1)`` equally likely draws for ``A`` agents.  A draw's effect
    depends only on the states involved, so draws aggregate by state
    counts.  Null meetings contribute self-loop probability.
    """
    mobile, leader = node
    counts = Counter(mobile)
    n_mobile = len(mobile)
    total_agents = n_mobile + (1 if has_leader else 0)
    draws = total_agents * (total_agents - 1)
    if draws == 0:
        return {node: 1.0}

    def moved(remove: tuple, add: tuple) -> tuple:
        updated = counts.copy()
        for s in remove:
            updated[s] -= 1
        for s in add:
            updated[s] += 1
        return tuple(
            sorted(
                (s for s, c in updated.items() for _ in range(c)), key=repr
            )
        )

    distribution: dict[QuotientNode, float] = {}

    def put(target: QuotientNode, weight: float) -> None:
        distribution[target] = distribution.get(target, 0.0) + weight

    # Mobile-mobile ordered draws.
    for p, q in permutations(counts, 2):
        weight = counts[p] * counts[q] / draws
        p2, q2 = protocol.transition(p, q)
        if (p2, q2) == (p, q):
            put(node, weight)
        else:
            put((moved((p, q), (p2, q2)), leader), weight)
    for p, c in counts.items():
        if c >= 2:
            weight = c * (c - 1) / draws
            p2, q2 = protocol.transition(p, p)
            if (p2, q2) == (p, p):
                put(node, weight)
            else:
                put((moved((p, p), (p2, q2)), leader), weight)

    # Leader-mobile draws, both orientations.
    if has_leader:
        for s, c in counts.items():
            for order in ("leader_first", "mobile_first"):
                weight = c / draws
                if order == "leader_first":
                    l2, s2 = protocol.transition(leader, s)
                else:
                    s2, l2 = protocol.transition(s, leader)
                if (l2, s2) == (leader, s):
                    put(node, weight)
                else:
                    put((moved((s,), (s2,)), l2), weight)
    return distribution


def expected_convergence_time(
    protocol: PopulationProtocol,
    initial: Iterable[QuotientNode],
    is_absorbing: Callable[[QuotientNode], bool],
    max_nodes: int = 20_000,
) -> dict[QuotientNode, float]:
    """Exact expected interactions to absorption for every reachable node.

    ``is_absorbing`` marks the solved classes (e.g. duplicate-free,
    silent multisets).  Raises :class:`VerificationError` when some
    reachable node cannot reach an absorbing one (infinite expectation).
    """
    initial = list(initial)
    if not initial:
        raise VerificationError("no initial quotient nodes supplied")
    has_leader = protocol.requires_leader

    # Explore the lumped chain.
    nodes: list[QuotientNode] = []
    index: dict[QuotientNode, int] = {}
    rows: list[dict[QuotientNode, float]] = []
    queue: deque[QuotientNode] = deque()
    for node in initial:
        if node not in index:
            index[node] = len(nodes)
            nodes.append(node)
            queue.append(node)
    while queue:
        node = queue.popleft()
        if is_absorbing(node):
            rows.append({})
            continue
        distribution = _transition_distribution(protocol, node, has_leader)
        rows.append(distribution)
        for target in distribution:
            if target not in index:
                if len(nodes) >= max_nodes:
                    raise VerificationError(
                        f"lumped chain exceeded {max_nodes} nodes"
                    )
                index[target] = len(nodes)
                nodes.append(target)
                queue.append(target)

    transient = [i for i, node in enumerate(nodes) if not is_absorbing(node)]
    if not transient:
        return {node: 0.0 for node in nodes}
    position = {i: k for k, i in enumerate(transient)}
    size = len(transient)
    q_matrix = numpy.zeros((size, size))
    for i in transient:
        for target, weight in rows[i].items():
            j = index[target]
            if j in position:
                q_matrix[position[i], position[j]] = (
                    q_matrix[position[i], position[j]] + weight
                )
    system = numpy.eye(size) - q_matrix
    try:
        times = numpy.linalg.solve(system, numpy.ones(size))
    except numpy.linalg.LinAlgError as exc:
        raise VerificationError(
            "the chain has unreachable absorption (infinite expected "
            "time) or is ill-conditioned"
        ) from exc
    if numpy.any(times < -1e-9) or not numpy.all(numpy.isfinite(times)):
        raise VerificationError(
            "absorption is not certain from every reachable class"
        )
    result = {node: 0.0 for node in nodes}
    for i in transient:
        result[nodes[i]] = float(times[position[i]])
    return result


def absorption_probability(
    protocol: PopulationProtocol,
    initial: Iterable[QuotientNode],
    is_absorbing: Callable[[QuotientNode], bool],
    max_nodes: int = 20_000,
) -> dict[QuotientNode, float]:
    """Exact probability of *ever* reaching an absorbing class.

    The quantitative companion to the model checkers: a correct protocol
    has probability 1 everywhere; a failing one reveals *how* it fails -
    e.g. Proposition 13's two-agent cycle has probability 0, while a
    protocol with a reachable livelock trap has probability strictly
    between 0 and 1 from the trap's basin boundary.

    Method: closed recurrent non-absorbing classes (sink SCCs of the
    lumped graph that contain no absorbing node) can never absorb, so
    their probability is 0; removing them leaves a substochastic system
    ``(I - Q') p = r`` with a unique solution - the minimal non-negative
    one, i.e. the true probabilities.
    """
    initial = list(initial)
    if not initial:
        raise VerificationError("no initial quotient nodes supplied")
    has_leader = protocol.requires_leader

    nodes: list[QuotientNode] = []
    index: dict[QuotientNode, int] = {}
    rows: list[dict[QuotientNode, float]] = []
    queue: deque[QuotientNode] = deque()
    for node in initial:
        if node not in index:
            index[node] = len(nodes)
            nodes.append(node)
            queue.append(node)
    while queue:
        node = queue.popleft()
        if is_absorbing(node):
            rows.append({})
            continue
        distribution = _transition_distribution(protocol, node, has_leader)
        rows.append(distribution)
        for target in distribution:
            if target not in index:
                if len(nodes) >= max_nodes:
                    raise VerificationError(
                        f"lumped chain exceeded {max_nodes} nodes"
                    )
                index[target] = len(nodes)
                nodes.append(target)
                queue.append(target)

    result = {
        node: (1.0 if is_absorbing(node) else 0.0) for node in nodes
    }

    # Doomed nodes: sink SCCs of non-absorbing nodes never absorb.
    from repro.analysis.quotient import _tarjan

    def successors(node: QuotientNode):
        i = index[node]
        return list(rows[i].keys())

    components = _tarjan(nodes, successors)
    doomed: set[QuotientNode] = set()
    for component in components:
        members = set(component)
        if any(is_absorbing(node) for node in component):
            continue
        leaves = any(
            target not in members
            for node in component
            for target in rows[index[node]]
        )
        if not leaves:
            doomed.update(members)

    solvable = [
        i
        for i, node in enumerate(nodes)
        if not is_absorbing(node) and node not in doomed
    ]
    if not solvable:
        return result
    position = {i: k for k, i in enumerate(solvable)}
    size = len(solvable)
    q_matrix = numpy.zeros((size, size))
    into_absorbing = numpy.zeros(size)
    for i in solvable:
        for target, weight in rows[i].items():
            j = index[target]
            if j in position:
                q_matrix[position[i], position[j]] += weight
            elif is_absorbing(target):
                into_absorbing[position[i]] += weight
            # weight into doomed nodes contributes nothing.
    system = numpy.eye(size) - q_matrix
    solution = numpy.linalg.solve(system, into_absorbing)
    probabilities = numpy.clip(solution, 0.0, 1.0)
    for i in solvable:
        result[nodes[i]] = float(probabilities[position[i]])
    return result


def naming_absorbing(
    protocol: PopulationProtocol,
) -> Callable[[QuotientNode], bool]:
    """The solved predicate for naming: the class is duplicate-free AND
    silent (no realizable meeting changes anything) - a distinct-name
    class with pending renames (Protocol 3 mid-sweep, a Prop. 13 reset
    agent) is *not* absorbed yet."""

    def absorbing(node: QuotientNode) -> bool:
        mobile, leader = node
        if len(set(mobile)) != len(mobile):
            return False
        counts = Counter(mobile)
        for p, q in permutations(counts, 2):
            if protocol.transition(p, q) != (p, q):
                return False
        for p, c in counts.items():
            if c >= 2 and protocol.transition(p, p) != (p, p):
                return False
        if leader is not None:
            for s in counts:
                if protocol.transition(leader, s) != (leader, s):
                    return False
                if protocol.transition(s, leader) != (s, leader):
                    return False
        return True

    return absorbing
