"""Verification and analysis toolkit: reachability graphs, exact model
checkers for both fairness notions, exhaustive lower-bound enumeration,
proof potentials and convergence statistics."""

from repro.analysis.enumeration import (
    EnumerationResult,
    EnumLeaderState,
    asymmetric_leaderless_protocols,
    protocol_solves_naming,
    search,
    symmetric_leaderless_protocols,
    symmetric_leadered_protocols,
)
from repro.analysis.counterexample import (
    WeakCounterexample,
    synthesize_weak_counterexample,
    verify_counterexample,
)
from repro.analysis.fairness_audit import FairnessAudit, audit_scheduler
from repro.analysis.monitors import (
    CompositeMonitor,
    CountMonitor,
    InvariantViolation,
    PotentialMonitor,
    StateSpaceMonitor,
)
from repro.analysis.parallelism import (
    ParallelismReport,
    analyze_trace,
    greedy_rounds,
)
from repro.analysis.markov import (
    ExpectedTime,
    absorption_probability,
    expected_convergence_time,
    naming_absorbing,
)
from repro.analysis.model_checker import (
    GlobalFairnessVerdict,
    check_naming_global,
    sink_components,
    strongly_connected_components,
)
from repro.analysis.potential import (
    hole_distance,
    hole_distance_of_agent,
    holes,
    potential,
    potential_upper_bound,
)
from repro.analysis.quotient import (
    QuotientEdge,
    QuotientGraph,
    QuotientVerdict,
    arbitrary_quotient_initials,
    check_naming_global_quotient,
    explore_quotient,
    quotient_of,
)
from repro.analysis.reachability import (
    ConfigurationGraph,
    Edge,
    arbitrary_initial_configurations,
    explore,
    one_step_edges,
    uniform_initial_configurations,
)
from repro.analysis.sink import (
    HomonymChain,
    homonym_chain,
    is_reduced,
    reduce_homonyms,
    sink_states,
    unique_sink,
)
from repro.analysis.stats import Summary, convergence_sample, quantile, summarize
from repro.analysis.surgery import (
    HiddenAgentDemo,
    hidden_agent_demo,
    replay_rule_trace,
    rule_trace_of,
)
from repro.analysis.weak_fairness import (
    WeakFairnessVerdict,
    check_naming_weak,
    failing_components,
)

__all__ = [
    "CompositeMonitor",
    "ConfigurationGraph",
    "CountMonitor",
    "Edge",
    "EnumLeaderState",
    "EnumerationResult",
    "ExpectedTime",
    "FairnessAudit",
    "GlobalFairnessVerdict",
    "InvariantViolation",
    "HiddenAgentDemo",
    "HomonymChain",
    "ParallelismReport",
    "PotentialMonitor",
    "QuotientEdge",
    "QuotientGraph",
    "QuotientVerdict",
    "StateSpaceMonitor",
    "Summary",
    "WeakCounterexample",
    "WeakFairnessVerdict",
    "absorption_probability",
    "analyze_trace",
    "arbitrary_initial_configurations",
    "arbitrary_quotient_initials",
    "check_naming_global_quotient",
    "explore_quotient",
    "quotient_of",
    "asymmetric_leaderless_protocols",
    "audit_scheduler",
    "check_naming_global",
    "check_naming_weak",
    "convergence_sample",
    "expected_convergence_time",
    "explore",
    "failing_components",
    "greedy_rounds",
    "hidden_agent_demo",
    "hole_distance",
    "hole_distance_of_agent",
    "holes",
    "homonym_chain",
    "is_reduced",
    "naming_absorbing",
    "one_step_edges",
    "potential",
    "potential_upper_bound",
    "protocol_solves_naming",
    "quantile",
    "reduce_homonyms",
    "replay_rule_trace",
    "rule_trace_of",
    "search",
    "sink_components",
    "sink_states",
    "strongly_connected_components",
    "summarize",
    "symmetric_leaderless_protocols",
    "synthesize_weak_counterexample",
    "verify_counterexample",
    "symmetric_leadered_protocols",
    "uniform_initial_configurations",
    "unique_sink",
]
