"""``repro check``: the symbolic model-checking front end.

Picks a protocol by the same four model parameters as ``repro
simulate``, then verifies any subset of the symbolic properties
(:data:`repro.analysis.symbolic.PROPERTIES`) on the counts-vector
quotient at the requested name bound and population:

``reach``
    No reachable silent configuration carries duplicate names
    (naming-on-silence, the safety core of Definition 1).
``sinks``
    Every reachable sink SCC is free of name-changing internal edges
    and duplicate names - the global-fairness naming condition
    (Prop. 6 discipline).
``liveness``
    Weak-fairness naming: no reachable component lets a weakly fair
    scheduler trap the population while names keep changing or stay
    duplicated (exact, via candidate-SCC fiber expansion).

FAIL verdicts come with a concrete counterexample - an initial
configuration and an explicit meeting schedule - that has already been
replayed and re-checked on the reference simulator before being shown.

Verdicts are memoized through
:class:`repro.serve.cache.ArtifactCache` (pass ``--cache-dir``), keyed
on the protocol's *content* fingerprint plus the instance and property,
mirroring :func:`repro.lint.engine.cached_lint_report`: repeated CI
runs over unchanged protocol tables reuse stored verdicts.

Exit codes: 0 all requested properties hold; 1 a property fails
(counterexample found); 2 the model is infeasible, the bound escapes
the analysis budgets, or the invocation is invalid.
"""

from __future__ import annotations

import argparse
import hashlib
from typing import Sequence

from repro.analysis.symbolic import (
    PROPERTIES,
    SymbolicVerdict,
    check_property,
)
from repro.core.registry import protocol_for
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    table1_cell,
)
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import InfeasibleSpecError, VerificationError

_FAIRNESS = {f.value: f for f in Fairness}
_SYMMETRY = {s.value: s for s in Symmetry}
_LEADER = {
    "none": LeaderKind.NONE,
    "non-initialized": LeaderKind.NON_INITIALIZED,
    "initialized": LeaderKind.INITIALIZED,
}
_INIT = {i.value: i for i in MobileInit}

#: Bump when the verdict schema or the checking semantics change, so
#: stale cached verdicts from older versions are never reused.
CACHE_TAG = "repro-check-v1"


def cached_check(
    protocol: PopulationProtocol,
    prop: str,
    n_mobile: int,
    mobile_mode: str = "auto",
    leader_states: Sequence[State] | None = None,
    max_nodes: int = 2_000_000,
    max_roots: int | None = None,
    cache=None,
    n_jobs: int = 1,
) -> SymbolicVerdict:
    """:func:`repro.analysis.symbolic.check_property`, memoized.

    ``cache`` is a :class:`repro.serve.cache.ArtifactCache` (or any
    object with its ``get``/``put`` interface).  Verdicts are keyed on
    the protocol's *content* fingerprint plus the instance parameters
    (population, property, root conventions, budgets), so equal
    protocol instances - across processes sharing a cache root - reuse
    one verified result.  Protocols without a fingerprint, or calls
    without a cache, fall through to a plain check.

    ``n_jobs`` shards the frontier expansion across processes
    (:func:`repro.analysis.symbolic.reach`).  It is an execution knob,
    not a semantic one - verdicts are bit-identical at any width - so
    it deliberately stays **out** of the cache key: serial and sharded
    runs share stored verdicts.
    """
    kwargs = dict(
        mobile_mode=mobile_mode,
        leader_states=leader_states,
        max_nodes=max_nodes,
        max_roots=max_roots,
        n_jobs=n_jobs,
    )
    if cache is None:
        return check_property(protocol, prop, n_mobile, **kwargs)
    from repro.engine.fast import table_fingerprint

    fingerprint = table_fingerprint(protocol)
    if fingerprint is None:
        return check_property(protocol, prop, n_mobile, **kwargs)
    parts = (
        CACHE_TAG,
        fingerprint,
        prop,
        str(n_mobile),
        mobile_mode,
        (
            ",".join(sorted(repr(s) for s in leader_states))
            if leader_states is not None
            else "full"
        ),
        str(max_nodes),
        str(max_roots),
    )
    key = hashlib.sha256("\x00".join(parts).encode()).hexdigest()
    stored = cache.get("check", key)
    if isinstance(stored, SymbolicVerdict):
        return stored
    verdict = check_property(protocol, prop, n_mobile, **kwargs)
    cache.put("check", key, verdict)
    return verdict


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro check`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Symbolically model-check a naming protocol on the counts "
            "quotient: reachability safety, sink-SCC discipline, and "
            "weak-fairness liveness, with replay-validated "
            "counterexamples."
        ),
    )
    parser.add_argument(
        "--fairness", choices=sorted(_FAIRNESS), default="global"
    )
    parser.add_argument(
        "--symmetry", choices=sorted(_SYMMETRY), default="symmetric"
    )
    parser.add_argument("--leader", choices=sorted(_LEADER), default="none")
    parser.add_argument("--init", choices=sorted(_INIT), default="arbitrary")
    parser.add_argument(
        "--bound",
        "-P",
        type=int,
        default=8,
        help="name-range bound P (default: %(default)s)",
    )
    parser.add_argument(
        "--n",
        "-N",
        type=int,
        default=3,
        help="mobile population size (default: %(default)s)",
    )
    parser.add_argument(
        "--property",
        dest="properties",
        nargs="+",
        choices=PROPERTIES,
        default=None,
        metavar="PROP",
        help=(
            "properties to verify: "
            + ", ".join(PROPERTIES)
            + " (default: the ones the model claims - reach and sinks "
            "always, liveness only under weak fairness, where the "
            "paper's protocols must name under *every* weakly fair "
            "schedule)"
        ),
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=2_000_000,
        help="quotient frontier cap (default: %(default)s)",
    )
    parser.add_argument(
        "--max-roots",
        type=int,
        default=None,
        help=(
            "cap on initial count vectors; exceeding it aborts instead "
            "of silently truncating (default: unlimited)"
        ),
    )
    parser.add_argument(
        "--full-leader-space",
        action="store_true",
        help=(
            "root the frontier in every leader state even for "
            "initialized-leader models (the self-stabilizing reading; "
            "default for non-initialized leaders)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the frontier expansion; verdicts are "
            "bit-identical at any width (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "memoize verdicts in an artifact cache rooted here, keyed "
            "by protocol content fingerprint"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the verdicts as JSON instead of text",
    )
    return parser


def _witness_lines(verdict: SymbolicVerdict) -> list[str]:
    """Render a FAIL verdict's counterexample as indented text."""
    witness = verdict.witness
    if witness is None:
        return []
    lines = [
        f"    counterexample ({witness.kind}):",
        f"      initial : {witness.initial.states}",
    ]
    meetings = witness.meetings
    head = meetings[: witness.checkpoint]
    tail = meetings[witness.checkpoint:]
    lines.append(
        f"      schedule: {len(head)} meeting(s) to the violation"
        + (f", then {len(tail)} demonstrating recurrence" if tail else "")
    )
    lines.append(f"        reach : {head}")
    if tail:
        label = "rounds" if witness.round_ends else "lasso"
        lines.append(f"        {label:<6}: {tail}")
    lines.append(f"      final   : {witness.final.states}")
    lines.append(f"      violation: {witness.description}")
    return lines


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro check``; returns the exit code."""
    args = build_parser().parse_args(argv)
    spec = ModelSpec(
        _FAIRNESS[args.fairness],
        _SYMMETRY[args.symmetry],
        _LEADER[args.leader],
        _INIT[args.init],
    )
    try:
        protocol = protocol_for(spec, args.bound)
    except InfeasibleSpecError as exc:
        print(f"infeasible model: {exc}")
        return 2
    cell = table1_cell(spec)

    # Root conventions mirror the explicit checkers: an initialized
    # leader starts in its designated state; a non-initialized leader
    # (and --full-leader-space) roots in the entire leader space.
    leader_states = None
    if (
        protocol.requires_leader
        and spec.leader is LeaderKind.INITIALIZED
        and not args.full_leader_space
    ):
        designated = protocol.initial_leader_state()
        if designated is not None:
            leader_states = [designated]
    mobile_mode = (
        "uniform" if spec.mobile_init is MobileInit.UNIFORM else "arbitrary"
    )

    cache = None
    if args.cache_dir:
        from repro.serve.cache import ArtifactCache

        cache = ArtifactCache(args.cache_dir)

    properties = args.properties
    if properties is None:
        # The model's own claims: naming-on-silence and sink discipline
        # always; weak-fairness liveness only when the spec promises it
        # (global-fairness protocols may legitimately livelock under a
        # merely weakly fair adversary - e.g. Prop. 13).
        properties = ["reach", "sinks"]
        if spec.fairness is Fairness.WEAK:
            properties.append("liveness")

    verdicts: list[SymbolicVerdict] = []
    for prop in properties:
        try:
            verdict = cached_check(
                protocol,
                prop,
                args.n,
                mobile_mode=mobile_mode,
                leader_states=leader_states,
                max_nodes=args.max_nodes,
                max_roots=args.max_roots,
                cache=cache,
                n_jobs=max(1, args.jobs),
            )
        except VerificationError as exc:
            print(f"check aborted: {prop}: {exc}")
            return 2
        verdicts.append(verdict)

    if args.json:
        from repro.reporting.jsonio import dumps

        print(
            dumps(
                {
                    "model": spec.describe(),
                    "protocol": protocol.display_name,
                    "paper": cell.protocol_ref,
                    "bound": args.bound,
                    "n_mobile": args.n,
                    "verdicts": verdicts,
                }
            )
        )
    else:
        print(f"model   : {spec.describe()}")
        print(f"protocol: {protocol.display_name} ({cell.protocol_ref}), "
              f"P = {args.bound}, N = {args.n}")
        for verdict in verdicts:
            print(verdict.render())
            for line in _witness_lines(verdict):
                print(line)
    return 0 if all(v.holds for v in verdicts) else 1


if __name__ == "__main__":
    raise SystemExit(main())
