"""Counterexample synthesis: from a failing SCC to a replayable schedule.

The weak-fairness checker (:mod:`repro.analysis.weak_fairness`) proves
non-convergence by exhibiting an SCC in which every agent pair can meet.
The paper's negative proofs go one step further: they *construct* the
weakly fair execution. This module automates that step - given a protocol
that fails under weak fairness, it synthesizes a concrete schedule

    ``prefix`` (reach the recurrent configuration)  +
    ``cycle``  (return to it while meeting every pair at least once)

such that replaying ``prefix, cycle, cycle, ...`` is a weakly fair
execution that never converges.  The result plugs directly into
:class:`repro.schedulers.adversarial.FixedSequenceScheduler`, so every
impossibility verdict can be *watched* in the simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.model_checker import strongly_connected_components
from repro.analysis.reachability import ConfigurationGraph, explore
from repro.analysis.weak_fairness import _meetings
from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.engine.protocol import PopulationProtocol
from repro.errors import VerificationError

#: An ordered meeting: (initiator, responder).
Meeting = tuple[AgentId, AgentId]


@dataclass
class WeakCounterexample:
    """A synthesized weakly fair non-converging execution.

    Replay ``prefix`` once from ``initial``, then ``cycle`` forever; the
    cycle starts and ends at ``recurrent`` and meets every unordered agent
    pair at least once, so the infinite execution is weakly fair.  If
    ``livelock`` is true some meeting in the cycle changes a mobile name
    on every pass; otherwise ``recurrent`` holds duplicate names and every
    cycle meeting is null.
    """

    initial: Configuration
    recurrent: Configuration
    prefix: list[Meeting]
    cycle: list[Meeting]
    livelock: bool

    def schedule(self, repetitions: int = 1) -> list[Meeting]:
        """The prefix followed by ``repetitions`` copies of the cycle."""
        return list(self.prefix) + list(self.cycle) * repetitions


def _oriented_meetings(
    protocol: PopulationProtocol,
    population: Population,
    config: Configuration,
):
    """Meetings at ``config`` with their orientation and outcome."""
    mobile_count = population.n_mobile
    for x, y in population.unordered_pairs():
        for initiator, responder in ((x, y), (y, x)):
            p = config.state_of(initiator)
            q = config.state_of(responder)
            p2, q2 = protocol.transition(p, q)
            if (p2, q2) == (p, q):
                target = config
            else:
                target = config.apply(initiator, responder, (p2, q2))
            changes = (
                initiator < mobile_count and p2 != p
            ) or (responder < mobile_count and q2 != q)
            yield (initiator, responder), target, changes


def _shortest_meeting_path(
    protocol: PopulationProtocol,
    population: Population,
    members: set[Configuration] | None,
    source: Configuration,
    goal,
) -> tuple[list[Meeting], Configuration]:
    """BFS over *meetings* (null ones included) from ``source`` to the
    first configuration satisfying ``goal``; restricted to ``members``
    when given.  Returns the meeting list and the reached configuration.
    """
    if goal(source):
        return [], source
    seen = {source}
    queue: deque[tuple[Configuration, list[Meeting]]] = deque(
        [(source, [])]
    )
    while queue:
        config, path = queue.popleft()
        for meeting, target, _ in _oriented_meetings(
            protocol, population, config
        ):
            if members is not None and target not in members:
                continue
            if goal(target):
                return path + [meeting], target
            if target not in seen:
                seen.add(target)
                queue.append((target, path + [meeting]))
    raise VerificationError("no path to the requested configuration")


def synthesize_weak_counterexample(
    protocol: PopulationProtocol,
    population: Population,
    initial: list[Configuration],
    max_nodes: int = 200_000,
) -> WeakCounterexample:
    """Build a replayable weakly fair non-converging schedule.

    Raises :class:`VerificationError` when the protocol actually solves
    naming under weak fairness from the given initial configurations (no
    counterexample exists).
    """
    if not initial:
        raise VerificationError("no initial configurations supplied")
    graph = explore(protocol, population, initial, max_nodes=max_nodes)
    all_pairs = {frozenset(p) for p in population.unordered_pairs()}

    failing = _find_failing_component(
        protocol, population, graph, all_pairs
    )
    if failing is None:
        raise VerificationError(
            f"{protocol.display_name} solves naming under weak fairness "
            "from the given starts; no counterexample exists"
        )
    members, changes = failing
    anchor = next(iter(members))

    # Reach the anchor from some initial configuration.
    origin, prefix, start = _reach_component(
        protocol, population, initial, members
    )
    if start != anchor:
        extra, _ = _shortest_meeting_path(
            protocol,
            population,
            members,
            start,
            lambda c: c == anchor,
        )
        prefix = prefix + extra

    # Build the covering cycle: for each unordered pair, walk (within the
    # component) to a configuration, take the pair's meeting, continue.
    cycle: list[Meeting] = []
    here = anchor
    for pair in sorted(all_pairs, key=sorted):
        x, y = sorted(pair)

        def can_meet_here(config: Configuration) -> bool:
            for meeting, target, _ in _oriented_meetings(
                protocol, population, config
            ):
                if frozenset(meeting) == pair and target in members:
                    return True
            return False

        walk, spot = _shortest_meeting_path(
            protocol, population, members, here, can_meet_here
        )
        cycle.extend(walk)
        meeting, target = _pick_meeting(
            protocol, population, members, spot, pair, prefer_change=changes
        )
        cycle.append(meeting)
        here = target

    if changes:
        # Ensure at least one name change per cycle pass.
        def change_possible(config: Configuration) -> bool:
            return any(
                chg and target in members
                for _, target, chg in _oriented_meetings(
                    protocol, population, config
                )
            )

        walk, spot = _shortest_meeting_path(
            protocol, population, members, here, change_possible
        )
        cycle.extend(walk)
        for meeting, target, chg in _oriented_meetings(
            protocol, population, spot
        ):
            if chg and target in members:
                cycle.append(meeting)
                here = target
                break

    # Close the loop back to the anchor.
    closing, _ = _shortest_meeting_path(
        protocol, population, members, here, lambda c: c == anchor
    )
    cycle.extend(closing)
    if not cycle:
        raise VerificationError("synthesized an empty cycle")  # unreachable
    return WeakCounterexample(
        initial=origin,
        recurrent=anchor,
        prefix=prefix,
        cycle=cycle,
        livelock=changes,
    )


def _find_failing_component(
    protocol: PopulationProtocol,
    population: Population,
    graph: ConfigurationGraph,
    all_pairs: set,
) -> tuple[set[Configuration], bool] | None:
    """The first SCC witnessing failure, plus its livelock flag."""
    for component in strongly_connected_components(graph):
        members = set(component)
        covered = set()
        changes = False
        for node in component:
            for meeting in _meetings(
                protocol, population, node, lambda s: s
            ):
                if meeting.target in members:
                    covered.add(meeting.pair)
                    changes = changes or meeting.changes_mobile
        if covered != all_pairs:
            continue
        if changes or not component[0].names_distinct():
            return members, changes
    return None


def _reach_component(
    protocol: PopulationProtocol,
    population: Population,
    initial: list[Configuration],
    members: set[Configuration],
) -> tuple[Configuration, list[Meeting], Configuration]:
    """Shortest meeting path from any initial configuration into the
    component (unrestricted by membership along the way); returns the
    chosen start, the path and the entry configuration."""
    best: tuple[Configuration, list[Meeting], Configuration] | None = None
    for start in initial:
        try:
            path, reached = _shortest_meeting_path(
                protocol,
                population,
                None,
                start,
                lambda c: c in members,
            )
        except VerificationError:
            continue
        if best is None or len(path) < len(best[1]):
            best = (start, path, reached)
            if not path:
                break
    if best is None:
        raise VerificationError("failing component unreachable")
    return best


def _pick_meeting(
    protocol: PopulationProtocol,
    population: Population,
    members: set[Configuration],
    config: Configuration,
    pair,
    prefer_change: bool,
) -> tuple[Meeting, Configuration]:
    """A meeting of ``pair`` at ``config`` staying inside the component."""
    candidates = [
        (meeting, target, chg)
        for meeting, target, chg in _oriented_meetings(
            protocol, population, config
        )
        if frozenset(meeting) == pair and target in members
    ]
    if not candidates:
        raise VerificationError(
            f"pair {sorted(pair)} cannot meet inside the component here"
        )
    if prefer_change:
        for meeting, target, chg in candidates:
            if chg:
                return meeting, target
    return candidates[0][0], candidates[0][1]


def verify_counterexample(
    protocol: PopulationProtocol,
    population: Population,
    counterexample: WeakCounterexample,
    repetitions: int = 3,
) -> bool:
    """Replay the synthesized schedule and confirm its promises:

    * the prefix reaches the recurrent configuration... (after the cycle),
    * each cycle pass returns exactly to the recurrent configuration,
    * the cycle meets every unordered pair,
    * livelock cycles change some mobile state; quiet cycles never do and
      the recurrent configuration has duplicate names.
    """
    config = counterexample.initial
    for x, y in counterexample.prefix:
        p, q = config.state_of(x), config.state_of(y)
        config = config.apply(x, y, protocol.transition(p, q)) if (
            protocol.transition(p, q) != (p, q)
        ) else config
    if config != counterexample.recurrent:
        return False
    met = set()
    for _ in range(repetitions):
        changed = False
        for x, y in counterexample.cycle:
            met.add(frozenset((x, y)))
            p, q = config.state_of(x), config.state_of(y)
            p2, q2 = protocol.transition(p, q)
            if (p2, q2) != (p, q):
                before = config.mobile_states
                config = config.apply(x, y, (p2, q2))
                changed = changed or config.mobile_states != before
        if config != counterexample.recurrent:
            return False
        if counterexample.livelock and not changed:
            return False
        if not counterexample.livelock and changed:
            return False
    all_pairs = {frozenset(p) for p in population.unordered_pairs()}
    if met != all_pairs:
        return False
    if not counterexample.livelock:
        return not counterexample.recurrent.names_distinct()
    return True
