"""Execution surgery: the Section 3.1 proof machinery, mechanized.

The paper's hardest negative results (Lemma 5, Lemma 8, Theorem 11) argue
by *rewriting executions*: because agents are anonymous and uniform, an
execution is really a trace of transition **rules**, and the same rule
trace can be replayed with different agents playing each role.  Two
constructions carry the proofs:

* **Rerouting (Lemma 8).**  In a population with at least two agents in
  the sink state, any reduced execution can be replayed so that one chosen
  sink agent never interacts, reaching an *equivalent* configuration
  (same multiset, same leader state).

* **The hidden agent (Lemma 5).**  An execution of a ``P``-state protocol
  on ``N`` agents in which one agent sits in the sink also *is* a valid
  prefix of an execution on ``N + 1`` agents - the extra agent idles in
  the sink, indistinguishable to everyone else.  This is why ``P`` states
  cannot name ``P`` arbitrarily initialized agents: the adversary keeps
  one agent hidden until the protocol has committed.

Both are implemented as concrete trace transformations and exercised on
Protocol 1, turning the lower-bound intuition into runnable artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.configuration import Configuration
from repro.engine.population import AgentId, Population
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State, is_leader_state
from repro.errors import VerificationError

#: A rule trace entry: the ordered state pair consumed by an interaction.
RuleStep = tuple[State, State]


def rule_trace_of(
    protocol: PopulationProtocol,
    initial: Configuration,
    meetings: list[tuple[AgentId, AgentId]],
) -> list[RuleStep]:
    """Replay agent-level meetings and record the rule trace
    (the ordered state pairs consumed, null meetings skipped)."""
    config = initial
    steps: list[RuleStep] = []
    for x, y in meetings:
        p, q = config.state_of(x), config.state_of(y)
        p2, q2 = protocol.transition(p, q)
        if (p2, q2) != (p, q):
            steps.append((p, q))
            config = config.apply(x, y, (p2, q2))
    return steps


def replay_rule_trace(
    protocol: PopulationProtocol,
    population: Population,
    initial: Configuration,
    steps: list[RuleStep],
    avoid: AgentId | None = None,
) -> tuple[Configuration, list[tuple[AgentId, AgentId]]]:
    """Replay a rule trace, choosing at every step *which* agents play the
    two roles - never picking ``avoid`` (Lemma 8's rerouting).

    Returns the final configuration and the realized meetings.  Raises
    :class:`VerificationError` when some step cannot be cast without
    ``avoid`` (the paper's lemma guarantees castability exactly when a
    second agent shares ``avoid``'s state whenever its state is demanded).
    """
    config = initial
    meetings: list[tuple[AgentId, AgentId]] = []
    for p, q in steps:
        x = _find_agent(population, config, p, exclude=(avoid,))
        y = _find_agent(population, config, q, exclude=(avoid, x))
        if x is None or y is None:
            raise VerificationError(
                f"rule ({p!r}, {q!r}) cannot be cast without agent {avoid}"
            )
        p2, q2 = protocol.transition(p, q)
        if (p2, q2) == (p, q):
            raise VerificationError(
                f"rule trace contains the null rule ({p!r}, {q!r})"
            )
        config = config.apply(x, y, (p2, q2))
        meetings.append((x, y))
    return config, meetings


def _find_agent(
    population: Population,
    config: Configuration,
    state: State,
    exclude: tuple[AgentId | None, ...],
) -> AgentId | None:
    for agent in population.agents:
        if agent in exclude:
            continue
        if config.state_of(agent) == state:
            return agent
    return None


@dataclass
class HiddenAgentDemo:
    """Outcome of the Lemma 5 hidden-agent construction.

    ``visible_final`` is where the N-agent execution converged;
    ``padded_final`` is the same execution replayed among ``N + 1`` agents
    with the extra agent frozen in the sink; ``fooled`` reports whether
    the leader's knowledge is identical in both (it must be: the hidden
    agent is invisible); ``recovered_count`` is the leader's count after
    the hidden agent finally interacts and weak fairness resumes.
    """

    visible_final: Configuration
    padded_final: Configuration
    fooled: bool
    recovered_count: int | None = None


def hidden_agent_demo(
    protocol_factory,
    bound: int,
    n_visible: int,
    sink: State,
    seed: int = 0,
    budget: int = 500_000,
) -> HiddenAgentDemo:
    """Run the Lemma 5 construction against a leader-based protocol.

    1. Converge ``protocol_factory(bound)`` on ``n_visible`` agents from a
       uniform sink start (recording meetings).
    2. Replay the identical rule trace on ``n_visible + 1`` agents, the
       extra agent parked in the sink and never cast.
    3. Check the leader cannot distinguish the two worlds (same state).
    4. Resume fair scheduling in the padded world and report the leader's
       corrected count - Protocol 1 recovers *because* weak fairness
       eventually unmasks the hidden agent.
    """
    from repro.engine.problems import CountingProblem
    from repro.engine.simulator import Simulator
    from repro.engine.trace import Trace
    from repro.schedulers.round_robin import RoundRobinScheduler

    protocol = protocol_factory(bound)
    population = Population(n_visible, has_leader=True)
    scheduler = RoundRobinScheduler(population, seed=seed)
    simulator = Simulator(
        protocol, population, scheduler, CountingProblem(n_visible)
    )
    trace = Trace(capacity=None, record_null=True)
    initial = Configuration.uniform(
        population, sink, protocol.initial_leader_state()
    )
    result = simulator.run(initial, max_interactions=budget, trace=trace)
    if not result.converged:
        raise VerificationError("the visible world failed to converge")

    meetings = [(r.initiator, r.responder) for r in trace.records]
    steps = rule_trace_of(protocol, initial, meetings)

    padded_population = Population(n_visible + 1, has_leader=True)
    padded_initial = Configuration.uniform(
        padded_population, sink, protocol.initial_leader_state()
    )
    hidden = n_visible  # the extra mobile agent's id
    padded_final, _ = replay_rule_trace(
        protocol, padded_population, padded_initial, steps, avoid=hidden
    )

    fooled = (
        padded_final.leader_state == result.final_configuration.leader_state
        and padded_final.state_of(hidden) == sink
    )

    # Resume fair scheduling: the hidden agent must now meet everyone.
    padded_scheduler = RoundRobinScheduler(padded_population, seed=seed)
    padded_simulator = Simulator(
        protocol,
        padded_population,
        padded_scheduler,
        CountingProblem(n_visible + 1),
    )
    resumed = padded_simulator.run(padded_final, max_interactions=budget)
    recovered = (
        getattr(resumed.final_configuration.leader_state, "n", None)
        if resumed.converged
        else None
    )
    return HiddenAgentDemo(
        visible_final=result.final_configuration,
        padded_final=padded_final,
        fooled=fooled,
        recovered_count=recovered,
    )
