"""Weak-fairness model checking.

Weak fairness only demands that every pair of agents *meets* infinitely
often (null meetings count).  Deciding whether a protocol solves naming
under weak fairness is therefore a different - and adversarially harder -
question than the global-fairness check.

Characterization (finite instance).  A weakly fair non-converging execution
visits some configuration ``C`` infinitely often; every agent pair then
meets on some ``C -> ... -> C`` cycle.  All such cycles stay inside
``C``'s strongly connected component ``S``, and conversely any meeting
between two configurations of ``S`` lies on a cycle through ``C``.  Hence:

    the protocol FAILS under weak fairness iff some reachable SCC ``S``
    satisfies: (1) every unordered agent pair can meet inside ``S``
    (i.e. some meeting at a configuration of ``S`` leads back into ``S``;
    null meetings allowed), and (2) some meeting inside ``S`` changes a
    mobile agent's state (names then change forever - livelock), or the
    mobile states - necessarily constant across ``S`` otherwise - contain
    duplicates (stabilization on a wrong answer).

The adversary realizing a failing SCC simply concatenates, forever, one
pair-covering cycle per pair (plus a mobile-changing cycle if one exists);
the execution is weakly fair by construction.  Conversely a weakly fair
counterexample execution yields such an SCC at any of its recurrent
configurations.  The check below decides the condition exactly,
machine-verifying Propositions 1 and 4 and Theorem 11 on small instances
and certifying Propositions 12, 14 and 16's protocols on the same
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.model_checker import strongly_connected_components
from repro.analysis.reachability import ConfigurationGraph, explore
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import PopulationProtocol
from repro.errors import VerificationError

#: An unordered agent pair.
Pair = frozenset


@dataclass
class WeakFairnessVerdict:
    """Outcome of a weak-fairness naming check."""

    solves: bool
    explored_nodes: int
    counterexample: Configuration | None = None
    reason: str = ""


@dataclass
class _Meeting:
    """One possible outcome of a pair meeting at a configuration."""

    pair: Pair
    target: Configuration
    changes_mobile: bool


def _meetings(
    protocol: PopulationProtocol,
    population: Population,
    config: Configuration,
    project: Callable[[object], object],
) -> list[_Meeting]:
    """Every meeting outcome at ``config``: both orders of every pair,
    null meetings included (they matter for fairness coverage).

    ``changes_mobile`` records whether a mobile agent's projected *name*
    changed (for the paper's protocols the projection is the identity).
    """
    outcomes: list[_Meeting] = []
    mobile_count = population.n_mobile
    for x, y in population.unordered_pairs():
        pair = frozenset((x, y))
        for initiator, responder in ((x, y), (y, x)):
            p = config.state_of(initiator)
            q = config.state_of(responder)
            p2, q2 = protocol.transition(p, q)
            if (p2, q2) == (p, q):
                outcomes.append(_Meeting(pair, config, False))
                continue
            target = config.apply(initiator, responder, (p2, q2))
            changes_name = (
                initiator < mobile_count and project(p2) != project(p)
            ) or (responder < mobile_count and project(q2) != project(q))
            outcomes.append(_Meeting(pair, target, changes_name))
    return outcomes


@dataclass
class _ComponentSummary:
    """Pair coverage and mobile-change information for one SCC."""

    representative: Configuration
    covered: set[Pair]
    changes_mobile: bool


def _summarize_components(
    protocol: PopulationProtocol,
    population: Population,
    graph: ConfigurationGraph,
    project: Callable[[object], object],
) -> list[_ComponentSummary]:
    summaries: list[_ComponentSummary] = []
    for component in strongly_connected_components(graph):
        members = set(component)
        covered: set[Pair] = set()
        changes = False
        for node in component:
            for meeting in _meetings(protocol, population, node, project):
                if meeting.target in members:
                    covered.add(meeting.pair)
                    if meeting.changes_mobile:
                        changes = True
        summaries.append(_ComponentSummary(component[0], covered, changes))
    return summaries


def check_naming_weak(
    protocol: PopulationProtocol,
    population: Population,
    initial: Iterable[Configuration],
    max_nodes: int = 500_000,
    name_of: Callable[[object], object] | None = None,
) -> WeakFairnessVerdict:
    """Decide whether ``protocol`` solves naming under weak fairness from
    the given initial configurations, on this exact population size.

    Exact; cost is one SCC decomposition plus one pass over all meetings.
    ``name_of`` projects a mobile state to its name variable (identity by
    default; see :func:`check_naming_global`).
    """
    initial = list(initial)
    if not initial:
        raise VerificationError("no initial configurations supplied")
    project = name_of if name_of is not None else lambda state: state
    graph = explore(protocol, population, initial, max_nodes=max_nodes)
    all_pairs = {frozenset(p) for p in population.unordered_pairs()}

    for summary in _summarize_components(
        protocol, population, graph, project
    ):
        if summary.covered != all_pairs:
            continue  # no weakly fair execution can live in this component
        if summary.changes_mobile:
            return WeakFairnessVerdict(
                solves=False,
                explored_nodes=len(graph.nodes),
                counterexample=summary.representative,
                reason=(
                    "a weakly fair execution can change mobile names "
                    "forever while meeting every pair (livelock)"
                ),
            )
        names = tuple(
            project(s) for s in summary.representative.mobile_states
        )
        if len(set(names)) != len(names):
            return WeakFairnessVerdict(
                solves=False,
                explored_nodes=len(graph.nodes),
                counterexample=summary.representative,
                reason=(
                    "a weakly fair execution can stay at duplicate names "
                    f"forever: {names}"
                ),
            )
    return WeakFairnessVerdict(solves=True, explored_nodes=len(graph.nodes))


def failing_components(
    protocol: PopulationProtocol,
    population: Population,
    initial: Iterable[Configuration],
    max_nodes: int = 500_000,
    name_of: Callable[[object], object] | None = None,
) -> list[Configuration]:
    """Diagnostic: representatives of *all* SCCs witnessing failure."""
    project = name_of if name_of is not None else lambda state: state
    graph = explore(protocol, population, list(initial), max_nodes=max_nodes)
    all_pairs = {frozenset(p) for p in population.unordered_pairs()}
    witnesses: list[Configuration] = []
    for summary in _summarize_components(
        protocol, population, graph, project
    ):
        if summary.covered != all_pairs:
            continue
        names = tuple(
            project(s) for s in summary.representative.mobile_states
        )
        if summary.changes_mobile or len(set(names)) != len(names):
            witnesses.append(summary.representative)
    return witnesses
