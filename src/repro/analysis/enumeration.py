"""Exhaustive protocol enumeration: machine-verifying the lower bounds.

The paper's negative results (Propositions 1, 2, 4; Theorem 11) quantify
over *all* protocols, which testing cannot reproduce in general - but for
tiny state counts the space of deterministic protocols is finite and can be
enumerated outright.  This module generates every deterministic protocol of
a given shape (symmetric/asymmetric, leaderless/leadered) and model-checks
each one, so that e.g. "no 2-state symmetric leaderless protocol names 2
arbitrarily initialized agents under global fairness" becomes a theorem
checked by exhaustion, exactly matching Proposition 2's ``P``-state claim
at ``P = 2`` (and ``P = 3`` in the benchmark suite).

The same machinery confirms the positive side: enumerating *asymmetric*
leaderless protocols finds solvers - among them exactly the rule of
Proposition 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Callable, Iterator, Sequence

from repro.analysis.model_checker import check_naming_global
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.spec import Fairness, MobileInit
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol
from repro.engine.state import LeaderState, State
from repro.errors import VerificationError


@dataclass(frozen=True)
class EnumLeaderState(LeaderState):
    """Leader states for enumerated protocols: a bare integer tag."""

    value: int


@dataclass
class EnumerationResult:
    """Outcome of an exhaustive search over a protocol family."""

    total: int
    solving: list[TableProtocol] = field(default_factory=list)
    checked_sizes: tuple[int, ...] = ()

    @property
    def any_solves(self) -> bool:
        return bool(self.solving)


# ----------------------------------------------------------------------
# Protocol family generators
# ----------------------------------------------------------------------


def symmetric_leaderless_protocols(
    num_states: int,
) -> Iterator[TableProtocol]:
    """All deterministic symmetric leaderless protocols on
    ``{0, ..., num_states - 1}``.

    A symmetric protocol is determined by (a) for each state ``s`` the
    common output of ``(s, s)`` and (b) for each unordered pair ``{s, t}``
    the ordered output of ``(s, t)`` (the swapped rule is forced).
    """
    states = list(range(num_states))
    diag_choices = [states] * num_states  # output value of (s, s)
    off_pairs = list(combinations(states, 2))
    pair_outputs = list(product(states, states))
    off_choices = [pair_outputs] * len(off_pairs)
    for diag in product(*diag_choices):
        base: dict[tuple[State, State], tuple[State, State]] = {}
        for s, out in zip(states, diag):
            if out != s:
                base[(s, s)] = (out, out)
        for off in product(*off_choices):
            table = dict(base)
            for (s, t), (a, b) in zip(off_pairs, off):
                if (a, b) != (s, t):
                    table[(s, t)] = (a, b)
                    table[(t, s)] = (b, a)
            yield TableProtocol(
                table,
                states,
                symmetric=True,
                display_name=f"enum-sym-{num_states}",
            )


def asymmetric_leaderless_protocols(
    num_states: int,
) -> Iterator[TableProtocol]:
    """All deterministic (possibly asymmetric) leaderless protocols on
    ``{0, ..., num_states - 1}``.

    Exponentially larger than the symmetric family; use for tiny state
    counts only (``num_states = 2`` gives 65536 protocols).
    """
    states = list(range(num_states))
    inputs = list(product(states, states))
    outputs = list(product(states, states))
    for assignment in product(outputs, repeat=len(inputs)):
        table = {
            inp: out
            for inp, out in zip(inputs, assignment)
            if inp != out
        }
        yield TableProtocol(
            table,
            states,
            symmetric=False,
            display_name=f"enum-asym-{num_states}",
        )


def symmetric_leadered_protocols(
    num_states: int, num_leader_states: int
) -> Iterator[TableProtocol]:
    """All deterministic symmetric protocols with ``num_states`` mobile
    states and a leader over ``num_leader_states`` states.

    Mobile-mobile rules are symmetric as above; leader-mobile rules
    ``(l, s) -> (l', s')`` are free (their mirrored orientation is forced
    by symmetry and handled by :class:`TableProtocol` storing both)."""
    states = list(range(num_states))
    leaders = [EnumLeaderState(v) for v in range(num_leader_states)]
    # Mobile-mobile part.
    mm_protocols = list(symmetric_leaderless_protocols(num_states))
    # Leader-mobile part.
    lm_inputs = [(l, s) for l in leaders for s in states]
    lm_outputs = [(l, s) for l in leaders for s in states]
    for mm in mm_protocols:
        mm_table = mm.table
        for assignment in product(lm_outputs, repeat=len(lm_inputs)):
            table = dict(mm_table)
            identity = True
            for (l, s), (l2, s2) in zip(lm_inputs, assignment):
                if (l2, s2) != (l, s):
                    identity = False
                    table[(l, s)] = (l2, s2)
                    table[(s, l)] = (s2, l2)
            if identity and not mm_table:
                # The all-null protocol is still a valid member.
                pass
            yield TableProtocol(
                table,
                states,
                leader_states=leaders,
                symmetric=True,
                display_name=f"enum-sym-{num_states}-L{num_leader_states}",
            )


# ----------------------------------------------------------------------
# Search
# ----------------------------------------------------------------------


def _initial_sets(
    protocol: TableProtocol,
    population: Population,
    mobile_init: MobileInit,
    leader_inits: Sequence[State] | None,
) -> list[list[Configuration]]:
    """The alternative initial-configuration sets the designer may choose.

    Arbitrary init: one set containing every configuration.  Uniform init:
    one set per candidate initial value (the designer picks the best);
    with a leader, initial-leader choices multiply the alternatives when
    ``leader_inits`` lists more than one option.
    """
    mobile_space = sorted(protocol.mobile_state_space())
    leaders: list[State | None]
    if population.has_leader:
        leaders = list(
            leader_inits
            if leader_inits is not None
            else sorted(protocol.leader_state_space(), key=repr)
        )
    else:
        leaders = [None]

    if mobile_init is MobileInit.ARBITRARY:
        sets = []
        for leader in leaders:
            configs = [
                Configuration.from_states(population, mobiles, leader)
                for mobiles in product(
                    mobile_space, repeat=population.n_mobile
                )
            ]
            sets.append(configs)
        if len(sets) == 1:
            return sets
        # Arbitrary mobile init with a *choice* of leader init: the
        # designer picks the leader state, the adversary the mobiles.
        return sets
    # Uniform: designer picks one value (and one leader state).
    return [
        [Configuration.uniform(population, value, leader)]
        for value in mobile_space
        for leader in leaders
    ]


def protocol_solves_naming(
    protocol: TableProtocol,
    sizes: Sequence[int],
    fairness: Fairness,
    mobile_init: MobileInit = MobileInit.ARBITRARY,
    leader_inits: Sequence[State] | None = None,
    arbitrary_leader: bool = False,
) -> bool:
    """Whether a protocol solves naming for every population size in
    ``sizes`` under the given assumptions.

    ``leader_inits``/``arbitrary_leader`` select the leader model:
    ``arbitrary_leader=True`` requires correctness from *every* leader
    state simultaneously (non-initialized leader); otherwise the designer
    may pick any single leader state from ``leader_inits`` (defaulting to
    the whole leader space) - the initialized-leader model.
    """
    check: Callable = (
        check_naming_global if fairness is Fairness.GLOBAL else check_naming_weak
    )
    has_leader = bool(protocol.leader_state_space())

    if arbitrary_leader and has_leader:
        # Merge all leader choices into one obligatory initial set.
        def initial_alternatives(population: Population):
            leader_space = sorted(protocol.leader_state_space(), key=repr)
            mobile_space = sorted(protocol.mobile_state_space())
            if mobile_init is MobileInit.ARBITRARY:
                return [
                    [
                        Configuration.from_states(population, mobiles, leader)
                        for mobiles in product(
                            mobile_space, repeat=population.n_mobile
                        )
                        for leader in leader_space
                    ]
                ]
            return [
                [
                    Configuration.uniform(population, value, leader)
                    for leader in leader_space
                ]
                for value in mobile_space
            ]

    else:

        def initial_alternatives(population: Population):
            return _initial_sets(
                protocol, population, mobile_init, leader_inits
            )

    # The designer commits to ONE alternative that must work for ALL sizes.
    populations = [Population(n, has_leader) for n in sizes]
    alternative_lists = [initial_alternatives(pop) for pop in populations]
    n_alternatives = {len(alts) for alts in alternative_lists}
    if len(n_alternatives) != 1:
        raise VerificationError(
            "initial-configuration alternatives must align across sizes"
        )
    for choice in range(n_alternatives.pop()):
        if all(
            check(protocol, pop, alts[choice]).solves
            for pop, alts in zip(populations, alternative_lists)
        ):
            return True
    return False


def search(
    protocols: Iterator[TableProtocol],
    sizes: Sequence[int],
    fairness: Fairness,
    mobile_init: MobileInit = MobileInit.ARBITRARY,
    leader_inits: Sequence[State] | None = None,
    arbitrary_leader: bool = False,
    stop_after: int | None = None,
    collect_limit: int = 8,
) -> EnumerationResult:
    """Run :func:`protocol_solves_naming` over a protocol family.

    ``stop_after`` truncates the enumeration (for sampling in quick test
    runs); ``collect_limit`` caps how many solving protocols are retained.
    """
    total = 0
    solving: list[TableProtocol] = []
    for protocol in protocols:
        total += 1
        if protocol_solves_naming(
            protocol,
            sizes,
            fairness,
            mobile_init=mobile_init,
            leader_inits=leader_inits,
            arbitrary_leader=arbitrary_leader,
        ):
            if len(solving) < collect_limit:
                solving.append(protocol)
        if stop_after is not None and total >= stop_after:
            break
    return EnumerationResult(
        total=total, solving=solving, checked_sizes=tuple(sizes)
    )
