"""Experiment ``exp-s5``: exact-verification scaling (plus, with
``--simulate``, a large-N simulation-backend sweep).

How far does each verification technique reach?  This experiment measures
explored state-space sizes and wall-clock time for the labelled checker,
the quotient checker and the weak-fairness checker across instance sizes,
on the paper's protocols.  It quantifies the reproduction's verification
story: the quotient abstraction buys roughly ``N!`` and pushes exact
verification past everything simulation can certify (most strikingly
Protocol 3 at ``N = P = 5``).

The ``--simulate`` mode asks the complementary question - how far does
*simulation* reach?  It sweeps the asymmetric naming dynamics
(Proposition 12) up to ten billion agents on the fast, count-based,
leap and fluid backends, measuring interactions/second at each size.
The fast backend's rate is size-independent but it stops being
practical to *hold* the population beyond ~10^5 agents; the counts
backend keeps O(states) memory and a size-independent rate to
N = 10^6; the approximate leap backend aggregates whole windows of
interactions per multinomial draw and completes the full ``10 N``
naming horizon to N = 10^8, where the O(N) agent-vector edges (initial
tuple, state-tally interning) become *its* wall; the mean-field fluid
backend runs counts-native (never building an agent vector at all) and
alone finishes the full horizon at N = 10^9-10^10.  (The sweep times
single runs; for many-replicate workloads at these sizes the batched
tau-leaping ensemble engine ``bleap`` applies the same windowing to a
whole replicate matrix at once - benchmarked by ``repro bench``.)

``python -m repro.experiments.scaling`` prints the table.  Points are
independent, so ``--jobs K`` fans them out over worker processes;
``--backend`` restricts the sweep to one backend's cells.
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.model_checker import check_naming_global
from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.fast import make_simulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.experiments.report import render_table
from repro.schedulers.random_pair import RandomPairScheduler


@dataclass(frozen=True)
class ScalePoint:
    """One (protocol, size, technique) measurement."""

    protocol: str
    n_mobile: int
    bound: int
    technique: str
    nodes: int
    seconds: float
    solves: bool


def _point_specs(max_quotient_n: int) -> list[tuple[str, int, str]]:
    """The (protocol label, N, technique) cells of the default study.

    Plain tuples so that ``run_scaling(n_jobs > 1)`` can pickle them to
    worker processes; :func:`_run_point` rebuilds the heavyweight objects
    on the worker side.
    """
    specs: list[tuple[str, int, str]] = []

    # Proposition 13's protocol: labelled vs quotient, N = P.
    for n in range(3, max_quotient_n + 1):
        if n <= 4:  # labelled blow-up: (n+1)^n nodes
            specs.append(("Prop. 13", n, "global (labelled)"))
        specs.append(("Prop. 13", n, "global (quotient)"))

    # Protocol 3: the N = P case nobody can simulate.
    for n in range(2, min(max_quotient_n, 5) + 1):
        if n <= 4:
            specs.append(("Protocol 3", n, "global (labelled)"))
        specs.append(("Protocol 3", n, "global (quotient)"))

    # Protocol 2 under the weak checker (self-stabilizing: full space).
    for n in (2, 3):
        specs.append(("Protocol 2", n, "weak (labelled)"))
    return specs


def _run_point(spec: tuple[str, int, str]) -> ScalePoint:
    """Build and time one (protocol, size, technique) measurement.

    Module-level so process pools can pickle it.
    """
    label, n, technique = spec
    if label == "Prop. 13":
        protocol = SymmetricGlobalNamingProtocol(n)
        population = Population(n)
        leaders = None
    elif label == "Protocol 3":
        protocol = GlobalNamingProtocol(n)
        population = Population(n, has_leader=True)
        leaders = [protocol.initial_leader_state()]
    else:
        protocol = SelfStabilizingNamingProtocol(n)
        population = Population(n, has_leader=True)
        leaders = None

    start = time.perf_counter()
    if technique == "global (labelled)":
        verdict = check_naming_global(
            protocol,
            population,
            arbitrary_initial_configurations(protocol, population, leaders)
            if leaders
            else arbitrary_initial_configurations(protocol, population),
        )
    elif technique == "global (quotient)":
        verdict = check_naming_global_quotient(
            protocol,
            arbitrary_quotient_initials(protocol, n, leaders)
            if leaders
            else arbitrary_quotient_initials(protocol, n),
        )
    else:
        verdict = check_naming_weak(
            protocol,
            population,
            arbitrary_initial_configurations(protocol, population),
        )
    return ScalePoint(
        protocol=label,
        n_mobile=n,
        bound=n,
        technique=technique,
        nodes=verdict.explored_nodes,
        seconds=time.perf_counter() - start,
        solves=verdict.solves,
    )


@dataclass(frozen=True)
class SimulationScalePoint:
    """One (backend, N) simulation-throughput measurement."""

    backend: str
    n_mobile: int
    interactions: int
    non_null_interactions: int
    seconds: float

    @property
    def rate(self) -> float:
        """Interactions per second."""
        return self.interactions / self.seconds if self.seconds else 0.0


#: Population sizes of the default ``--simulate`` sweep.  Sizes
#: 10^7-10^8 are served by the windowed leap and fluid backends;
#: 10^9-10^10 by the counts-native fluid backend alone - no agent
#: vector of that size can even be built.
SIMULATION_SIZES = (
    10**3, 10**4, 10**5, 10**6, 10**7, 10**8, 10**9, 10**10,
)

#: Largest population the fast (per-agent) backend is swept to; above
#: this only the count-based backends run.
FAST_MAX_N = 10**5

#: Largest population the exact counts backend is swept to; above this
#: only the windowed backends run (their per-window cost is independent
#: of both N and the interaction budget).
COUNTS_MAX_N = 10**6

#: Largest population the leap backend is swept to.  Its windows are
#: size-independent, but its run contract still builds, interns and
#: materializes O(N) agent vectors - affordable to 10^8, not beyond.
LEAP_MAX_N = 10**8

#: Smallest population the fluid backend is swept at; below this the
#: mean-field fast-forward degenerates to the leap cell it would wrap.
FLUID_MIN_N = 10**6

#: Interaction budget per cell: the standard ``10 N`` horizon, capped
#: for the exact (per-interaction-cost) backends so large-N cells stay
#: affordable.  The leap backend takes the full uncapped horizon - that
#: is the point of the demonstration.
EXACT_BUDGET_CAP = 2_000_000

#: Name bound of the swept asymmetric naming dynamics; with N far above
#: it the workload never converges, so every budgeted interaction is
#: measured.
SIMULATION_BOUND = 8


def _run_simulation_point(
    spec: tuple[str, int, int],
) -> SimulationScalePoint:
    """Time one (backend, N) sweep cell.  Module-level for pickling."""
    backend, n, seed = spec
    protocol = AsymmetricNamingProtocol(SIMULATION_BOUND)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = make_simulator(
        backend, protocol, population, scheduler, NamingProblem()
    )
    space = sorted(protocol.mobile_state_space())
    if backend == "fluid":
        # Counts-native: the same spread start as the other cells, as a
        # {state: count} tally - at N = 10^9-10^10 an agent tuple could
        # not be built at all.
        base, extra = divmod(n, len(space))
        counts = {
            state: base + (1 if i < extra else 0)
            for i, state in enumerate(space)
        }
        start = time.perf_counter()
        result = simulator.run_counts(counts, max_interactions=10 * n)
        return SimulationScalePoint(
            backend=backend,
            n_mobile=n,
            interactions=result.interactions,
            non_null_interactions=result.non_null_interactions,
            seconds=time.perf_counter() - start,
        )
    # Tuple concatenation builds the spread initial at C speed; the
    # genexpr equivalent costs ~10 s alone at N = 10^8.
    initial = Configuration(
        tuple(space) * (n // len(space)) + tuple(space[: n % len(space)]),
        None,
    )
    budget = 10 * n if backend == "leap" else min(10 * n, EXACT_BUDGET_CAP)
    start = time.perf_counter()
    result = simulator.run(initial, max_interactions=budget)
    return SimulationScalePoint(
        backend=backend,
        n_mobile=n,
        interactions=result.interactions,
        non_null_interactions=result.non_null_interactions,
        seconds=time.perf_counter() - start,
    )


def run_simulation_scaling(
    max_n: int = 10**6,
    seed: int = 2018,
    n_jobs: int = 1,
    backends: tuple[str, ...] = ("fast", "counts", "leap", "fluid"),
) -> list[SimulationScalePoint]:
    """Sweep the naming dynamics across backends and population sizes.

    The fast backend runs up to :data:`FAST_MAX_N`, the exact counts
    backend up to :data:`COUNTS_MAX_N`, the leap backend up to
    :data:`LEAP_MAX_N`, and the counts-native fluid backend from
    :data:`FLUID_MIN_N` to every size up to ``max_n`` (it alone reaches
    N = 10^9-10^10).  ``backends`` restricts the sweep (the
    ``--backend`` CLI flag).
    """
    specs = [
        (backend, n, seed)
        for n in SIMULATION_SIZES
        if n <= max_n
        for backend in backends
        if (backend == "fluid" and n >= FLUID_MIN_N)
        or (backend == "leap" and n <= LEAP_MAX_N)
        or (backend == "counts" and n <= COUNTS_MAX_N)
        or (backend == "fast" and n <= FAST_MAX_N)
    ]
    if n_jobs > 1 and len(specs) > 1:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(_run_simulation_point, specs))
    return [_run_simulation_point(spec) for spec in specs]


def render_simulation_points(points: list[SimulationScalePoint]) -> str:
    """Render the simulation sweep as an aligned text table."""
    rows = [
        (
            p.n_mobile,
            p.backend,
            p.interactions,
            p.non_null_interactions,
            f"{p.seconds * 1000:.0f} ms",
            f"{p.rate:,.0f}/s",
        )
        for p in points
    ]
    return render_table(
        ("N", "backend", "interactions", "non-null", "time", "rate"),
        rows,
        title=(
            "simulation scaling: asymmetric naming dynamics "
            f"(P = {SIMULATION_BOUND}, uniform random scheduler)"
        ),
    )


def run_scaling(
    max_quotient_n: int = 6, n_jobs: int = 1
) -> list[ScalePoint]:
    """The default scaling study; ``n_jobs > 1`` measures points in
    parallel worker processes (per-point timings are unaffected)."""
    specs = _point_specs(max_quotient_n)
    if n_jobs > 1 and len(specs) > 1:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(_run_point, specs))
    return [_run_point(spec) for spec in specs]


def render_points(points: list[ScalePoint]) -> str:
    """Render the scaling measurements as an aligned text table."""
    rows = [
        (
            p.protocol,
            p.n_mobile,
            p.technique,
            p.nodes,
            f"{p.seconds * 1000:.0f} ms",
            "solves" if p.solves else "FAILS",
        )
        for p in points
    ]
    return render_table(
        ("protocol", "N = P", "technique", "explored", "time", "verdict"),
        rows,
        title="exact-verification scaling (exp-s5)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s5 from the command line."""
    parser = argparse.ArgumentParser(
        description="Exact-verification scaling measurements."
    )
    parser.add_argument("--max-n", type=int, default=6)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent points",
    )
    parser.add_argument(
        "--simulate",
        action="store_true",
        help=(
            "run the large-N simulation-backend sweep instead of the "
            "exact-verification study (--max-n is the largest population)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2018, help="--simulate scheduler seed"
    )
    parser.add_argument(
        "--backend",
        choices=("fast", "counts", "leap", "fluid"),
        default=None,
        help="restrict the --simulate sweep to one backend's cells",
    )
    args = parser.parse_args(argv)
    if args.simulate:
        max_n = args.max_n if args.max_n > 6 else 10**10
        backends = (
            (args.backend,)
            if args.backend
            else ("fast", "counts", "leap", "fluid")
        )
        sim_points = run_simulation_scaling(
            max_n=max_n, seed=args.seed, n_jobs=args.jobs,
            backends=backends,
        )
        print(render_simulation_points(sim_points))
        return 0
    points = run_scaling(max_quotient_n=args.max_n, n_jobs=args.jobs)
    print(render_points(points))
    return 0 if all(p.solves for p in points) else 1


if __name__ == "__main__":
    raise SystemExit(main())
