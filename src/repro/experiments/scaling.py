"""Experiment ``exp-s5``: exact-verification scaling.

How far does each verification technique reach?  This experiment measures
explored state-space sizes and wall-clock time for the labelled checker,
the quotient checker and the weak-fairness checker across instance sizes,
on the paper's protocols.  It quantifies the reproduction's verification
story: the quotient abstraction buys roughly ``N!`` and pushes exact
verification past everything simulation can certify (most strikingly
Protocol 3 at ``N = P = 5``).

``python -m repro.experiments.scaling`` prints the table.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.analysis.model_checker import check_naming_global
from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.population import Population
from repro.experiments.report import render_table


@dataclass(frozen=True)
class ScalePoint:
    """One (protocol, size, technique) measurement."""

    protocol: str
    n_mobile: int
    bound: int
    technique: str
    nodes: int
    seconds: float
    solves: bool


def _measure(label, protocol, n, bound, technique, check) -> ScalePoint:
    start = time.perf_counter()
    verdict = check()
    return ScalePoint(
        protocol=label,
        n_mobile=n,
        bound=bound,
        technique=technique,
        nodes=verdict.explored_nodes,
        seconds=time.perf_counter() - start,
        solves=verdict.solves,
    )


def run_scaling(max_quotient_n: int = 6) -> list[ScalePoint]:
    """The default scaling study."""
    points: list[ScalePoint] = []

    # Proposition 13's protocol: labelled vs quotient, N = P.
    for n in range(3, max_quotient_n + 1):
        protocol = SymmetricGlobalNamingProtocol(n)
        population = Population(n)
        if n <= 4:  # labelled blow-up: (n+1)^n nodes
            points.append(
                _measure(
                    "Prop. 13",
                    protocol,
                    n,
                    n,
                    "global (labelled)",
                    lambda p=protocol, pop=population: check_naming_global(
                        p, pop, arbitrary_initial_configurations(p, pop)
                    ),
                )
            )
        points.append(
            _measure(
                "Prop. 13",
                protocol,
                n,
                n,
                "global (quotient)",
                lambda p=protocol, n_=n: check_naming_global_quotient(
                    p, arbitrary_quotient_initials(p, n_)
                ),
            )
        )

    # Protocol 3: the N = P case nobody can simulate.
    for n in range(2, min(max_quotient_n, 5) + 1):
        protocol = GlobalNamingProtocol(n)
        leaders = [protocol.initial_leader_state()]
        if n <= 4:
            population = Population(n, has_leader=True)
            points.append(
                _measure(
                    "Protocol 3",
                    protocol,
                    n,
                    n,
                    "global (labelled)",
                    lambda p=protocol, pop=population, ls=leaders: (
                        check_naming_global(
                            p,
                            pop,
                            arbitrary_initial_configurations(p, pop, ls),
                        )
                    ),
                )
            )
        points.append(
            _measure(
                "Protocol 3",
                protocol,
                n,
                n,
                "global (quotient)",
                lambda p=protocol, n_=n, ls=leaders: (
                    check_naming_global_quotient(
                        p, arbitrary_quotient_initials(p, n_, ls)
                    )
                ),
            )
        )

    # Protocol 2 under the weak checker (self-stabilizing: full space).
    for n in (2, 3):
        protocol = SelfStabilizingNamingProtocol(n)
        population = Population(n, has_leader=True)
        points.append(
            _measure(
                "Protocol 2",
                protocol,
                n,
                n,
                "weak (labelled)",
                lambda p=protocol, pop=population: check_naming_weak(
                    p, pop, arbitrary_initial_configurations(p, pop)
                ),
            )
        )
    return points


def render_points(points: list[ScalePoint]) -> str:
    """Render the scaling measurements as an aligned text table."""
    rows = [
        (
            p.protocol,
            p.n_mobile,
            p.technique,
            p.nodes,
            f"{p.seconds * 1000:.0f} ms",
            "solves" if p.solves else "FAILS",
        )
        for p in points
    ]
    return render_table(
        ("protocol", "N = P", "technique", "explored", "time", "verdict"),
        rows,
        title="exact-verification scaling (exp-s5)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s5 from the command line."""
    parser = argparse.ArgumentParser(
        description="Exact-verification scaling measurements."
    )
    parser.add_argument("--max-n", type=int, default=6)
    args = parser.parse_args(argv)
    points = run_scaling(max_quotient_n=args.max_n)
    print(render_points(points))
    return 0 if all(p.solves for p in points) else 1


if __name__ == "__main__":
    raise SystemExit(main())
