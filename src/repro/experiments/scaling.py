"""Experiment ``exp-s5``: exact-verification scaling.

How far does each verification technique reach?  This experiment measures
explored state-space sizes and wall-clock time for the labelled checker,
the quotient checker and the weak-fairness checker across instance sizes,
on the paper's protocols.  It quantifies the reproduction's verification
story: the quotient abstraction buys roughly ``N!`` and pushes exact
verification past everything simulation can certify (most strikingly
Protocol 3 at ``N = P = 5``).

``python -m repro.experiments.scaling`` prints the table.  Points are
independent, so ``--jobs K`` fans them out over worker processes.
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.model_checker import check_naming_global
from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.population import Population
from repro.experiments.report import render_table


@dataclass(frozen=True)
class ScalePoint:
    """One (protocol, size, technique) measurement."""

    protocol: str
    n_mobile: int
    bound: int
    technique: str
    nodes: int
    seconds: float
    solves: bool


def _point_specs(max_quotient_n: int) -> list[tuple[str, int, str]]:
    """The (protocol label, N, technique) cells of the default study.

    Plain tuples so that ``run_scaling(n_jobs > 1)`` can pickle them to
    worker processes; :func:`_run_point` rebuilds the heavyweight objects
    on the worker side.
    """
    specs: list[tuple[str, int, str]] = []

    # Proposition 13's protocol: labelled vs quotient, N = P.
    for n in range(3, max_quotient_n + 1):
        if n <= 4:  # labelled blow-up: (n+1)^n nodes
            specs.append(("Prop. 13", n, "global (labelled)"))
        specs.append(("Prop. 13", n, "global (quotient)"))

    # Protocol 3: the N = P case nobody can simulate.
    for n in range(2, min(max_quotient_n, 5) + 1):
        if n <= 4:
            specs.append(("Protocol 3", n, "global (labelled)"))
        specs.append(("Protocol 3", n, "global (quotient)"))

    # Protocol 2 under the weak checker (self-stabilizing: full space).
    for n in (2, 3):
        specs.append(("Protocol 2", n, "weak (labelled)"))
    return specs


def _run_point(spec: tuple[str, int, str]) -> ScalePoint:
    """Build and time one (protocol, size, technique) measurement.

    Module-level so process pools can pickle it.
    """
    label, n, technique = spec
    if label == "Prop. 13":
        protocol = SymmetricGlobalNamingProtocol(n)
        population = Population(n)
        leaders = None
    elif label == "Protocol 3":
        protocol = GlobalNamingProtocol(n)
        population = Population(n, has_leader=True)
        leaders = [protocol.initial_leader_state()]
    else:
        protocol = SelfStabilizingNamingProtocol(n)
        population = Population(n, has_leader=True)
        leaders = None

    start = time.perf_counter()
    if technique == "global (labelled)":
        verdict = check_naming_global(
            protocol,
            population,
            arbitrary_initial_configurations(protocol, population, leaders)
            if leaders
            else arbitrary_initial_configurations(protocol, population),
        )
    elif technique == "global (quotient)":
        verdict = check_naming_global_quotient(
            protocol,
            arbitrary_quotient_initials(protocol, n, leaders)
            if leaders
            else arbitrary_quotient_initials(protocol, n),
        )
    else:
        verdict = check_naming_weak(
            protocol,
            population,
            arbitrary_initial_configurations(protocol, population),
        )
    return ScalePoint(
        protocol=label,
        n_mobile=n,
        bound=n,
        technique=technique,
        nodes=verdict.explored_nodes,
        seconds=time.perf_counter() - start,
        solves=verdict.solves,
    )


def run_scaling(
    max_quotient_n: int = 6, n_jobs: int = 1
) -> list[ScalePoint]:
    """The default scaling study; ``n_jobs > 1`` measures points in
    parallel worker processes (per-point timings are unaffected)."""
    specs = _point_specs(max_quotient_n)
    if n_jobs > 1 and len(specs) > 1:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(_run_point, specs))
    return [_run_point(spec) for spec in specs]


def render_points(points: list[ScalePoint]) -> str:
    """Render the scaling measurements as an aligned text table."""
    rows = [
        (
            p.protocol,
            p.n_mobile,
            p.technique,
            p.nodes,
            f"{p.seconds * 1000:.0f} ms",
            "solves" if p.solves else "FAILS",
        )
        for p in points
    ]
    return render_table(
        ("protocol", "N = P", "technique", "explored", "time", "verdict"),
        rows,
        title="exact-verification scaling (exp-s5)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s5 from the command line."""
    parser = argparse.ArgumentParser(
        description="Exact-verification scaling measurements."
    )
    parser.add_argument("--max-n", type=int, default=6)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent points",
    )
    args = parser.parse_args(argv)
    points = run_scaling(max_quotient_n=args.max_n, n_jobs=args.jobs)
    print(render_points(points))
    return 0 if all(p.solves for p in points) else 1


if __name__ == "__main__":
    raise SystemExit(main())
