"""Experiment ``exp-s4``: scheduler ablation.

The same protocol meets very different adversaries: the randomized
scheduler (globally fair w.p. 1), deterministic round robin and the
homonym-preserving adversary (both weakly fair), and the matching-phase
scheduler of Proposition 1's proof.  This experiment runs each positive
protocol under each scheduler it is specified for, plus the mismatched
combinations the paper predicts to fail:

* Proposition 13's protocol (global fairness only) under the weakly fair
  round robin - the paper implies it may livelock, and it does;
* any symmetric protocol under the matching adversary from a uniform even
  start - never converges (Proposition 1).

``python -m repro.experiments.ablation`` prints the matrix.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.core.transformer import ProjectedNamingProblem, SymmetrizedProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import Simulator
from repro.experiments.report import check_mark, render_table
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.matching import MatchingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler


@dataclass(frozen=True)
class AblationPoint:
    """One (protocol, scheduler) combination."""

    protocol: str
    scheduler: str
    n_mobile: int
    expect_convergence: bool
    converged: bool
    interactions: int

    @property
    def matches(self) -> bool:
        return self.converged == self.expect_convergence


def _run(
    protocol: PopulationProtocol,
    population: Population,
    scheduler: Scheduler,
    initial: Configuration,
    expect: bool,
    budget: int,
    problem=None,
) -> AblationPoint:
    simulator = Simulator(
        protocol, population, scheduler, problem or NamingProblem()
    )
    result = simulator.run(initial, max_interactions=budget)
    return AblationPoint(
        protocol=protocol.display_name,
        scheduler=scheduler.display_name,
        n_mobile=population.n_mobile,
        expect_convergence=expect,
        converged=result.converged,
        interactions=(
            result.convergence_interaction
            if result.convergence_interaction is not None
            else result.interactions
        ),
    )


def run_ablation(
    bound: int = 6, seed: int = 7, budget: int = 500_000
) -> list[AblationPoint]:
    """The default scheduler-ablation matrix."""
    points: list[AblationPoint] = []
    n = bound  # even bound keeps the matching adversary exact
    if n % 2:
        n -= 1

    # Asymmetric protocol: correct under EVERY fair scheduler.
    protocol: PopulationProtocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    start = Configuration.uniform(population, 0)
    for scheduler in (
        RandomPairScheduler(population, seed=seed),
        RoundRobinScheduler(population, seed=seed),
        HomonymPreservingScheduler(population, protocol, seed=seed),
        MatchingScheduler(population, seed=seed),
    ):
        points.append(
            _run(protocol, population, scheduler, start, True, budget)
        )

    # Prop. 13 protocol: global fairness only.
    protocol = SymmetricGlobalNamingProtocol(bound)
    start = Configuration.uniform(population, 1)
    points.append(
        _run(
            protocol,
            population,
            RandomPairScheduler(population, seed=seed),
            start,
            True,
            budget,
        )
    )
    # A weakly fair scheduler may livelock it: Proposition 1's matching
    # adversary provably does from a uniform start (phases of disjoint
    # meetings keep all agents in identical states forever).
    points.append(
        _run(
            protocol,
            population,
            MatchingScheduler(population, seed=seed),
            start,
            False,
            budget - budget % max(1, n // 2),
        )
    )

    # Protocol 2: weakly fair schedulers suffice (and random w.p. 1).
    protocol = SelfStabilizingNamingProtocol(bound)
    leadered = Population(n, has_leader=True)
    start = Configuration.uniform(
        leadered, 0, protocol.initial_leader_state()
    )
    for scheduler in (
        RoundRobinScheduler(leadered, seed=seed),
        HomonymPreservingScheduler(leadered, protocol, seed=seed),
        RandomPairScheduler(leadered, seed=seed),
    ):
        points.append(
            _run(protocol, leadered, scheduler, start, True, budget)
        )

    # Footnote 5's transformer: the symmetrized asymmetric protocol pays
    # 2P states and, like every matching-synchronized symmetric protocol,
    # livelocks under Proposition 1's adversary while converging under the
    # randomized (globally fair) scheduler.
    transformed = SymmetrizedProtocol(AsymmetricNamingProtocol(bound))
    population = Population(n)
    start = Configuration.uniform(population, (0, 0))
    problem = ProjectedNamingProblem()
    points.append(
        _run(
            transformed,
            population,
            RandomPairScheduler(population, seed=seed),
            start,
            True,
            budget,
            problem=problem,
        )
    )
    points.append(
        _run(
            transformed,
            population,
            MatchingScheduler(population, seed=seed),
            start,
            False,
            budget - budget % max(1, n // 2),
            problem=problem,
        )
    )
    return points


def render_points(points: list[AblationPoint]) -> str:
    """Render the ablation matrix as an aligned text table."""
    rows = [
        (
            p.protocol,
            p.scheduler,
            p.n_mobile,
            "converge" if p.expect_convergence else "livelock",
            "converged" if p.converged else "no convergence",
            p.interactions,
            check_mark(p.matches),
        )
        for p in points
    ]
    return render_table(
        (
            "protocol",
            "scheduler",
            "N",
            "expected",
            "observed",
            "interactions",
            "verdict",
        ),
        rows,
        title="scheduler ablation",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s4 from the command line."""
    parser = argparse.ArgumentParser(description="Scheduler ablation matrix.")
    parser.add_argument("--bound", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--budget", type=int, default=500_000)
    args = parser.parse_args(argv)
    points = run_ablation(args.bound, args.seed, args.budget)
    print(render_points(points))
    return 0 if all(p.matches for p in points) else 1


if __name__ == "__main__":
    raise SystemExit(main())
