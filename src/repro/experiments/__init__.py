"""Experiment harness: the Table 1 regeneration and the supplementary
measurements indexed in DESIGN.md."""

from repro.experiments.ablation import AblationPoint, run_ablation
from repro.experiments.bench import BenchPoint, ChurnProtocol, run_bench
from repro.experiments.convergence import SeriesPoint, run_convergence
from repro.experiments.exact_times import ExactTimePoint, run_exact_times
from repro.experiments.full_report import build_report
from repro.experiments.lower_bounds import BoundCheck, default_checks
from repro.experiments.recovery import RecoveryPoint, run_recovery
from repro.experiments.report import bullet_list, check_mark, render_table
from repro.experiments.scaling import ScalePoint, run_scaling
from repro.experiments.time_study import (
    PowerLawFit,
    fit_power_law,
    run_time_study,
)
from repro.experiments.tradeoffs import TradeoffRow, run_tradeoffs
from repro.experiments.table1 import Table1Row, render_rows, run_table1

__all__ = [
    "AblationPoint",
    "BenchPoint",
    "BoundCheck",
    "ChurnProtocol",
    "ExactTimePoint",
    "PowerLawFit",
    "RecoveryPoint",
    "ScalePoint",
    "SeriesPoint",
    "Table1Row",
    "TradeoffRow",
    "build_report",
    "bullet_list",
    "check_mark",
    "default_checks",
    "fit_power_law",
    "render_rows",
    "render_table",
    "run_ablation",
    "run_bench",
    "run_convergence",
    "run_exact_times",
    "run_recovery",
    "run_scaling",
    "run_table1",
    "run_time_study",
    "run_tradeoffs",
]
