"""Plain-text table rendering for experiment reports.

No third-party dependency; the experiments print aligned monospace tables
comparing the paper's claims to measured outcomes.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def bullet_list(items: Sequence[str], indent: str = "  ") -> str:
    """Render items as an indented bullet list."""
    return "\n".join(f"{indent}- {item}" for item in items)


def check_mark(ok: bool) -> str:
    """ASCII verdict marker."""
    return "OK " if ok else "FAIL"
