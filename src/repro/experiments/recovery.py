"""Experiment ``exp-s2``: self-stabilizing recovery after transient faults.

The paper motivates its exact space analysis with transient memory
corruption: "the less volatile memory is used by a protocol, the less it is
vulnerable to corruptions".  This experiment makes the claim concrete: each
self-stabilizing protocol is run to certified convergence, its state is
then corrupted (a few agents, all agents, or the leader's variables), and
re-convergence is measured.

``python -m repro.experiments.recovery`` prints the recovery costs.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.stats import Summary, summarize
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.selfstab_naming import (
    SelfStabilizingNamingProtocol,
    SelfStabLeaderState,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import Simulator
from repro.errors import ConvergenceError
from repro.experiments.report import render_table
from repro.faults.injection import (
    Corruption,
    corrupt_all_mobile_to,
    corrupt_leader_to,
    corrupt_random_mobile,
)
from repro.schedulers.random_pair import RandomPairScheduler


@dataclass(frozen=True)
class RecoveryPoint:
    """Recovery cost for one (protocol, corruption) pair."""

    protocol: str
    corruption: str
    n_mobile: int
    summary: Summary


def _converge(
    protocol: PopulationProtocol,
    population: Population,
    seed: int,
    budget: int,
) -> Configuration:
    """Run from an adversarial uniform start to certified convergence."""
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())
    mobile0 = sorted(protocol.mobile_state_space())[0]
    leader = protocol.initial_leader_state() if population.has_leader else None
    initial = Configuration.uniform(population, mobile0, leader)
    result = simulator.run(initial, max_interactions=budget)
    if not result.converged:
        raise ConvergenceError(
            f"{protocol.display_name} failed its pre-fault convergence",
            interactions=result.interactions,
        )
    return result.final_configuration


def measure_recovery(
    protocol: PopulationProtocol,
    population: Population,
    corruption: Corruption,
    label: str,
    seeds: range,
    budget: int,
) -> RecoveryPoint:
    """Corrupt a converged configuration and measure re-convergence."""
    sample: list[int] = []
    for seed in seeds:
        converged = _converge(protocol, population, seed, budget)
        corrupted = corruption(converged)
        scheduler = RandomPairScheduler(population, seed=seed + 10_000)
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(corrupted, max_interactions=budget)
        if not result.converged:
            raise ConvergenceError(
                f"{protocol.display_name} did not recover from {label}",
                interactions=result.interactions,
            )
        assert result.convergence_interaction is not None
        sample.append(result.convergence_interaction)
    return RecoveryPoint(
        protocol=protocol.display_name,
        corruption=label,
        n_mobile=population.n_mobile,
        summary=summarize(sample),
    )


def run_recovery(
    bound: int = 8,
    n_mobile: int = 6,
    runs: int = 15,
    budget: int = 2_000_000,
) -> list[RecoveryPoint]:
    """The default recovery study over the self-stabilizing protocols."""
    points: list[RecoveryPoint] = []

    # Asymmetric protocol (Prop. 12): leaderless, self-stabilizing.
    protocol: PopulationProtocol = AsymmetricNamingProtocol(bound)
    population = Population(n_mobile)
    for count in (1, n_mobile // 2, n_mobile):
        label = f"corrupt {count} mobile agent(s)"
        points.append(
            measure_recovery(
                protocol,
                population,
                corrupt_random_mobile(population, protocol, count, seed=99),
                label,
                range(runs),
                budget,
            )
        )
    points.append(
        measure_recovery(
            protocol,
            population,
            corrupt_all_mobile_to(population, 0),
            "all mobile agents to one name",
            range(runs),
            budget,
        )
    )

    # Symmetric leaderless protocol (Prop. 13).
    protocol = SymmetricGlobalNamingProtocol(bound)
    points.append(
        measure_recovery(
            protocol,
            population,
            corrupt_all_mobile_to(population, bound),
            "all mobile agents to the reset state",
            range(runs),
            budget,
        )
    )

    # Protocol 2 (Prop. 16): leader included in the fault model.
    protocol = SelfStabilizingNamingProtocol(bound)
    leadered = Population(n_mobile, has_leader=True)
    points.append(
        measure_recovery(
            protocol,
            leadered,
            corrupt_all_mobile_to(leadered, 0),
            "all mobile agents to the sink",
            range(runs),
            budget,
        )
    )
    overflowed = SelfStabLeaderState(bound + 1, 2**bound)
    points.append(
        measure_recovery(
            protocol,
            leadered,
            corrupt_leader_to(leadered, overflowed),
            "leader guess overflowed (names untouched: benign)",
            range(runs),
            budget,
        )
    )
    amnesia = SelfStabLeaderState(0, 0)
    points.append(
        measure_recovery(
            protocol,
            leadered,
            corrupt_leader_to(leadered, amnesia),
            "leader forgets its count (renames from scratch)",
            range(runs),
            budget,
        )
    )
    return points


def render_points(points: list[RecoveryPoint]) -> str:
    """Render the recovery measurements as an aligned text table."""
    rows = [
        (
            p.protocol,
            p.corruption,
            p.n_mobile,
            f"{p.summary.mean:.0f}",
            f"{p.summary.p90:.0f}",
            p.summary.maximum,
        )
        for p in points
    ]
    return render_table(
        ("protocol", "corruption", "N", "mean", "p90", "max"),
        rows,
        title="interactions to re-convergence after transient corruption",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s2 from the command line."""
    parser = argparse.ArgumentParser(
        description="Self-stabilizing recovery measurements."
    )
    parser.add_argument("--bound", type=int, default=8)
    parser.add_argument("--n", type=int, default=6, dest="n_mobile")
    parser.add_argument("--runs", type=int, default=15)
    parser.add_argument("--budget", type=int, default=2_000_000)
    args = parser.parse_args(argv)
    points = run_recovery(args.bound, args.n_mobile, args.runs, args.budget)
    print(render_points(points))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
