"""Experiment ``exp-s1``: convergence cost versus population size.

The paper is an exact *space* study and makes no time claims; this
supplementary experiment measures what the space-optimal protocols cost in
interactions, for each positive Table 1 cell, under the randomized
scheduler (the standard cost model of the population-protocol literature).

``python -m repro.experiments.convergence`` prints one series per protocol:
mean/median/p90 interactions to certified convergence as ``N`` grows.
``--backend`` selects the simulation engine (default ``auto``: batched
tau-leaping ``bleap`` at large N, lockstep ``batch`` below, falling back
down the backend ladder per run when needed), ``--jobs K`` fans seeds
out over processes, and ``--verbose`` appends each cell's aggregated
wall-clock/throughput stats (including leap-window counts when the
tau-leaping engine served the cell).
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass, field

from repro.analysis.stats import Summary, summarize
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.fast import BACKENDS
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import RunStats
from repro.errors import ConvergenceError
from repro.experiments.report import render_table
from repro.schedulers.random_pair import RandomPairScheduler


@dataclass(frozen=True)
class SeriesPoint:
    """Summary of one (protocol, N) cell.

    ``stats`` aggregates the cell's ensemble performance
    (:attr:`repro.engine.ensemble.EnsembleResult.stats`); excluded from
    equality because wall-clock numbers differ between otherwise
    identical runs.
    """

    protocol: str
    n_mobile: int
    bound: int
    summary: Summary
    stats: RunStats | None = field(default=None, compare=False)


def _initial_for(
    protocol: PopulationProtocol,
    population: Population,
    rng: random.Random,
    uniform: bool,
) -> Configuration:
    mobile_space = sorted(protocol.mobile_state_space())
    leader = (
        protocol.initial_leader_state() if population.has_leader else None
    )
    if uniform:
        designated = protocol.initial_mobile_state()
        value = designated if designated is not None else mobile_space[0]
        return Configuration.uniform(population, value, leader)
    mobiles = tuple(
        rng.choice(mobile_space) for _ in range(population.n_mobile)
    )
    return Configuration.from_states(population, mobiles, leader)


def _scheduler_for_seed(population: Population, seed: int):
    """Scheduler factory for :func:`repro.engine.ensemble.run_ensemble`.

    Module-level (not a lambda) so ``n_jobs > 1`` can pickle it.
    """
    return RandomPairScheduler(population, seed=seed)


@dataclass(frozen=True)
class _InitialFactory:
    """Picklable initial-configuration factory wrapping ``_initial_for``."""

    protocol: PopulationProtocol
    uniform: bool

    def __call__(self, population: Population, seed: int) -> Configuration:
        """Build the seed's initial configuration."""
        return _initial_for(
            self.protocol, population, random.Random(seed), self.uniform
        )


def measure(
    protocol: PopulationProtocol,
    n_mobile: int,
    bound: int,
    seeds: range,
    budget: int,
    uniform: bool = False,
    backend: str = "auto",
    n_jobs: int = 1,
) -> SeriesPoint:
    """Interactions-to-convergence sample for one protocol instance."""
    population = Population(n_mobile, protocol.requires_leader)
    ensemble = run_ensemble(
        protocol,
        population,
        _scheduler_for_seed,
        _InitialFactory(protocol, uniform),
        NamingProblem(),
        seeds=seeds,
        max_interactions=budget,
        backend=backend,
        n_jobs=n_jobs,
    )
    sample: list[int] = []
    for seed, result in zip(ensemble.seeds, ensemble.results):
        if not result.converged:
            raise ConvergenceError(
                f"{protocol.display_name} (N={n_mobile}, seed={seed}) "
                f"did not converge within {budget} interactions",
                interactions=result.interactions,
            )
        assert result.convergence_interaction is not None
        sample.append(result.convergence_interaction)
    return SeriesPoint(
        protocol=protocol.display_name,
        n_mobile=n_mobile,
        bound=bound,
        summary=summarize(sample),
        stats=ensemble.stats,
    )


def protocol_series(bound: int) -> list[tuple[PopulationProtocol, list[int], bool]]:
    """The (protocol, sizes, uniform-start) series measured by default.

    Protocol 3's ``N = P`` point is included only for small bounds (its
    randomized cost grows super-exponentially; the paper makes no time
    claims there).
    """
    sizes_full = list(range(2, bound + 1))
    sizes_gt2 = [n for n in sizes_full if n > 2]
    protocol3_sizes = [
        n for n in sizes_full if n < bound or bound <= 3
    ]
    return [
        (AsymmetricNamingProtocol(bound), sizes_full, False),
        (SymmetricGlobalNamingProtocol(bound), sizes_gt2, False),
        (LeaderUniformNamingProtocol(bound), sizes_full, True),
        (SelfStabilizingNamingProtocol(bound), sizes_full, False),
        (GlobalNamingProtocol(bound), protocol3_sizes, False),
    ]


def run_convergence(
    bound: int = 8,
    runs: int = 20,
    budget: int = 2_000_000,
    backend: str = "auto",
    n_jobs: int = 1,
) -> list[SeriesPoint]:
    """Measure every default series; returns all points."""
    points: list[SeriesPoint] = []
    for protocol, sizes, uniform in protocol_series(bound):
        for n in sizes:
            points.append(
                measure(
                    protocol,
                    n,
                    bound,
                    seeds=range(runs),
                    budget=budget,
                    uniform=uniform,
                    backend=backend,
                    n_jobs=n_jobs,
                )
            )
    return points


def render_stats(points: list[SeriesPoint]) -> str:
    """Render per-cell ensemble performance lines (``--verbose``)."""
    lines = ["ensemble performance per cell:"]
    for p in points:
        if p.stats is None:
            lines.append(f"  {p.protocol} N={p.n_mobile}: no stats")
        else:
            lines.append(f"  {p.protocol} N={p.n_mobile}: {p.stats}")
    return "\n".join(lines)


def render_points(points: list[SeriesPoint]) -> str:
    """Render the convergence series as an aligned text table."""
    rows = [
        (
            p.protocol,
            p.n_mobile,
            p.bound,
            f"{p.summary.mean:.0f}",
            f"{p.summary.median:.0f}",
            f"{p.summary.p90:.0f}",
            p.summary.maximum,
        )
        for p in points
    ]
    return render_table(
        ("protocol", "N", "P", "mean", "median", "p90", "max"),
        rows,
        title="interactions to certified convergence (random scheduler)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s1 from the command line."""
    parser = argparse.ArgumentParser(
        description="Convergence cost of the naming protocols."
    )
    parser.add_argument("--bound", type=int, default=8)
    parser.add_argument("--runs", type=int, default=20)
    parser.add_argument("--budget", type=int, default=2_000_000)
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS) + ["auto"],
        default="auto",
        help="simulation engine (auto picks bleap at large N, batch "
        "below; both run all seeds in lockstep and every backend is "
        "statistically equivalent)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-seed runs",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print per-cell ensemble wall-clock/throughput stats",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the series as JSON"
    )
    args = parser.parse_args(argv)
    points = run_convergence(
        args.bound, args.runs, args.budget, args.backend, args.jobs
    )
    print(render_points(points))
    if args.verbose:
        print()
        print(render_stats(points))
    if args.json:
        from repro.reporting.jsonio import dump

        dump(points, args.json)
        print(f"\nJSON written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
