"""Micro-benchmark ``repro bench``: simulation-backend throughput.

Measures interactions/second of the reference simulator and the fast
array-based backend (:mod:`repro.engine.fast`) under the uniform-random
scheduler, across population sizes, on two workloads:

* ``naming`` - the paper's single-rule asymmetric naming protocol
  (Proposition 12) with a small bound, a mixed null/non-null workload;
* ``churn``  - a stress protocol whose every interaction rewrites both
  agents, the reference backend's worst case (it pays the full O(N)
  configuration copy on every step).

Besides timing, the run doubles as a differential smoke check: both
backends must return *equal* :class:`SimulationResult`\\ s, or the bench
aborts.  ``python -m repro bench`` prints the table and writes
``BENCH_simulator.json`` with per-workload speedups.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.fast import BACKENDS, make_simulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import SimulationError
from repro.experiments.report import render_table
from repro.schedulers.random_pair import RandomPairScheduler

#: Population sizes measured by default.
DEFAULT_SIZES = (10, 100, 1000)

#: Default scheduler seed (the paper's year, as elsewhere in the harness).
DEFAULT_SEED = 2018

#: Default output file, relative to the working directory.
DEFAULT_OUT = "BENCH_simulator.json"


class ChurnProtocol(PopulationProtocol):
    """Always-active stress protocol: ``(p, q) -> (q + 1, p + 1) mod m``.

    With an odd modulus no interaction is ever null, so every step forces
    the reference simulator's O(N) configuration rebuild - the cost the
    fast backend's mutable state array eliminates.  Not a naming protocol;
    it exists purely to measure per-interaction engine overhead.
    """

    display_name = "churn stress"
    symmetric = False
    requires_leader = False

    def __init__(self, modulus: int = 9) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise ValueError(
                f"modulus must be odd and >= 3 to keep every interaction "
                f"non-null, got {modulus}"
            )
        self._modulus = modulus
        self._states = frozenset(range(modulus))

    def transition(self, p: State, q: State) -> tuple[State, State]:
        """Rotate both agents; never null for odd moduli."""
        m = self._modulus
        return (q + 1) % m, (p + 1) % m

    def mobile_state_space(self) -> frozenset[State]:
        """States ``{0, ..., modulus - 1}``."""
        return self._states


@dataclass(frozen=True)
class BenchPoint:
    """One (workload, backend, N) throughput measurement."""

    workload: str
    backend: str
    n_mobile: int
    interactions: int
    non_null_interactions: int
    seconds: float

    @property
    def rate(self) -> float:
        """Interactions per second."""
        return self.interactions / self.seconds if self.seconds else 0.0


def workloads() -> dict[str, PopulationProtocol]:
    """The benchmarked protocols, by workload name."""
    return {
        "naming": AsymmetricNamingProtocol(8),
        "churn": ChurnProtocol(),
    }


def _budget(n_mobile: int, scale: float) -> int:
    """Interaction budget for a population size (same for both backends)."""
    base = max(50_000, 2_000_000 // n_mobile)
    return max(2_000, int(base * scale))


def run_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> list[BenchPoint]:
    """Measure every (workload, N, backend) cell.

    Both backends run the same protocol, seed and budget; their results
    are compared for equality (a run-time differential check) before the
    timings are reported.
    """
    points: list[BenchPoint] = []
    for workload, protocol in workloads().items():
        for n in sizes:
            budget = _budget(n, scale)
            outcomes = {}
            for backend in sorted(BACKENDS):
                population = Population(n)
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                initial = Configuration.uniform(population, 0)
                start = time.perf_counter()
                result = simulator.run(initial, max_interactions=budget)
                elapsed = time.perf_counter() - start
                outcomes[backend] = result
                points.append(
                    BenchPoint(
                        workload=workload,
                        backend=backend,
                        n_mobile=n,
                        interactions=result.interactions,
                        non_null_interactions=result.non_null_interactions,
                        seconds=elapsed,
                    )
                )
            if outcomes["fast"] != outcomes["reference"]:
                raise SimulationError(
                    f"backend divergence on workload {workload!r} at "
                    f"N={n}, seed={seed}: fast and reference results differ"
                )
    return points


def speedups(points: list[BenchPoint]) -> dict[str, dict[str, float]]:
    """Fast-over-reference rate ratios, ``{workload: {str(N): ratio}}``."""
    rates: dict[tuple[str, int], dict[str, float]] = {}
    for p in points:
        rates.setdefault((p.workload, p.n_mobile), {})[p.backend] = p.rate
    out: dict[str, dict[str, float]] = {}
    for (workload, n), per_backend in rates.items():
        ref = per_backend.get("reference")
        fast = per_backend.get("fast")
        if ref and fast:
            out.setdefault(workload, {})[str(n)] = fast / ref
    return out


def write_json(
    points: list[BenchPoint],
    path: str,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> None:
    """Write the measurements and speedups as a JSON report."""
    payload = {
        "benchmark": "simulator",
        "scheduler": "uniform random pairs",
        "seed": seed,
        "scale": scale,
        "points": [
            {
                "workload": p.workload,
                "backend": p.backend,
                "n_mobile": p.n_mobile,
                "interactions": p.interactions,
                "non_null_interactions": p.non_null_interactions,
                "seconds": round(p.seconds, 6),
                "interactions_per_sec": round(p.rate, 1),
            }
            for p in points
        ],
        "speedup": speedups(points),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_points(points: list[BenchPoint]) -> str:
    """Render the bench measurements as an aligned text table."""
    ratio = speedups(points)
    rows = []
    for p in points:
        cell = ratio.get(p.workload, {}).get(str(p.n_mobile))
        rows.append(
            (
                p.workload,
                p.n_mobile,
                p.backend,
                p.interactions,
                f"{p.seconds * 1000:.0f} ms",
                f"{p.rate:,.0f}/s",
                f"{cell:.1f}x" if p.backend == "fast" and cell else "",
            )
        )
    return render_table(
        ("workload", "N", "backend", "interactions", "time", "rate",
         "speedup"),
        rows,
        title="simulator backend throughput (uniform random scheduler)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run the simulator micro-benchmark from the command line."""
    parser = argparse.ArgumentParser(
        description="Simulation-backend micro-benchmark."
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply every interaction budget by this factor",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny budgets for CI smoke runs (equivalent to --scale 0.02)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    args = parser.parse_args(argv)
    scale = 0.02 if args.smoke else args.scale
    points = run_bench(tuple(args.sizes), seed=args.seed, scale=scale)
    print(render_points(points))
    write_json(points, args.out, seed=args.seed, scale=scale)
    print(f"\nJSON written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
