"""Micro-benchmark ``repro bench``: simulation-backend throughput.

Measures interactions/second of the reference simulator, the fast
array-based backend (:mod:`repro.engine.fast`) and the count-based
backend (:mod:`repro.engine.counts`) under the uniform-random scheduler,
across population sizes, on two workloads:

* ``naming`` - the paper's single-rule asymmetric naming protocol
  (Proposition 12) with a small bound, a mixed null/non-null workload;
* ``churn``  - a stress protocol whose every interaction rewrites both
  agents, the per-interaction worst case for every backend (the
  reference pays an O(N) configuration copy per step, the counts
  backend a Python-level counts update per step).

Workloads start from a *spread* initial configuration (states dealt
round-robin), so the null/non-null mix is stationary from the first
interaction and the numbers measure per-interaction engine overhead
rather than a protocol-specific transient.

Besides timing, the run doubles as a differential smoke check: the fast
and reference backends consume the same scheduler stream, so they must
return *equal* :class:`SimulationResult`\\ s or the bench aborts (the
counts backend draws its own randomness and is validated statistically
in the test suite instead).  The reference backend is skipped above
``REFERENCE_MAX_N`` agents, where its O(N)-per-interaction loop would
dominate the wall-clock budget.  ``python -m repro bench`` prints the
table and writes ``BENCH_simulator.json`` with per-workload speedups;
``--floor`` turns the run into a perf gate on the counts backend's
naming throughput at the largest size.

A second, ensemble-throughput section compares the lockstep batch
engine (:mod:`repro.engine.batch`) against chunked per-run counts
dispatch on the naming workload at R replicates per cell (runs/s and
pooled interactions/s), via :func:`~repro.engine.ensemble.run_ensemble`
under both engines; ``--ensemble-floor`` gates the batch engine's rate
at the widest cell the same way ``--floor`` gates the counts backend,
and ``--ensemble-ratio-floor`` gates the batch/counts rate *ratio* at
the widest cell of the largest measured population - a
machine-independent check that the lockstep engine no longer loses to
chunked per-run counts in its target regime, many replicates at
N = 10^5 (the regression recorded by the pre-fix reports).  Each cell
is timed best-of-two, so a scheduler hiccup on a shared machine cannot
trip a ratio gate.

A third, leap-throughput section compares the approximate multinomial
leap backend (:mod:`repro.engine.leap`) against the exact counts
backend on the naming workload at N = 10^6, where per-interaction cost
is the binding constraint; ``--leap-floor`` gates the *ratio* of the
two rates (the leap backend's headline claim is its speedup over exact
counts stepping, which is machine-independent, unlike absolute rates).

A fourth, bleap section measures the batched tau-leaping ensemble
engine (:mod:`repro.engine.bleap`) against chunked per-run counts
dispatch at N = 10^5 and R = 256 - the regime the engine exists for:
populations large enough for multinomial windows to engage, replicate
counts wide enough for lockstep batching to amortize kernel overhead.
``--bleap-floor`` gates the bleap/counts rate ratio the same way
``--leap-floor`` gates the single-run leap engine.

A fifth, fluid section measures the mean-field fluid tier
(:mod:`repro.engine.fluid`) against the stochastic leap backend on the
full ``10 N`` naming horizon at N = 10^8, *end to end*: the leap cell
pays the O(N) agent-vector round-trip (initial-configuration
construction, state-tally interning, final materialization) that
dominates beyond N = 10^7, while the fluid cell runs counts-native
(:meth:`~repro.engine.fluid.FluidSimulator.run_counts`) and
fast-forwards the deterministic transient by ODE.  ``--fluid-floor``
gates the fluid/leap *wall-clock* ratio - the tier's headline claim is
completing horizons whose agent vectors are not worth (or beyond N =
10^9, not possible) building.

A sixth, parallel section measures the zero-copy shared-memory
sharding layer (:mod:`repro.engine.parallel`): the bleap engine at
R = 1024 replicates and N = 10^5, serial versus sharded across worker
processes, plus the symbolic checker's frontier expansion
(:func:`repro.analysis.symbolic.reach`), serial versus sharded.  Both
pairs are bit-identical by construction, so the cells measure pure
transport and parallelism; ``--parallel-floor`` gates the
sharded/serial rate *ratio* on the lockstep pair, and self-skips
(reporting the ratio) on hosts with fewer than ``PARALLEL_MIN_CORES``
cores, where the ratio measures oversubscription rather than the
transport.

Sections can be selected individually with ``--sections`` (comma-
separated names from ``backends``, ``ensemble``, ``leap``, ``bleap``,
``fluid``, ``parallel``), so CI perf gates re-time only the sections
they gate; a floor flag whose section was deselected is a usage error.

The JSON report carries an ``environment`` block (NumPy version, CPU
count, git revision) so regressions flagged by the floor gates can be
attributed to code versus machine changes, a ``section_seconds`` block
(wall-clock per section that ran, harness overhead included) and its
``total_seconds`` sum.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import time
from dataclasses import dataclass

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.fast import BACKENDS, make_simulator
from repro.engine.fluid import FluidSimulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import SimulationError
from repro.experiments.report import render_table
from repro.schedulers.random_pair import RandomPairScheduler

#: Population sizes measured by default.
DEFAULT_SIZES = (10, 100, 1000)

#: Default scheduler seed (the paper's year, as elsewhere in the harness).
DEFAULT_SEED = 2018

#: Default output file, relative to the working directory.
DEFAULT_OUT = "BENCH_simulator.json"

#: Largest population the O(N)-per-interaction reference backend is
#: timed at; beyond this it is skipped (the fast/counts cells remain).
REFERENCE_MAX_N = 2_000

#: Population sizes of the ensemble-throughput section.
ENSEMBLE_SIZES = (1_000, 100_000)

#: Replicate counts of the ensemble-throughput section.
ENSEMBLE_REPLICATES = (64, 256)

#: Interaction budget per replicate in the ensemble section (scaled by
#: ``--scale``/``--smoke`` like the per-run budgets).
ENSEMBLE_BUDGET = 20_000

#: Population size of the bleap section: the large-N regime where both
#: lockstep batching and multinomial windowing engage.
BLEAP_N = 100_000

#: Replicate count of the bleap section (the engine's headline width).
BLEAP_REPLICATES = 256

#: Interaction budget per replicate in the bleap section (scaled by
#: ``--scale``/``--smoke``).  Larger than the ensemble section's budget:
#: at N = 10^5 a 2N-interaction run actually exercises the multinomial
#: windowing regime, while 20k interactions are a warm-up sliver where
#: fixed per-run costs dominate every engine equally.
BLEAP_BUDGET = 200_000

#: Population size of the leap-throughput section: large enough that
#: per-interaction cost is the binding constraint for exact backends.
LEAP_N = 1_000_000

#: Interaction budget of the leap section (scaled by ``--scale``).
LEAP_BUDGET = 10_000_000

#: Population size of the fluid section: the regime where the O(N)
#: agent-vector edges (initial construction, interning, final
#: materialization) dominate the leap backend's end-to-end wall-clock
#: and the counts-native fluid pipeline side-steps them.
FLUID_N = 100_000_000

#: Population size of the parallel section's lockstep cells.
PARALLEL_N = 100_000

#: Replicate count of the parallel section: wide enough that sharding
#: the (R, S) lockstep matrix across workers has real work per shard.
PARALLEL_REPLICATES = 1024

#: Interaction budget per replicate in the parallel section (scaled by
#: ``--scale``/``--smoke``), matching the bleap section's regime.
PARALLEL_BUDGET = 200_000

#: Cores below which the ``--parallel-floor`` gate reports and skips:
#: a sharded run cannot beat serial without cores to shard across, so
#: the floor is only meaningful on real multi-core hosts.
PARALLEL_MIN_CORES = 4

#: Name bound / mobile population of the parallel section's checker
#: frontier cells (the full-scale instance; smoke shrinks it).
PARALLEL_CHECK_BOUND = 10
PARALLEL_CHECK_N = 12

#: The bench section names selectable via ``--sections``.
SECTIONS = ("backends", "ensemble", "leap", "bleap", "fluid", "parallel")

try:  # Provenance only; the engines guard their own NumPy use.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships NumPy
    _np = None


class ChurnProtocol(PopulationProtocol):
    """Always-active stress protocol: ``(p, q) -> (q + 1, p + 1) mod m``.

    With an odd modulus no interaction is ever null, so every step forces
    the reference simulator's O(N) configuration rebuild - the cost the
    fast backend's mutable state array eliminates.  Not a naming protocol;
    it exists purely to measure per-interaction engine overhead.
    """

    display_name = "churn stress"
    symmetric = False
    requires_leader = False

    def __init__(self, modulus: int = 9) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise ValueError(
                f"modulus must be odd and >= 3 to keep every interaction "
                f"non-null, got {modulus}"
            )
        self._modulus = modulus
        self._states = frozenset(range(modulus))

    def transition(self, p: State, q: State) -> tuple[State, State]:
        """Rotate both agents; never null for odd moduli."""
        m = self._modulus
        return (q + 1) % m, (p + 1) % m

    def mobile_state_space(self) -> frozenset[State]:
        """States ``{0, ..., modulus - 1}``."""
        return self._states


def _safe_rate(work: float, seconds: float) -> float:
    """``work / seconds`` with the zero-time edge cases pinned down.

    ``seconds == 0`` happens when a run finishes inside one timer tick
    (coarse clocks, trivial budgets).  Dividing would raise
    ``ZeroDivisionError``; returning ``0.0`` would make an *infinitely
    fast* run read as infinitely slow and spuriously trip the
    ``--floor``/``--ensemble-floor``/``--leap-floor`` perf gates.  The
    sentinel is therefore ``float("inf")`` when work was done in zero
    measured time, and ``0.0`` only when no work was done at all.
    """
    if seconds > 0:
        return work / seconds
    return float("inf") if work > 0 else 0.0


@dataclass(frozen=True)
class BenchPoint:
    """One (workload, backend, N) throughput measurement."""

    workload: str
    backend: str
    n_mobile: int
    interactions: int
    non_null_interactions: int
    seconds: float

    @property
    def rate(self) -> float:
        """Interactions per second (see :func:`_safe_rate` for the
        zero-time sentinel)."""
        return _safe_rate(self.interactions, self.seconds)


def workloads() -> dict[str, PopulationProtocol]:
    """The benchmarked protocols, by workload name."""
    return {
        "naming": AsymmetricNamingProtocol(8),
        "churn": ChurnProtocol(),
    }


def _budget(n_mobile: int, scale: float) -> int:
    """Interaction budget for a population size (same for all backends).

    Small populations get budgets inversely proportional to N (the
    reference backend pays O(N) per interaction); large populations -
    where only the fast and counts backends run - get ``10 * N`` capped
    at two million, enough interactions for the rates to stabilize.
    """
    if n_mobile >= 10_000:
        base = min(10 * n_mobile, 2_000_000)
    else:
        base = max(50_000, 2_000_000 // n_mobile)
    return max(2_000, int(base * scale))


def _spread_initial(
    protocol: PopulationProtocol, population: Population
) -> Configuration:
    """Deal the protocol's mobile states round-robin over the agents.

    Keeps the null/non-null interaction mix stationary from the first
    interaction, so the bench measures steady per-interaction cost
    rather than the protocol's transient from a uniform start.
    """
    space = sorted(protocol.mobile_state_space())
    states = tuple(space[i % len(space)] for i in range(population.size))
    return Configuration(states, None)


def run_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> list[BenchPoint]:
    """Measure every (workload, N, backend) cell.

    Both backends run the same protocol, seed and budget; their results
    are compared for equality (a run-time differential check) before the
    timings are reported.
    """
    points: list[BenchPoint] = []
    for workload, protocol in workloads().items():
        for n in sizes:
            budget = _budget(n, scale)
            outcomes = {}
            for backend in sorted(BACKENDS):
                if backend == "reference" and n > REFERENCE_MAX_N:
                    continue  # O(N) per interaction: prohibitive here
                if backend == "batch":
                    # An ensemble engine: a width-1 lockstep batch only
                    # measures kernel-launch overhead.  Benchmarked at
                    # its real width in the ensemble section instead.
                    continue
                if backend == "leap":
                    # Approximate window-aggregation engine: at the
                    # small grid sizes it runs as exact SSA anyway.
                    # Benchmarked at N = 10^6 in the leap section
                    # instead, where windowing actually engages.
                    continue
                if backend == "bleap":
                    # Batched tau-leaping ensemble engine: a width-1
                    # run measures neither batching nor windowing.
                    # Benchmarked at its real width and size in the
                    # bleap section instead.
                    continue
                if backend == "fluid":
                    # Mean-field fast-forward engine: at grid sizes the
                    # whole run is stochastic (it hands off to leap at
                    # interaction 0).  Benchmarked at N = 10^8 in the
                    # fluid section instead, where the ODE and the
                    # counts-native pipeline actually engage.
                    continue
                population = Population(n)
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                initial = _spread_initial(protocol, population)
                start = time.perf_counter()
                result = simulator.run(initial, max_interactions=budget)
                elapsed = time.perf_counter() - start
                outcomes[backend] = result
                points.append(
                    BenchPoint(
                        workload=workload,
                        backend=backend,
                        n_mobile=n,
                        interactions=result.interactions,
                        non_null_interactions=result.non_null_interactions,
                        seconds=elapsed,
                    )
                )
            # The fast backend consumes the scheduler stream identically
            # to the reference loop, so their results must be equal (the
            # counts backend uses its own randomness and is validated
            # statistically in the test suite).
            if (
                "reference" in outcomes
                and outcomes["fast"] != outcomes["reference"]
            ):
                raise SimulationError(
                    f"backend divergence on workload {workload!r} at "
                    f"N={n}, seed={seed}: fast and reference results differ"
                )
    return points


@dataclass(frozen=True)
class EnsembleBenchPoint:
    """One (engine, N, R) ensemble-throughput measurement."""

    engine: str
    n_mobile: int
    replicates: int
    interactions: int
    non_null_interactions: int
    seconds: float

    @property
    def rate(self) -> float:
        """Pooled interactions per second across the ensemble (see
        :func:`_safe_rate` for the zero-time sentinel)."""
        return _safe_rate(self.interactions, self.seconds)

    @property
    def runs_per_second(self) -> float:
        """Completed replicate runs per second (see :func:`_safe_rate`
        for the zero-time sentinel)."""
        return _safe_rate(self.replicates, self.seconds)


def _bench_scheduler(population: Population, seed: int):
    """Module-level scheduler factory for the ensemble section."""
    return RandomPairScheduler(population, seed=seed)


class _SpreadInitialFactory:
    """Seed-independent spread initial, built once per population size.

    The spread configuration does not depend on the seed, so building it
    per replicate would charge O(R * N) pure-Python tuple construction
    to both engines and drown the quantity under measurement.
    """

    def __init__(self, protocol: PopulationProtocol) -> None:
        self.protocol = protocol
        self._cache: dict[int, Configuration] = {}

    def __call__(self, population: Population, seed: int) -> Configuration:
        config = self._cache.get(population.size)
        if config is None:
            config = _spread_initial(self.protocol, population)
            self._cache[population.size] = config
        return config


def run_ensemble_bench(
    sizes: tuple[int, ...] = ENSEMBLE_SIZES,
    replicates: tuple[int, ...] = ENSEMBLE_REPLICATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> list[EnsembleBenchPoint]:
    """Measure ensemble throughput: lockstep batch vs per-run counts.

    Both engines run the identical naming workload - same seeds, same
    spread initial, same per-replicate budget - through
    :func:`~repro.engine.ensemble.run_ensemble` with ``n_jobs=1``, so
    the comparison isolates lockstep batching from process parallelism
    (the two compose: each worker of a parallel ensemble runs its chunk
    as a lockstep batch).
    """
    protocol = workloads()["naming"]
    budget = max(1_000, int(ENSEMBLE_BUDGET * scale))
    points: list[EnsembleBenchPoint] = []
    for n in sizes:
        population = Population(n)
        initial_factory = _SpreadInitialFactory(protocol)
        for r in replicates:
            seeds = range(seed, seed + r)
            for engine in ("counts", "batch"):
                # Best-of-three: the runs are seed-identical, so the
                # fastest repeat is the same computation with less
                # scheduler noise - the number the ratio gates need.
                # The batch/counts gate sits near 1x by design (the
                # lockstep win over chunked counts is structural but
                # modest), so this cell gets one more repeat than the
                # backend ladder to keep the ratio stable in CI.
                elapsed = math.inf
                for _ in range(3):
                    start = time.perf_counter()
                    ensemble = run_ensemble(
                        protocol,
                        population,
                        _bench_scheduler,
                        initial_factory,
                        NamingProblem(),
                        seeds=seeds,
                        max_interactions=budget,
                        backend=engine,
                    )
                    elapsed = min(
                        elapsed, time.perf_counter() - start
                    )
                points.append(
                    EnsembleBenchPoint(
                        engine=engine,
                        n_mobile=n,
                        replicates=r,
                        interactions=sum(
                            res.interactions for res in ensemble.results
                        ),
                        non_null_interactions=sum(
                            res.non_null_interactions
                            for res in ensemble.results
                        ),
                        seconds=elapsed,
                    )
                )
    return points


def ensemble_speedups(
    points: list[EnsembleBenchPoint],
) -> dict[str, dict[str, float]]:
    """Batch-over-counts rate ratios, ``{str(N): {"R=r": ratio}}``."""
    rates: dict[tuple[int, int], dict[str, float]] = {}
    for p in points:
        rates.setdefault((p.n_mobile, p.replicates), {})[p.engine] = p.rate
    out: dict[str, dict[str, float]] = {}
    for (n, r), per_engine in sorted(rates.items()):
        counts = per_engine.get("counts")
        batch = per_engine.get("batch")
        if counts and batch:
            out.setdefault(str(n), {})[f"R={r}"] = batch / counts
    return out


def ensemble_floor_rate(points: list[EnsembleBenchPoint]) -> float | None:
    """The batch engine's rate at the widest, largest measured cell.

    The headline claim of the batch engine is many-replicate throughput,
    so the ``--ensemble-floor`` gate guards the cell with the most
    replicates (ties broken by population size).  Returns ``None`` when
    no batch cell was measured.
    """
    cells = [p for p in points if p.engine == "batch"]
    if not cells:
        return None
    return max(cells, key=lambda p: (p.replicates, p.n_mobile)).rate


def ensemble_ratio_floor(points: list[EnsembleBenchPoint]) -> float | None:
    """Batch/counts rate ratio at the widest cell of the largest N.

    The machine-independent number the ``--ensemble-ratio-floor`` gate
    guards: in the batch engine's target regime - the cell with the
    most replicates at the largest measured population - lockstep
    batching must keep up with chunked per-run counts dispatch (a ratio
    >= 1 means the regression is fixed; the pre-fix kernel dipped to
    ~0.5x at N = 10^5).  Narrow cells are reported in the table but not
    gated: with few rows the vectorized step cannot amortize its
    dispatch overhead against the counts backend's scalar loop, which
    is exactly why ``backend="auto"`` hands large-N ensembles to bleap.
    Returns ``None`` when no complete cell was measured.
    """
    ratios = ensemble_speedups(points)
    if not ratios:
        return None
    largest = max(ratios, key=int)
    cells = ratios[largest]
    if not cells:
        return None
    widest = max(cells, key=lambda k: int(k.split("=", 1)[1]))
    return cells[widest]


def render_ensemble_points(points: list[EnsembleBenchPoint]) -> str:
    """Render the ensemble measurements as an aligned text table."""
    ratio = ensemble_speedups(points)
    rows = []
    for p in points:
        shown = ""
        if p.engine == "batch":
            pair = ratio.get(str(p.n_mobile), {}).get(f"R={p.replicates}")
            shown = f"{pair:.1f}x vs counts" if pair else ""
        rows.append(
            (
                p.n_mobile,
                p.replicates,
                p.engine,
                f"{p.seconds * 1000:.0f} ms",
                f"{p.runs_per_second:,.1f}/s",
                f"{p.rate:,.0f}/s",
                shown,
            )
        )
    return render_table(
        ("N", "R", "engine", "time", "runs", "interactions", "speedup"),
        rows,
        title="ensemble throughput (naming workload, n_jobs=1)",
    )


@dataclass(frozen=True)
class LeapBenchPoint:
    """One (backend, N) leap-section throughput measurement.

    ``leaps``/``mean_tau``/``repairs`` mirror the leap fields of
    :class:`~repro.engine.simulator.RunStats` and are ``None`` for the
    exact counts baseline.
    """

    backend: str
    n_mobile: int
    interactions: int
    non_null_interactions: int
    seconds: float
    leaps: int | None = None
    mean_tau: float | None = None
    repairs: int | None = None

    @property
    def rate(self) -> float:
        """Interactions per second (see :func:`_safe_rate` for the
        zero-time sentinel)."""
        return _safe_rate(self.interactions, self.seconds)


def run_leap_bench(
    n: int = LEAP_N,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    leap_eps: float | None = None,
) -> list[LeapBenchPoint]:
    """Measure the leap backend against exact counts at large N.

    Both backends run the identical naming workload - same protocol,
    seed, spread initial and interaction budget - so the rate ratio
    isolates multinomial window aggregation from everything else.  The
    counts baseline runs first, so a leap-side crash cannot hide the
    exact number.
    """
    protocol = workloads()["naming"]
    budget = max(50_000, int(LEAP_BUDGET * scale))
    points: list[LeapBenchPoint] = []
    population = Population(n)
    # One shared immutable start: both backends intern the identical
    # configuration (its state tally is cached on the instance), so the
    # measured gap is the per-interaction engines, not setup.
    initial = _spread_initial(protocol, population)
    for backend in ("counts", "leap"):
        scheduler = RandomPairScheduler(population, seed=seed)
        simulator = make_simulator(
            backend,
            protocol,
            population,
            scheduler,
            NamingProblem(),
            leap_eps=leap_eps if backend == "leap" else None,
        )
        start = time.perf_counter()
        result = simulator.run(initial, max_interactions=budget)
        elapsed = time.perf_counter() - start
        stats = result.stats
        points.append(
            LeapBenchPoint(
                backend=backend,
                n_mobile=n,
                interactions=result.interactions,
                non_null_interactions=result.non_null_interactions,
                seconds=elapsed,
                leaps=getattr(stats, "leaps", None),
                mean_tau=getattr(stats, "mean_tau", None),
                repairs=getattr(stats, "repairs", None),
            )
        )
    return points


def leap_speedup(points: list[LeapBenchPoint]) -> float | None:
    """Leap-over-counts rate ratio, or ``None`` if a cell is missing."""
    rates = {p.backend: p.rate for p in points}
    counts = rates.get("counts")
    leap = rates.get("leap")
    if not counts or not leap:
        return None
    return leap / counts


def render_leap_points(points: list[LeapBenchPoint]) -> str:
    """Render the leap measurements as an aligned text table."""
    ratio = leap_speedup(points)
    rows = []
    for p in points:
        if p.leaps is not None:
            detail = (
                f"{p.leaps} leaps, mean tau {p.mean_tau:,.0f}, "
                f"{p.repairs} repairs"
            )
            shown = f"{ratio:.1f}x vs counts" if ratio else ""
        else:
            detail = "exact baseline"
            shown = ""
        rows.append(
            (
                p.n_mobile,
                p.backend,
                p.interactions,
                f"{p.seconds * 1000:.0f} ms",
                f"{p.rate:,.0f}/s",
                detail,
                shown,
            )
        )
    return render_table(
        ("N", "backend", "interactions", "time", "rate", "windows",
         "speedup"),
        rows,
        title="leap throughput (naming workload, counts vs leap)",
    )


@dataclass(frozen=True)
class BleapBenchPoint(EnsembleBenchPoint):
    """One (engine, N, R) bleap-section measurement.

    Extends the ensemble point with the aggregated leap statistics of
    :class:`~repro.engine.ensemble.EnsembleResult`; the fields stay
    ``None`` for the exact counts baseline.
    """

    leaps: int | None = None
    mean_tau: float | None = None
    repairs: int | None = None
    ssa_fallback_rows: int | None = None


def run_bleap_bench(
    n: int = BLEAP_N,
    replicates: int = BLEAP_REPLICATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> list[BleapBenchPoint]:
    """Measure the bleap engine against chunked per-run counts dispatch.

    Both engines run the identical naming workload - same seeds, same
    spread initial, same per-replicate budget (:data:`BLEAP_BUDGET`,
    deep enough that the multinomial windows engage) - through
    :func:`~repro.engine.ensemble.run_ensemble` with ``n_jobs=1``.  The
    counts baseline runs first, so a bleap-side crash cannot hide the
    exact number.
    """
    protocol = workloads()["naming"]
    budget = max(1_000, int(BLEAP_BUDGET * scale))
    population = Population(n)
    initial_factory = _SpreadInitialFactory(protocol)
    seeds = range(seed, seed + replicates)
    points: list[BleapBenchPoint] = []
    for engine in ("counts", "bleap"):
        # Best-of-two, like the ensemble section: same seeds, same
        # computation, the faster repeat carries less machine noise.
        elapsed = math.inf
        for _ in range(2):
            start = time.perf_counter()
            ensemble = run_ensemble(
                protocol,
                population,
                _bench_scheduler,
                initial_factory,
                NamingProblem(),
                seeds=seeds,
                max_interactions=budget,
                backend=engine,
            )
            elapsed = min(elapsed, time.perf_counter() - start)
        stats = ensemble.stats
        points.append(
            BleapBenchPoint(
                engine=engine,
                n_mobile=n,
                replicates=replicates,
                interactions=sum(
                    res.interactions for res in ensemble.results
                ),
                non_null_interactions=sum(
                    res.non_null_interactions for res in ensemble.results
                ),
                seconds=elapsed,
                leaps=stats.leaps,
                mean_tau=stats.mean_tau,
                repairs=stats.repairs,
                ssa_fallback_rows=stats.ssa_fallback_rows,
            )
        )
    return points


def bleap_speedup(points: list[BleapBenchPoint]) -> float | None:
    """Bleap-over-counts rate ratio, or ``None`` if a cell is missing."""
    rates = {p.engine: p.rate for p in points}
    counts = rates.get("counts")
    bleap = rates.get("bleap")
    if not counts or not bleap:
        return None
    return bleap / counts


def render_bleap_points(points: list[BleapBenchPoint]) -> str:
    """Render the bleap measurements as an aligned text table."""
    ratio = bleap_speedup(points)
    rows = []
    for p in points:
        if p.leaps is not None:
            detail = (
                f"{p.leaps} leaps, mean tau {p.mean_tau:,.0f}, "
                f"{p.ssa_fallback_rows} SSA rows"
            )
            shown = f"{ratio:.1f}x vs counts" if ratio else ""
        else:
            detail = "exact baseline"
            shown = ""
        rows.append(
            (
                p.n_mobile,
                p.replicates,
                p.engine,
                f"{p.seconds * 1000:.0f} ms",
                f"{p.runs_per_second:,.1f}/s",
                f"{p.rate:,.0f}/s",
                detail,
                shown,
            )
        )
    return render_table(
        ("N", "R", "engine", "time", "runs", "interactions", "windows",
         "speedup"),
        rows,
        title="bleap throughput (naming ensembles, counts vs bleap)",
    )


@dataclass(frozen=True)
class FluidBenchPoint:
    """One (backend, N) fluid-section measurement.

    Unlike the other sections, ``seconds`` is end to end: the leap cell
    includes building its O(N) agent-vector initial configuration, the
    fluid cell the O(|states|) counts mapping it runs from.  The ODE
    fields mirror :class:`~repro.engine.simulator.RunStats` and are
    ``None`` for the stochastic leap baseline.
    """

    backend: str
    n_mobile: int
    interactions: int
    seconds: float
    ode_steps: int | None = None
    handoff_time: float | None = None
    handoff_backend: str | None = None

    @property
    def rate(self) -> float:
        """Interactions per second (see :func:`_safe_rate` for the
        zero-time sentinel)."""
        return _safe_rate(self.interactions, self.seconds)


def run_fluid_bench(
    n: int = FLUID_N,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> list[FluidBenchPoint]:
    """Measure the fluid tier against leap on the full naming horizon.

    Both cells run the identical workload from the uniform all-zero
    start - the protocol's genuine transient, so the mean-field ODE has
    a cascade to fast-forward (the spread start the other sections use
    is already the fluid fixed point).  Timing is *end to end*: the
    leap cell pays the O(N) agent-vector round-trip (initial tuple,
    state-tally interning) that dominates beyond N = 10^7, while the
    fluid cell goes counts-native through
    :meth:`~repro.engine.fluid.FluidSimulator.run_counts` and never
    builds an agent vector at all.  The leap cell runs first, so a
    fluid-side crash cannot hide the stochastic number.
    """
    protocol = workloads()["naming"]
    budget = max(100_000, int(10 * n * scale))
    zero_state = sorted(protocol.mobile_state_space())[0]
    population = Population(n)
    points: list[FluidBenchPoint] = []
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = make_simulator(
        "leap", protocol, population, scheduler, NamingProblem()
    )
    start = time.perf_counter()
    initial = Configuration((zero_state,) * n, None)
    result = simulator.run(initial, max_interactions=budget)
    elapsed = time.perf_counter() - start
    points.append(
        FluidBenchPoint(
            backend="leap",
            n_mobile=n,
            interactions=result.interactions,
            seconds=elapsed,
        )
    )
    scheduler = RandomPairScheduler(population, seed=seed)
    fluid = FluidSimulator(
        protocol, population, scheduler, problem=NamingProblem()
    )
    start = time.perf_counter()
    result = fluid.run_counts({zero_state: n}, max_interactions=budget)
    elapsed = time.perf_counter() - start
    stats = result.stats
    points.append(
        FluidBenchPoint(
            backend="fluid",
            n_mobile=n,
            interactions=result.interactions,
            seconds=elapsed,
            ode_steps=stats.ode_steps if stats else None,
            handoff_time=stats.handoff_time if stats else None,
            handoff_backend=stats.handoff_backend if stats else None,
        )
    )
    return points


def fluid_speedup(points: list[FluidBenchPoint]) -> float | None:
    """Fluid-over-leap wall-clock ratio, or ``None`` if a cell is
    missing.

    A time ratio rather than a rate ratio: both cells run the same
    interaction horizon, and the fluid claim is finishing it sooner -
    including every O(N) setup edge the leap pipeline pays.
    """
    seconds = {p.backend: p.seconds for p in points}
    leap = seconds.get("leap")
    fluid = seconds.get("fluid")
    if not leap or not fluid:
        return None
    return leap / fluid


def render_fluid_points(points: list[FluidBenchPoint]) -> str:
    """Render the fluid measurements as an aligned text table."""
    ratio = fluid_speedup(points)
    rows = []
    for p in points:
        if p.ode_steps is not None:
            detail = (
                f"{p.ode_steps} ODE steps, handoff at "
                f"{p.handoff_time:,.0f} -> {p.handoff_backend}"
            )
            shown = f"{ratio:.1f}x vs leap" if ratio else ""
        else:
            detail = "stochastic baseline (end to end)"
            shown = ""
        rows.append(
            (
                p.n_mobile,
                p.backend,
                p.interactions,
                f"{p.seconds * 1000:.0f} ms",
                f"{p.rate:,.0f}/s",
                detail,
                shown,
            )
        )
    return render_table(
        ("N", "backend", "interactions", "time", "rate", "mean field",
         "speedup"),
        rows,
        title="fluid fast-forward (naming workload, leap vs fluid)",
    )


@dataclass(frozen=True)
class ParallelBenchPoint:
    """One parallel-section measurement.

    ``kind`` is ``"lockstep"`` (an ensemble run; ``work`` counts
    interactions) or ``"frontier"`` (a symbolic reach; ``work`` counts
    quotient nodes).  ``mode`` is ``"serial"`` or ``"sharded"``; the
    shared-memory transport fields are filled only on sharded lockstep
    cells that actually took the zero-copy path.
    """

    kind: str
    mode: str
    n_mobile: int
    replicates: int | None
    work: int
    seconds: float
    jobs: int
    shards: int | None = None
    shm_bytes: int | None = None
    copy_bytes_saved: int | None = None

    @property
    def rate(self) -> float:
        """Work units (interactions or nodes) per second."""
        return _safe_rate(self.work, self.seconds)


def run_parallel_bench(
    n: int = PARALLEL_N,
    replicates: int = PARALLEL_REPLICATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    jobs: int | None = None,
) -> list[ParallelBenchPoint]:
    """Measure the shared-memory parallel layer against serial execution.

    Two workload pairs, serial first in each so a parallel-side crash
    cannot hide the baseline:

    * **lockstep**: the bleap engine at (R, N) - one wide lockstep
      ensemble - serial versus sharded over
      :mod:`repro.engine.parallel` (one worker chunk per job, raw rows
      written to shared memory, zero result pickling).  Results are
      bit-identical by construction, so the cells measure pure
      transport and parallelism.
    * **frontier**: the symbolic checker's reach fixpoint, serial
      versus the sharded frontier expansion of
      :func:`repro.analysis.symbolic.reach`.

    ``jobs`` defaults to the host's core count (at least 2, so the
    sharded path is exercised even on small machines).
    """
    if jobs is None:
        jobs = max(2, min(os.cpu_count() or 1, 8))
    protocol = workloads()["naming"]
    budget = max(1_000, int(PARALLEL_BUDGET * scale))
    if scale < 1.0:
        replicates = max(32, int(replicates * scale))
    population = Population(n)
    initial_factory = _SpreadInitialFactory(protocol)
    seeds = range(seed, seed + replicates)
    points: list[ParallelBenchPoint] = []
    for mode, n_jobs in (("serial", 1), ("sharded", jobs)):
        start = time.perf_counter()
        ensemble = run_ensemble(
            protocol,
            population,
            _bench_scheduler,
            initial_factory,
            NamingProblem(),
            seeds=seeds,
            max_interactions=budget,
            backend="bleap",
            n_jobs=n_jobs,
        )
        elapsed = time.perf_counter() - start
        stats = ensemble.stats
        points.append(
            ParallelBenchPoint(
                kind="lockstep",
                mode=mode,
                n_mobile=n,
                replicates=replicates,
                work=sum(res.interactions for res in ensemble.results),
                seconds=elapsed,
                jobs=n_jobs,
                shards=stats.shards,
                shm_bytes=stats.shm_bytes,
                copy_bytes_saved=stats.copy_bytes_saved,
            )
        )
    from repro.analysis.symbolic import CountsSystem, reach
    from repro.core.asymmetric import AsymmetricNamingProtocol

    bound, check_n = (
        (PARALLEL_CHECK_BOUND, PARALLEL_CHECK_N)
        if scale >= 0.5
        else (6, 9)
    )
    check_protocol = AsymmetricNamingProtocol(bound)
    for mode, n_jobs in (("serial", 1), ("sharded", jobs)):
        system = CountsSystem(check_protocol)
        roots = system.root_matrix(check_n, "auto", None, None)
        start = time.perf_counter()
        rs = reach(system, roots, n_jobs=n_jobs)
        elapsed = time.perf_counter() - start
        points.append(
            ParallelBenchPoint(
                kind="frontier",
                mode=mode,
                n_mobile=check_n,
                replicates=None,
                work=rs.n_nodes,
                seconds=elapsed,
                jobs=n_jobs,
            )
        )
    return points


def parallel_speedups(
    points: list[ParallelBenchPoint],
) -> dict[str, float]:
    """Per-kind sharded/serial rate ratios (machine-independent)."""
    out: dict[str, float] = {}
    for kind in ("lockstep", "frontier"):
        rates = {p.mode: p.rate for p in points if p.kind == kind}
        serial = rates.get("serial")
        sharded = rates.get("sharded")
        if serial and sharded:
            out[kind] = sharded / serial
    return out


def render_parallel_points(points: list[ParallelBenchPoint]) -> str:
    """Render the parallel measurements as an aligned text table."""
    ratios = parallel_speedups(points)
    rows = []
    for p in points:
        if p.kind == "lockstep":
            unit = "interactions"
            detail = (
                f"{p.shards} shards, {p.shm_bytes:,} B shm, "
                f"{p.copy_bytes_saved:,} B copies saved"
                if p.shards is not None
                else ("R replicate rows pickled" if p.mode == "sharded"
                      else "one lockstep batch")
            )
        else:
            unit = "nodes"
            detail = (
                "sharded frontier expansion"
                if p.mode == "sharded"
                else "serial frontier"
            )
        ratio = ratios.get(p.kind)
        shown = (
            f"{ratio:.2f}x vs serial"
            if p.mode == "sharded" and ratio
            else ""
        )
        rows.append(
            (
                p.kind,
                p.mode,
                p.jobs,
                p.n_mobile,
                p.replicates if p.replicates is not None else "",
                f"{p.work:,} {unit}",
                f"{p.seconds * 1000:.0f} ms",
                f"{p.rate:,.0f}/s",
                detail,
                shown,
            )
        )
    return render_table(
        ("cell", "mode", "jobs", "N", "R", "work", "time", "rate",
         "transport", "speedup"),
        rows,
        title="parallel execution (shared-memory sharding vs serial)",
    )


def speedups(
    points: list[BenchPoint],
) -> dict[str, dict[str, dict[str, float]]]:
    """Pairwise rate ratios, ``{workload: {str(N): {pair: ratio}}}``.

    Reported pairs are ``"fast/reference"`` and ``"counts/fast"``, each
    present only when both of its backends ran at that size.
    """
    rates: dict[tuple[str, int], dict[str, float]] = {}
    for p in points:
        rates.setdefault((p.workload, p.n_mobile), {})[p.backend] = p.rate
    out: dict[str, dict[str, dict[str, float]]] = {}
    for (workload, n), per_backend in rates.items():
        ref = per_backend.get("reference")
        fast = per_backend.get("fast")
        counts = per_backend.get("counts")
        cell: dict[str, float] = {}
        if ref and fast:
            cell["fast/reference"] = fast / ref
        if fast and counts:
            cell["counts/fast"] = counts / fast
        if cell:
            out.setdefault(workload, {})[str(n)] = cell
    return out


def floor_rate(points: list[BenchPoint]) -> float | None:
    """The counts backend's naming rate at the largest measured size.

    This is the number the ``--floor`` perf gate guards: the headline
    claim of the counts backend is large-N naming throughput, so that is
    the cell that must not regress.  Returns ``None`` when no such cell
    was measured.
    """
    cells = [
        p
        for p in points
        if p.workload == "naming" and p.backend == "counts"
    ]
    if not cells:
        return None
    return max(cells, key=lambda p: p.n_mobile).rate


def environment() -> dict[str, object]:
    """Provenance of a bench run: the report metadata that makes perf
    regressions attributable (did the code change, or the machine?).

    ``git_revision`` is ``None`` outside a git checkout (e.g. an
    installed package); ``numpy`` is ``None`` when NumPy is absent.
    """
    try:
        revision: str | None = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        revision = None
    return {
        "numpy": _np.__version__ if _np is not None else None,
        "cpu_count": os.cpu_count(),
        "git_revision": revision,
    }


def write_json(
    points: list[BenchPoint],
    path: str,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    ensemble: list[EnsembleBenchPoint] | None = None,
    leap: list[LeapBenchPoint] | None = None,
    bleap: list[BleapBenchPoint] | None = None,
    fluid: list[FluidBenchPoint] | None = None,
    parallel: list[ParallelBenchPoint] | None = None,
    section_seconds: dict[str, float] | None = None,
) -> None:
    """Write the measurements and speedups as a JSON report.

    Sections deselected by ``--sections`` arrive as ``None`` (or an
    empty ``points`` list) and are simply omitted from the payload, so
    a partial re-run still writes a valid report.  ``section_seconds``
    is the wall-clock cost of each section that ran (measurement plus
    harness overhead, which the per-point ``seconds`` fields exclude);
    its sum is reported as ``total_seconds``.
    """
    payload = {
        "benchmark": "simulator",
        "scheduler": "uniform random pairs",
        "seed": seed,
        "scale": scale,
        "environment": environment(),
        "points": [
            {
                "workload": p.workload,
                "backend": p.backend,
                "n_mobile": p.n_mobile,
                "interactions": p.interactions,
                "non_null_interactions": p.non_null_interactions,
                "seconds": round(p.seconds, 6),
                "interactions_per_sec": round(p.rate, 1),
            }
            for p in points
        ],
        "speedup": speedups(points),
    }
    if ensemble:
        payload["ensemble"] = {
            "workload": "naming",
            "budget_per_replicate": max(1_000, int(ENSEMBLE_BUDGET * scale)),
            "points": [
                {
                    "engine": p.engine,
                    "n_mobile": p.n_mobile,
                    "replicates": p.replicates,
                    "interactions": p.interactions,
                    "non_null_interactions": p.non_null_interactions,
                    "seconds": round(p.seconds, 6),
                    "interactions_per_sec": round(p.rate, 1),
                    "runs_per_sec": round(p.runs_per_second, 2),
                }
                for p in ensemble
            ],
            "speedup": ensemble_speedups(ensemble),
        }
    if leap:
        payload["leap"] = {
            "workload": "naming",
            "points": [
                {
                    "backend": p.backend,
                    "n_mobile": p.n_mobile,
                    "interactions": p.interactions,
                    "non_null_interactions": p.non_null_interactions,
                    "seconds": round(p.seconds, 6),
                    "interactions_per_sec": round(p.rate, 1),
                    "leaps": p.leaps,
                    "mean_tau": (
                        round(p.mean_tau, 1)
                        if p.mean_tau is not None
                        else None
                    ),
                    "repairs": p.repairs,
                }
                for p in leap
            ],
            "speedup": leap_speedup(leap),
        }
    if bleap:
        payload["bleap"] = {
            "workload": "naming",
            "budget_per_replicate": max(1_000, int(BLEAP_BUDGET * scale)),
            "points": [
                {
                    "engine": p.engine,
                    "n_mobile": p.n_mobile,
                    "replicates": p.replicates,
                    "interactions": p.interactions,
                    "non_null_interactions": p.non_null_interactions,
                    "seconds": round(p.seconds, 6),
                    "interactions_per_sec": round(p.rate, 1),
                    "runs_per_sec": round(p.runs_per_second, 2),
                    "leaps": p.leaps,
                    "mean_tau": (
                        round(p.mean_tau, 1)
                        if p.mean_tau is not None
                        else None
                    ),
                    "repairs": p.repairs,
                    "ssa_fallback_rows": p.ssa_fallback_rows,
                }
                for p in bleap
            ],
            "speedup": bleap_speedup(bleap),
        }
    if fluid:
        payload["fluid"] = {
            "workload": "naming",
            "points": [
                {
                    "backend": p.backend,
                    "n_mobile": p.n_mobile,
                    "interactions": p.interactions,
                    "seconds": round(p.seconds, 6),
                    "interactions_per_sec": round(p.rate, 1),
                    "ode_steps": p.ode_steps,
                    "handoff_time": p.handoff_time,
                    "handoff_backend": p.handoff_backend,
                }
                for p in fluid
            ],
            "speedup": fluid_speedup(fluid),
        }
    if parallel:
        payload["parallel"] = {
            "workload": "naming",
            "points": [
                {
                    "kind": p.kind,
                    "mode": p.mode,
                    "jobs": p.jobs,
                    "n_mobile": p.n_mobile,
                    "replicates": p.replicates,
                    "work": p.work,
                    "seconds": round(p.seconds, 6),
                    "rate": round(p.rate, 1),
                    "shards": p.shards,
                    "shm_bytes": p.shm_bytes,
                    "copy_bytes_saved": p.copy_bytes_saved,
                }
                for p in parallel
            ],
            "speedup": parallel_speedups(parallel),
        }
    if section_seconds:
        payload["section_seconds"] = {
            name: round(value, 6)
            for name, value in section_seconds.items()
        }
        payload["total_seconds"] = round(
            sum(section_seconds.values()), 6
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_points(points: list[BenchPoint]) -> str:
    """Render the bench measurements as an aligned text table."""
    ratio = speedups(points)
    rows = []
    for p in points:
        cell = ratio.get(p.workload, {}).get(str(p.n_mobile), {})
        if p.backend == "fast":
            pair = cell.get("fast/reference")
            shown = f"{pair:.1f}x vs reference" if pair else ""
        elif p.backend == "counts":
            pair = cell.get("counts/fast")
            shown = f"{pair:.1f}x vs fast" if pair else ""
        else:
            shown = ""
        rows.append(
            (
                p.workload,
                p.n_mobile,
                p.backend,
                p.interactions,
                f"{p.seconds * 1000:.0f} ms",
                f"{p.rate:,.0f}/s",
                shown,
            )
        )
    return render_table(
        ("workload", "N", "backend", "interactions", "time", "rate",
         "speedup"),
        rows,
        title="simulator backend throughput (uniform random scheduler)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run the simulator micro-benchmark from the command line."""
    parser = argparse.ArgumentParser(
        description="Simulation-backend micro-benchmark."
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply every interaction budget by this factor",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny budgets for CI smoke runs (equivalent to --scale 0.02)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    parser.add_argument(
        "--sections",
        default=",".join(SECTIONS),
        metavar="NAMES",
        help=(
            "comma-separated subset of bench sections to run "
            f"(choices: {', '.join(SECTIONS)}; default: all).  A floor "
            "flag whose section is deselected is a usage error"
        ),
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "fail (exit 1) unless the counts backend's naming rate at "
            "the largest size reaches RATE interactions/second"
        ),
    )
    parser.add_argument(
        "--ensemble-sizes",
        type=int,
        nargs="+",
        default=list(ENSEMBLE_SIZES),
        metavar="N",
        help="population sizes of the ensemble-throughput section",
    )
    parser.add_argument(
        "--ensemble-reps",
        type=int,
        nargs="+",
        default=list(ENSEMBLE_REPLICATES),
        metavar="R",
        help="replicate counts of the ensemble-throughput section",
    )
    parser.add_argument(
        "--ensemble-floor",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "fail (exit 1) unless the batch engine's pooled rate at the "
            "widest, largest ensemble cell reaches RATE interactions/s"
        ),
    )
    parser.add_argument(
        "--ensemble-ratio-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless every batch/counts rate ratio at the "
            "largest ensemble population reaches RATIO (machine-"
            "independent: 1.0 asserts lockstep batching never loses to "
            "chunked per-run counts dispatch)"
        ),
    )
    parser.add_argument(
        "--leap-n",
        type=int,
        default=LEAP_N,
        metavar="N",
        help="population size of the leap-throughput section",
    )
    parser.add_argument(
        "--leap-eps",
        type=float,
        default=None,
        metavar="EPS",
        help=(
            "per-window relative-change bound of the leap backend "
            "(default 0.03; smaller = more accurate, slower)"
        ),
    )
    parser.add_argument(
        "--leap-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless the leap backend's rate at --leap-n "
            "reaches RATIO times the exact counts rate (a ratio gate: "
            "the leap claim is its speedup, not an absolute rate)"
        ),
    )
    parser.add_argument(
        "--bleap-n",
        type=int,
        default=BLEAP_N,
        metavar="N",
        help="population size of the bleap section",
    )
    parser.add_argument(
        "--bleap-reps",
        type=int,
        default=BLEAP_REPLICATES,
        metavar="R",
        help="replicate count of the bleap section",
    )
    parser.add_argument(
        "--bleap-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless the bleap engine's pooled rate at "
            "--bleap-n/--bleap-reps reaches RATIO times the chunked "
            "counts rate (a machine-independent ratio gate, like "
            "--leap-floor)"
        ),
    )
    parser.add_argument(
        "--fluid-n",
        type=int,
        default=FLUID_N,
        metavar="N",
        help="population size of the fluid section",
    )
    parser.add_argument(
        "--fluid-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless the fluid tier finishes the full "
            "naming horizon at --fluid-n RATIO times faster (wall-"
            "clock, end to end) than the leap backend"
        ),
    )
    parser.add_argument(
        "--parallel-n",
        type=int,
        default=PARALLEL_N,
        metavar="N",
        help="population size of the parallel lockstep cells",
    )
    parser.add_argument(
        "--parallel-reps",
        type=int,
        default=PARALLEL_REPLICATES,
        metavar="R",
        help="replicate count of the parallel lockstep cells",
    )
    parser.add_argument(
        "--parallel-jobs",
        type=int,
        default=None,
        metavar="J",
        help=(
            "worker count of the sharded cells (default: the core "
            "count, clamped to [2, 8])"
        ),
    )
    parser.add_argument(
        "--parallel-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail (exit 1) unless the sharded lockstep rate reaches "
            "RATIO times the serial rate (machine-independent; "
            f"reported but skipped on hosts with fewer than "
            f"{PARALLEL_MIN_CORES} cores, where the ratio measures "
            "oversubscription, not the transport)"
        ),
    )
    args = parser.parse_args(argv)
    sections = tuple(
        name.strip() for name in args.sections.split(",") if name.strip()
    )
    unknown = sorted(set(sections) - set(SECTIONS))
    if unknown:
        parser.error(
            f"unknown section(s) {', '.join(unknown)} "
            f"(choices: {', '.join(SECTIONS)})"
        )
    gated = {
        "backends": args.floor is not None,
        "ensemble": (
            args.ensemble_floor is not None
            or args.ensemble_ratio_floor is not None
        ),
        "leap": args.leap_floor is not None,
        "bleap": args.bleap_floor is not None,
        "fluid": args.fluid_floor is not None,
        "parallel": args.parallel_floor is not None,
    }
    for name, has_floor in gated.items():
        if has_floor and name not in sections:
            parser.error(
                f"a floor flag gates the {name!r} section, but "
                f"--sections deselected it"
            )
    scale = 0.02 if args.smoke else args.scale
    points: list[BenchPoint] = []
    ensemble: list[EnsembleBenchPoint] | None = None
    leap: list[LeapBenchPoint] | None = None
    bleap: list[BleapBenchPoint] | None = None
    fluid: list[FluidBenchPoint] | None = None
    parallel: list[ParallelBenchPoint] | None = None
    section_seconds: dict[str, float] = {}
    printed = False
    if "backends" in sections:
        started = time.perf_counter()
        points = run_bench(tuple(args.sizes), seed=args.seed, scale=scale)
        section_seconds["backends"] = time.perf_counter() - started
        print(render_points(points))
        printed = True
    if "ensemble" in sections:
        if printed:
            print()
        started = time.perf_counter()
        ensemble = run_ensemble_bench(
            tuple(args.ensemble_sizes),
            tuple(args.ensemble_reps),
            seed=args.seed,
            scale=scale,
        )
        section_seconds["ensemble"] = time.perf_counter() - started
        print(render_ensemble_points(ensemble))
        printed = True
    if "leap" in sections:
        if printed:
            print()
        started = time.perf_counter()
        leap = run_leap_bench(
            n=args.leap_n,
            seed=args.seed,
            scale=scale,
            leap_eps=args.leap_eps,
        )
        section_seconds["leap"] = time.perf_counter() - started
        print(render_leap_points(leap))
        printed = True
    if "bleap" in sections:
        if printed:
            print()
        started = time.perf_counter()
        bleap = run_bleap_bench(
            n=args.bleap_n,
            replicates=args.bleap_reps,
            seed=args.seed,
            scale=scale,
        )
        section_seconds["bleap"] = time.perf_counter() - started
        print(render_bleap_points(bleap))
        printed = True
    if "fluid" in sections:
        if printed:
            print()
        started = time.perf_counter()
        fluid = run_fluid_bench(
            n=args.fluid_n,
            seed=args.seed,
            scale=scale,
        )
        section_seconds["fluid"] = time.perf_counter() - started
        print(render_fluid_points(fluid))
        printed = True
    if "parallel" in sections:
        if printed:
            print()
        started = time.perf_counter()
        parallel = run_parallel_bench(
            n=args.parallel_n,
            replicates=args.parallel_reps,
            seed=args.seed,
            scale=scale,
            jobs=args.parallel_jobs,
        )
        section_seconds["parallel"] = time.perf_counter() - started
        print(render_parallel_points(parallel))
        printed = True
    write_json(points, args.out, seed=args.seed, scale=scale,
               ensemble=ensemble, leap=leap, bleap=bleap, fluid=fluid,
               parallel=parallel, section_seconds=section_seconds)
    print(f"\nJSON written to {args.out}")
    failed = False
    if args.floor is not None:
        rate = floor_rate(points)
        if rate is None:
            print("floor check: no counts naming cell was measured")
            return 1
        verdict = "ok" if rate >= args.floor else "FAIL"
        print(
            f"floor check: counts naming rate {rate:,.0f}/s vs floor "
            f"{args.floor:,.0f}/s -> {verdict}"
        )
        failed = failed or rate < args.floor
    if args.ensemble_floor is not None:
        rate = ensemble_floor_rate(ensemble or [])
        if rate is None:
            print("ensemble floor check: no batch cell was measured")
            return 1
        verdict = "ok" if rate >= args.ensemble_floor else "FAIL"
        print(
            f"ensemble floor check: batch rate {rate:,.0f}/s vs floor "
            f"{args.ensemble_floor:,.0f}/s -> {verdict}"
        )
        failed = failed or rate < args.ensemble_floor
    if args.ensemble_ratio_floor is not None:
        ratio = ensemble_ratio_floor(ensemble or [])
        if ratio is None:
            print("ensemble ratio check: no complete cell was measured")
            return 1
        verdict = "ok" if ratio >= args.ensemble_ratio_floor else "FAIL"
        print(
            f"ensemble ratio check: batch/counts ratio at the widest "
            f"largest-N cell is {ratio:.2f}x vs floor "
            f"{args.ensemble_ratio_floor:.2f}x -> {verdict}"
        )
        failed = failed or ratio < args.ensemble_ratio_floor
    if args.leap_floor is not None:
        ratio = leap_speedup(leap or [])
        if ratio is None:
            print("leap floor check: a leap-section cell is missing")
            return 1
        verdict = "ok" if ratio >= args.leap_floor else "FAIL"
        print(
            f"leap floor check: leap/counts speedup {ratio:.1f}x vs "
            f"floor {args.leap_floor:.1f}x -> {verdict}"
        )
        failed = failed or ratio < args.leap_floor
    if args.bleap_floor is not None:
        ratio = bleap_speedup(bleap or [])
        if ratio is None:
            print("bleap floor check: a bleap-section cell is missing")
            return 1
        verdict = "ok" if ratio >= args.bleap_floor else "FAIL"
        print(
            f"bleap floor check: bleap/counts speedup {ratio:.1f}x vs "
            f"floor {args.bleap_floor:.1f}x -> {verdict}"
        )
        failed = failed or ratio < args.bleap_floor
    if args.fluid_floor is not None:
        ratio = fluid_speedup(fluid or [])
        if ratio is None:
            print("fluid floor check: a fluid-section cell is missing")
            return 1
        verdict = "ok" if ratio >= args.fluid_floor else "FAIL"
        print(
            f"fluid floor check: fluid/leap wall-clock speedup "
            f"{ratio:.1f}x vs floor {args.fluid_floor:.1f}x -> {verdict}"
        )
        failed = failed or ratio < args.fluid_floor
    if args.parallel_floor is not None:
        ratio = parallel_speedups(parallel or []).get("lockstep")
        if ratio is None:
            print("parallel floor check: a lockstep cell is missing")
            return 1
        cores = os.cpu_count() or 1
        if cores < PARALLEL_MIN_CORES:
            # Below the core floor the ratio measures oversubscription,
            # not the shared-memory transport - report, don't gate.
            print(
                f"parallel floor check: sharded/serial speedup "
                f"{ratio:.2f}x on {cores} core(s) -> skipped (floor "
                f"gates only on >= {PARALLEL_MIN_CORES} cores)"
            )
        else:
            verdict = "ok" if ratio >= args.parallel_floor else "FAIL"
            print(
                f"parallel floor check: sharded/serial lockstep "
                f"speedup {ratio:.2f}x vs floor "
                f"{args.parallel_floor:.2f}x -> {verdict}"
            )
            failed = failed or ratio < args.parallel_floor
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
