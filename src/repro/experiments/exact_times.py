"""Experiment ``exp-s8``: exact expected convergence times.

Simulation estimates expectations with variance and a budget; the lumped
(multiset) Markov chain computes them *exactly* by linear algebra
(:mod:`repro.analysis.markov`).  This experiment

1. validates the lumping on simulable instances - the exact expectation
   must sit inside the simulated means' confidence band, and
2. pushes where simulation cannot go: Protocol 3's ``N = P`` sweep
   expectation is ~3.0e5 interactions at ``P = 4``, ~2.0e9 at ``P = 5``
   and ~2.5e14 at ``P = 6`` - the super-exponential wall in exact
   numbers, each computed in well under a second.

``python -m repro.experiments.exact_times`` prints the table.
"""

from __future__ import annotations

import argparse
import math
import time
from dataclasses import dataclass

from repro.analysis.markov import expected_convergence_time, naming_absorbing
from repro.analysis.quotient import QuotientNode
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import Simulator
from repro.experiments.report import render_table
from repro.schedulers.random_pair import RandomPairScheduler


@dataclass(frozen=True)
class ExactTimePoint:
    """One (protocol, start) exact expectation, optionally simulated."""

    protocol: str
    n_mobile: int
    bound: int
    exact: float
    simulated_mean: float | None
    runs: int
    seconds: float


def _simulate_mean(
    protocol: PopulationProtocol,
    n_mobile: int,
    start: QuotientNode,
    runs: int,
    budget: int,
) -> float:
    mobile, leader = start
    population = Population(n_mobile, protocol.requires_leader)
    total = 0
    for seed in range(runs):
        scheduler = RandomPairScheduler(population, seed=seed)
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem(),
            check_interval=1,
        )
        initial = Configuration.from_states(population, mobile, leader)
        result = simulator.run(initial, max_interactions=budget)
        assert result.converged, "simulation budget too small"
        total += result.convergence_interaction
    return total / runs


def exact_point(
    protocol: PopulationProtocol,
    n_mobile: int,
    bound: int,
    start: QuotientNode,
    runs: int = 0,
    budget: int = 2_000_000,
    max_nodes: int = 100_000,
) -> ExactTimePoint:
    """Exact expectation from ``start``; simulated too when ``runs > 0``."""
    begun = time.perf_counter()
    times = expected_convergence_time(
        protocol, [start], naming_absorbing(protocol), max_nodes=max_nodes
    )
    exact = times[start]
    elapsed = time.perf_counter() - begun
    simulated = (
        _simulate_mean(protocol, n_mobile, start, runs, budget)
        if runs
        else None
    )
    return ExactTimePoint(
        protocol=protocol.display_name,
        n_mobile=n_mobile,
        bound=bound,
        exact=exact,
        simulated_mean=simulated,
        runs=runs,
        seconds=elapsed,
    )


def run_exact_times(
    validation_runs: int = 120, max_protocol3_bound: int = 6
) -> list[ExactTimePoint]:
    """The default exp-s8 battery."""
    points: list[ExactTimePoint] = []

    # Validation tier: exact vs simulated on cheap instances.
    for n in (3, 4, 5):
        protocol = AsymmetricNamingProtocol(n)
        start = ((0,) * n, None)
        points.append(
            exact_point(protocol, n, n, start, runs=validation_runs)
        )
    for n in (3, 4, 5):
        protocol = SymmetricGlobalNamingProtocol(n)
        start = ((n,) * n, None)
        points.append(
            exact_point(protocol, n, n, start, runs=validation_runs)
        )

    # Beyond-simulation tier: Protocol 3's N = P sweep.
    for bound in range(3, max_protocol3_bound + 1):
        protocol = GlobalNamingProtocol(bound)
        start = ((0,) * bound, protocol.initial_leader_state())
        runs = validation_runs if bound == 3 else 0
        points.append(
            exact_point(protocol, bound, bound, start, runs=runs)
        )
    return points


def render_points(points: list[ExactTimePoint]) -> str:
    """Render the exact-vs-simulated expectations as a text table."""
    rows = []
    for p in points:
        simulated = (
            f"{p.simulated_mean:,.1f} ({p.runs} runs)"
            if p.simulated_mean is not None
            else "out of simulation reach"
        )
        rows.append(
            (
                p.protocol,
                p.n_mobile,
                f"{p.exact:,.1f}",
                simulated,
                f"{p.seconds * 1000:.0f} ms",
            )
        )
    return render_table(
        ("protocol", "N = P", "exact E[interactions]", "simulated mean",
         "solve time"),
        rows,
        title="exact expected convergence times (exp-s8)",
    )


def validate(points: list[ExactTimePoint], tolerance: float = 0.15) -> bool:
    """Whether every simulated mean sits within ``tolerance`` (relative)
    of its exact expectation."""
    for p in points:
        if p.simulated_mean is None or p.exact == 0:
            continue
        if not math.isclose(
            p.simulated_mean, p.exact, rel_tol=tolerance
        ):
            return False
    return True


def main(argv: list[str] | None = None) -> int:
    """Run exp-s8 from the command line."""
    parser = argparse.ArgumentParser(
        description="Exact expected convergence times by linear algebra."
    )
    parser.add_argument("--runs", type=int, default=120)
    parser.add_argument("--max-protocol3", type=int, default=6)
    args = parser.parse_args(argv)
    points = run_exact_times(
        validation_runs=args.runs, max_protocol3_bound=args.max_protocol3
    )
    print(render_points(points))
    ok = validate(points)
    print(
        "\nsimulated means within 15% of exact expectations: "
        f"{'yes' if ok else 'NO'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
