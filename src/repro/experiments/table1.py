"""Experiment ``table1``: regenerate the paper's Table 1 empirically.

For every combination of the four model parameters the harness produces a
measured verdict and compares it to the paper's:

* **Feasible cells** - build the registry's space-optimal protocol, check
  its declared state count against the paper's exact bound, run it to
  certified convergence under schedulers of the right fairness class (from
  adversarial and random starts), and *exactly* model-check a small
  instance with the matching fairness checker.
* **The infeasible cell** (symmetric rules, weak fairness, no leader) -
  demonstrate Proposition 1's matching adversary preserving symmetry
  forever on a concrete symmetric protocol, and (in thorough mode)
  exhaustively refute every 2-state symmetric leaderless protocol.

``python -m repro.experiments.table1`` (or the ``repro-table1`` script)
prints the regenerated table.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.analysis.enumeration import search, symmetric_leaderless_protocols
from repro.analysis.model_checker import check_naming_global
from repro.analysis.reachability import (
    arbitrary_initial_configurations,
    uniform_initial_configurations,
)
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.registry import protocol_for
from repro.core.spec import (
    CellResult,
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    all_specs,
    table1_cell,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.fast import BACKENDS, make_simulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.experiments.report import check_mark, render_table
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.matching import MatchingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

#: Population sizes whose exact model checking stays cheap.
_CHECK_BOUND = 3


@dataclass
class Table1Row:
    """One regenerated cell of Table 1."""

    spec: ModelSpec
    expected: CellResult
    measured_feasible: bool
    measured_states: int | None
    match: bool
    evidence: list[str] = field(default_factory=list)


def _random_initials(
    protocol: PopulationProtocol,
    population: Population,
    spec: ModelSpec,
    seed: int,
    samples: int,
) -> list[Configuration]:
    """Starting configurations matching the spec's initialization model."""
    import random

    rng = random.Random(seed)
    mobile_space = sorted(protocol.mobile_state_space())
    leader_space = sorted(protocol.leader_state_space(), key=repr)

    def leader_state() -> object | None:
        if not population.has_leader:
            return None
        if spec.leader is LeaderKind.INITIALIZED:
            designated = protocol.initial_leader_state()
            return designated if designated is not None else leader_space[0]
        return rng.choice(leader_space)

    configs: list[Configuration] = []
    if spec.mobile_init is MobileInit.UNIFORM:
        designated = protocol.initial_mobile_state()
        value = designated if designated is not None else mobile_space[0]
        for _ in range(samples):
            configs.append(
                Configuration.uniform(population, value, leader_state())
            )
    else:
        # Arbitrary initialization: adversarial all-same plus random states.
        configs.append(
            Configuration.uniform(population, mobile_space[0], leader_state())
        )
        for _ in range(samples - 1):
            mobiles = tuple(
                rng.choice(mobile_space)
                for _ in range(population.n_mobile)
            )
            configs.append(
                Configuration.from_states(population, mobiles, leader_state())
            )
    return configs


def _schedulers_for(
    spec: ModelSpec,
    population: Population,
    protocol: PopulationProtocol,
    seed: int,
) -> list[Scheduler]:
    if spec.fairness is Fairness.WEAK:
        return [
            RoundRobinScheduler(population, seed=seed),
            HomonymPreservingScheduler(population, protocol, seed=seed),
        ]
    return [RandomPairScheduler(population, seed=seed)]


def _simulation_sizes(spec: ModelSpec, bound: int) -> list[int]:
    """Population sizes to simulate for a feasible cell.

    Proposition 13's protocol requires ``N > 2``; Protocol 3's ``N = P``
    sweep is only *practically* simulable for small ``P`` (its cost under
    the randomized scheduler grows super-exponentially - the paper makes
    no time claims), larger bounds are covered by the exact checker.
    """
    sizes = sorted({2, 3, max(2, bound // 2), bound})
    sizes = [n for n in sizes if n <= bound]
    uses_prop13 = (
        spec.symmetry is Symmetry.SYMMETRIC
        and spec.fairness is Fairness.GLOBAL
        and spec.leader is not LeaderKind.INITIALIZED
    )
    if uses_prop13:
        sizes = [n for n in sizes if n > 2]
    uses_protocol3 = (
        spec.symmetry is Symmetry.SYMMETRIC
        and spec.fairness is Fairness.GLOBAL
        and spec.leader is LeaderKind.INITIALIZED
    )
    if uses_protocol3 and bound > 3:
        sizes = [n for n in sizes if n < bound]
    return sizes


def _exact_check(spec: ModelSpec, evidence: list[str]) -> bool:
    """Exact model checking of the cell at the small bound ``_CHECK_BOUND``."""
    bound = _CHECK_BOUND
    protocol = protocol_for(spec, bound)
    check = (
        check_naming_weak
        if spec.fairness is Fairness.WEAK
        else check_naming_global
    )
    sizes = [2, 3]
    if (
        spec.symmetry is Symmetry.SYMMETRIC
        and spec.fairness is Fairness.GLOBAL
        and spec.leader is not LeaderKind.INITIALIZED
    ):
        sizes = [3]  # Proposition 13 requires N > 2
    for n in sizes:
        population = Population(n, protocol.requires_leader)
        if spec.leader is LeaderKind.INITIALIZED:
            leader_states = [protocol.initial_leader_state()]
        else:
            leader_states = None
        if spec.mobile_init is MobileInit.UNIFORM:
            initials = list(
                uniform_initial_configurations(
                    protocol, population, leader_states
                )
            )
        else:
            initials = list(
                arbitrary_initial_configurations(
                    protocol, population, leader_states
                )
            )
        verdict = check(protocol, population, initials)
        if not verdict.solves:
            evidence.append(
                f"exact {spec.fairness.value} check FAILED at "
                f"P={bound}, N={n}: {verdict.reason}"
            )
            return False
        evidence.append(
            f"exact {spec.fairness.value} check passed at P={bound}, N={n} "
            f"({verdict.explored_nodes} configurations)"
        )
    return True


def _feasible_cell(
    spec: ModelSpec,
    bound: int,
    seed: int,
    budget: int,
    samples: int,
    backend: str = "reference",
) -> Table1Row:
    expected = table1_cell(spec)
    evidence: list[str] = []
    protocol = protocol_for(spec, bound)
    states = protocol.num_mobile_states
    expected_states = expected.optimal_states(bound)
    states_match = states == expected_states
    evidence.append(
        f"registry protocol '{protocol.display_name}' uses {states} mobile "
        f"states (paper: {expected_states})"
    )

    all_converged = True
    for n in _simulation_sizes(spec, bound):
        population = Population(n, protocol.requires_leader)
        for scheduler in _schedulers_for(spec, population, protocol, seed):
            for initial in _random_initials(
                protocol, population, spec, seed, samples
            ):
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                scheduler.reset()
                result = simulator.run(initial, max_interactions=budget)
                if not result.converged:
                    all_converged = False
                    evidence.append(
                        f"NO convergence: N={n}, "
                        f"{scheduler.display_name}, start "
                        f"{initial.mobile_states}"
                    )
    if all_converged:
        evidence.append(
            "all simulations reached certified naming "
            f"(sizes {_simulation_sizes(spec, bound)})"
        )

    exact_ok = _exact_check(spec, evidence)
    feasible = all_converged and exact_ok
    return Table1Row(
        spec=spec,
        expected=expected,
        measured_feasible=feasible,
        measured_states=states,
        match=feasible and states_match,
        evidence=evidence,
    )


def _infeasible_cell(
    spec: ModelSpec,
    bound: int,
    seed: int,
    budget: int,
    thorough: bool,
    backend: str = "reference",
) -> Table1Row:
    expected = table1_cell(spec)
    evidence: list[str] = []

    # Proposition 1's adversary versus a concrete symmetric protocol: the
    # matching scheduler keeps an even, uniformly started population fully
    # symmetric forever (we run it for the whole budget).
    even_n = bound if bound % 2 == 0 else bound + 1
    protocol = SymmetricGlobalNamingProtocol(even_n)
    population = Population(even_n)
    scheduler = MatchingScheduler(population, seed=seed)
    initial = Configuration.uniform(population, 1)
    simulator = make_simulator(
        backend, protocol, population, scheduler, NamingProblem()
    )
    # Symmetry holds at phase boundaries (a phase is even_n // 2 disjoint
    # meetings applied one after another), so stop exactly on one.
    phase_length = even_n // 2
    rounded_budget = max(phase_length, budget - budget % phase_length)
    result = simulator.run(initial, max_interactions=rounded_budget)
    symmetric_forever = (
        not result.converged
        and len(set(result.final_configuration.mobile_states)) == 1
    )
    evidence.append(
        "Prop. 1 adversary kept a uniformly started symmetric population "
        f"perfectly symmetric for {result.interactions} interactions: "
        f"{symmetric_forever}"
    )

    refuted_all = True
    if thorough:
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.WEAK,
            mobile_init=spec.mobile_init,
        )
        refuted_all = not outcome.any_solves
        evidence.append(
            f"exhaustive search: {outcome.total} two-state symmetric "
            f"leaderless protocols, {len(outcome.solving)} solve naming"
        )

    infeasible = symmetric_forever and refuted_all
    return Table1Row(
        spec=spec,
        expected=expected,
        measured_feasible=not infeasible,
        measured_states=None,
        match=infeasible,
        evidence=evidence,
    )


def run_table1(
    bound: int = 5,
    seed: int = 2018,
    budget: int = 400_000,
    samples: int = 3,
    thorough: bool = False,
    backend: str = "reference",
) -> list[Table1Row]:
    """Regenerate every cell of Table 1.

    Parameters
    ----------
    bound:
        The bound ``P`` used for the simulated instances.
    budget:
        Interaction budget per simulation.
    samples:
        Initial configurations sampled per (size, scheduler).
    thorough:
        Also run the exhaustive 2-state refutation for the impossible cell.
    backend:
        Simulation backend (any key of
        :data:`repro.engine.fast.BACKENDS`; the ensemble engines
        ``"batch"``/``"bleap"`` serve each run as a width-1 batch);
        verdicts are identical either way, the array/counts engines
        regenerate the table quicker.
    """
    rows: list[Table1Row] = []
    for spec in all_specs():
        if table1_cell(spec).feasible:
            rows.append(
                _feasible_cell(spec, bound, seed, budget, samples, backend)
            )
        else:
            rows.append(
                _infeasible_cell(
                    spec, bound, seed, budget, thorough, backend
                )
            )
    return rows


def render_rows(rows: list[Table1Row], bound: int) -> str:
    """Render regenerated rows next to the paper's claims."""
    table_rows = []
    for row in rows:
        expected_states = (
            row.expected.optimal_states(bound)
            if row.expected.feasible
            else "-"
        )
        table_rows.append(
            (
                row.spec.symmetry.value,
                row.spec.fairness.value,
                row.spec.leader.value,
                row.spec.mobile_init.value,
                "yes" if row.expected.feasible else "no",
                expected_states,
                "yes" if row.measured_feasible else "no",
                row.measured_states if row.measured_states is not None else "-",
                check_mark(row.match),
            )
        )
    return render_table(
        (
            "rules",
            "fairness",
            "leader",
            "mobile init",
            "paper feasible",
            "paper states",
            "measured feasible",
            "measured states",
            "verdict",
        ),
        table_rows,
        title=f"Table 1 regeneration (P = {bound})",
    )


def main(argv: list[str] | None = None) -> int:
    """Regenerate Table 1 from the command line."""
    parser = argparse.ArgumentParser(
        description="Regenerate Table 1 of the paper."
    )
    parser.add_argument("--bound", type=int, default=5, help="the bound P")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--budget", type=int, default=400_000, help="interactions per run"
    )
    parser.add_argument(
        "--thorough",
        action="store_true",
        help="add the exhaustive 2-state refutation of the impossible cell",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="reference",
        help="simulation engine (verdicts identical either way)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the regenerated rows as JSON",
    )
    args = parser.parse_args(argv)
    rows = run_table1(
        bound=args.bound,
        seed=args.seed,
        budget=args.budget,
        thorough=args.thorough,
        backend=args.backend,
    )
    print(render_rows(rows, args.bound))
    if args.json:
        from repro.reporting.jsonio import dump

        dump(rows, args.json)
        print(f"\nJSON written to {args.json}")
    mismatches = [row for row in rows if not row.match]
    if mismatches:
        print(f"\n{len(mismatches)} MISMATCHES:")
        for row in mismatches:
            print(f"* {row.spec.describe()}")
            for item in row.evidence:
                print(f"    - {item}")
        return 1
    print(f"\nall {len(rows)} cells match the paper")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
