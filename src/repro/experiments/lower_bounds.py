"""Experiment ``exp-s3``: machine-verified lower bounds by exhaustion.

For tiny state counts the space of deterministic protocols is finite;
enumerating it verifies the paper's negative results outright on those
instances:

* Proposition 2 (no ``P``-state symmetric leaderless naming, either
  fairness, even uniform init) at ``P = 2`` and ``P = 3``;
* Proposition 1 via weak-fairness checking of the same families;
* Proposition 4 / Theorem 11 at ``P = 2`` with bounded leader spaces
  (``L = 1, 2``), under both leader-initialization models;
* the positive contrast: *asymmetric* two-state protocols do solve naming
  (Proposition 12's rule among them).

``python -m repro.experiments.lower_bounds`` prints the verdicts.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.analysis.enumeration import (
    EnumerationResult,
    asymmetric_leaderless_protocols,
    search,
    symmetric_leaderless_protocols,
    symmetric_leadered_protocols,
)
from repro.core.spec import Fairness, MobileInit
from repro.experiments.report import check_mark, render_table


@dataclass(frozen=True)
class BoundCheck:
    """One exhaustive verification row."""

    claim: str
    expect_solvers: bool
    result: EnumerationResult
    seconds: float

    @property
    def matches(self) -> bool:
        return self.result.any_solves == self.expect_solvers


def default_checks(include_p3: bool = True) -> list[BoundCheck]:
    """Run the standard battery of exhaustive verifications."""
    checks: list[BoundCheck] = []

    def run(
        claim: str, expect_solvers: bool, protocols, **kwargs
    ) -> None:
        start = time.perf_counter()
        result = search(protocols, **kwargs)
        checks.append(
            BoundCheck(
                claim, expect_solvers, result, time.perf_counter() - start
            )
        )

    # Proposition 2 at P = 2: global fairness (the easier setting for a
    # protocol - refuting it under global refutes it under weak too).
    run(
        "Prop. 2, P=2: no 2-state symmetric leaderless protocol (global)",
        False,
        symmetric_leaderless_protocols(2),
        sizes=[2],
        fairness=Fairness.GLOBAL,
    )
    run(
        "Prop. 2, P=2: ... even with uniform initialization",
        False,
        symmetric_leaderless_protocols(2),
        sizes=[2],
        fairness=Fairness.GLOBAL,
        mobile_init=MobileInit.UNIFORM,
    )
    # Proposition 1 flavour: weak fairness refutation of the same family.
    run(
        "Prop. 1, P=2: no 2-state symmetric leaderless protocol (weak)",
        False,
        symmetric_leaderless_protocols(2),
        sizes=[2],
        fairness=Fairness.WEAK,
        mobile_init=MobileInit.UNIFORM,
    )
    # The asymmetric contrast (Proposition 12 exists).
    run(
        "Prop. 12 contrast: some 2-state ASYMMETRIC protocols do solve",
        True,
        asymmetric_leaderless_protocols(2),
        sizes=[2],
        fairness=Fairness.WEAK,
    )
    # Theorem 11 at P = 2 with a bounded leader: initialized leader,
    # arbitrary mobile agents, weak fairness.
    for leader_states in (1, 2):
        run(
            f"Thm. 11, P=2, L={leader_states}: no 2-state symmetric naming "
            "with initialized leader (weak)",
            False,
            symmetric_leadered_protocols(2, leader_states),
            sizes=[2],
            fairness=Fairness.WEAK,
        )
    # Proposition 4 at P = 2: arbitrarily initialized leader, global.
    run(
        "Prop. 4, P=2, L=2: no 2-state symmetric naming with "
        "NON-initialized leader (global)",
        False,
        symmetric_leadered_protocols(2, 2),
        sizes=[2],
        fairness=Fairness.GLOBAL,
        arbitrary_leader=True,
    )
    if include_p3:
        run(
            "Prop. 2, P=3: no 3-state symmetric leaderless protocol "
            "(global, N in {3, 2})",
            False,
            symmetric_leaderless_protocols(3),
            sizes=[3, 2],
            fairness=Fairness.GLOBAL,
        )
    return checks


def render_checks(checks: list[BoundCheck]) -> str:
    """Render the exhaustive-verification battery as a text table."""
    rows = [
        (
            c.claim,
            c.result.total,
            len(c.result.solving),
            f"{c.seconds:.1f}s",
            check_mark(c.matches),
        )
        for c in checks
    ]
    return render_table(
        ("claim", "protocols", "solvers", "time", "verdict"),
        rows,
        title="exhaustive lower-bound verification",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s3 from the command line."""
    parser = argparse.ArgumentParser(
        description="Machine-verify the paper's lower bounds by exhaustion."
    )
    parser.add_argument(
        "--skip-p3",
        action="store_true",
        help="skip the (slow) 19683-protocol P=3 sweep",
    )
    args = parser.parse_args(argv)
    checks = default_checks(include_p3=not args.skip_p3)
    print(render_checks(checks))
    return 0 if all(c.matches for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
