"""Experiment ``exp-s7``: the space / assumptions / cost trade-off table.

Table 1 answers "how many states"; this synthesis experiment joins it
with the measured costs into the one table a systems reader asks for:
for a fixed bound ``P``, what does each protocol require (fairness,
leader, initialization), what does it pay in states, how fast does it
converge, and how expensive is recovery from a full collapse?

``python -m repro.experiments.tradeoffs`` prints the table.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.stats import Summary
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.fast import BACKENDS
from repro.engine.population import Population
from repro.engine.protocol import PopulationProtocol
from repro.experiments.convergence import measure
from repro.experiments.recovery import measure_recovery
from repro.experiments.report import render_table
from repro.faults.injection import corrupt_all_mobile_to


@dataclass(frozen=True)
class TradeoffRow:
    """One protocol's full profile at a fixed bound."""

    protocol: str
    reference: str
    states: int
    rules: str
    fairness: str
    leader: str
    initialization: str
    convergence: Summary
    recovery: Summary | None


def _profile(
    protocol: PopulationProtocol,
    reference: str,
    fairness: str,
    leader: str,
    initialization: str,
    n_mobile: int,
    bound: int,
    runs: int,
    budget: int,
    uniform_start: bool,
    self_stabilizing: bool,
    backend: str = "batch",
    n_jobs: int = 1,
) -> TradeoffRow:
    convergence = measure(
        protocol,
        n_mobile,
        bound,
        seeds=range(runs),
        budget=budget,
        uniform=uniform_start,
        backend=backend,
        n_jobs=n_jobs,
    )
    recovery = None
    if self_stabilizing:
        population = Population(n_mobile, protocol.requires_leader)
        collapse_state = sorted(protocol.mobile_state_space())[0]
        recovery = measure_recovery(
            protocol,
            population,
            corrupt_all_mobile_to(population, collapse_state),
            "full collapse",
            seeds=range(runs),
            budget=budget,
        ).summary
    return TradeoffRow(
        protocol=protocol.display_name,
        reference=reference,
        states=protocol.num_mobile_states,
        rules="asymmetric" if not protocol.symmetric else "symmetric",
        fairness=fairness,
        leader=leader,
        initialization=initialization,
        convergence=convergence.summary,
        recovery=recovery,
    )


def run_tradeoffs(
    bound: int = 8,
    n_mobile: int = 6,
    runs: int = 12,
    budget: int = 5_000_000,
    backend: str = "batch",
    n_jobs: int = 1,
) -> list[TradeoffRow]:
    """Profile every positive protocol at one bound."""
    return [
        _profile(
            AsymmetricNamingProtocol(bound),
            "Prop. 12",
            "weak",
            "none",
            "none (self-stab.)",
            n_mobile,
            bound,
            runs,
            budget,
            uniform_start=False,
            self_stabilizing=True,
            backend=backend,
            n_jobs=n_jobs,
        ),
        _profile(
            SymmetricGlobalNamingProtocol(bound),
            "Prop. 13",
            "global",
            "none",
            "none (self-stab., N > 2)",
            n_mobile,
            bound,
            runs,
            budget,
            uniform_start=False,
            self_stabilizing=True,
            backend=backend,
            n_jobs=n_jobs,
        ),
        _profile(
            LeaderUniformNamingProtocol(bound),
            "Prop. 14",
            "weak",
            "initialized",
            "uniform",
            n_mobile,
            bound,
            runs,
            budget,
            uniform_start=True,
            self_stabilizing=False,
            backend=backend,
            n_jobs=n_jobs,
        ),
        _profile(
            SelfStabilizingNamingProtocol(bound),
            "Prop. 16",
            "weak",
            "present (any state)",
            "none (self-stab.)",
            n_mobile,
            bound,
            runs,
            budget,
            uniform_start=False,
            self_stabilizing=True,
            backend=backend,
            n_jobs=n_jobs,
        ),
        _profile(
            GlobalNamingProtocol(bound),
            "Prop. 17",
            "global (for N = P)",
            "initialized",
            "mobiles arbitrary",
            n_mobile,
            bound,
            runs,
            budget,
            uniform_start=False,
            self_stabilizing=False,
            backend=backend,
            n_jobs=n_jobs,
        ),
    ]


def render_rows(rows: list[TradeoffRow], bound: int) -> str:
    """Render the trade-off profiles as an aligned text table."""
    table = [
        (
            row.reference,
            row.states,
            row.rules,
            row.fairness,
            row.leader,
            row.initialization,
            f"{row.convergence.mean:.0f}",
            f"{row.recovery.mean:.0f}" if row.recovery else "n/a",
        )
        for row in rows
    ]
    return render_table(
        (
            "protocol",
            "states",
            "rules",
            "fairness",
            "leader",
            "init",
            "convergence",
            "recovery",
        ),
        table,
        title=f"space / assumptions / cost trade-offs (P = {bound}, exp-s7)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s7 from the command line."""
    parser = argparse.ArgumentParser(
        description="The space/assumptions/cost trade-off synthesis."
    )
    parser.add_argument("--bound", type=int, default=8)
    parser.add_argument("--n", type=int, default=6, dest="n_mobile")
    parser.add_argument("--runs", type=int, default=12)
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="batch",
        help="simulation engine for the convergence columns",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-seed runs",
    )
    args = parser.parse_args(argv)
    rows = run_tradeoffs(
        args.bound, args.n_mobile, args.runs,
        backend=args.backend, n_jobs=args.jobs,
    )
    print(render_rows(rows, args.bound))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
