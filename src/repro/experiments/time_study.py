"""Experiment ``exp-s6``: empirical time-complexity of the protocols.

The paper's conclusion names "the study of the time complexity aspects of
naming" as future work.  This experiment takes the first empirical step:
it measures interactions-to-convergence across population sizes under the
randomized scheduler and fits power laws ``cost ~ a * N^b`` (ordinary
least squares on log-log points), reporting the growth exponent per
protocol.  For Protocol 3's ``N = P`` sweep it instead reports the
measured blow-up against the ``P^P``-flavoured prediction of the sweep
analysis.

Exponents are environment-noisy; the experiment asserts only coarse,
stable facts (positive growth; the self-stabilizing protocols grow at
least as fast as the initialized one).

``python -m repro.experiments.time_study`` prints the fits.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.fast import BACKENDS
from repro.engine.protocol import PopulationProtocol
from repro.errors import VerificationError
from repro.experiments.convergence import measure
from repro.experiments.report import render_table


@dataclass(frozen=True)
class PowerLawFit:
    """``cost ~ coefficient * N^exponent`` fitted on log-log means."""

    protocol: str
    sizes: tuple[int, ...]
    means: tuple[float, ...]
    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(
    sizes: list[int], means: list[float], label: str
) -> PowerLawFit:
    """Least-squares fit of ``log(mean) = b log(N) + log(a)``."""
    if len(sizes) != len(means) or len(sizes) < 2:
        raise VerificationError("need at least two (size, mean) points")
    if any(m <= 0 for m in means):
        raise VerificationError("means must be positive to take logs")
    xs = [math.log(n) for n in sizes]
    ys = [math.log(m) for m in means]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise VerificationError("degenerate fit: all sizes equal")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        protocol=label,
        sizes=tuple(sizes),
        means=tuple(means),
        exponent=slope,
        coefficient=math.exp(intercept),
        r_squared=r_squared,
    )


def measure_series(
    protocol: PopulationProtocol,
    sizes: list[int],
    bound: int,
    runs: int,
    budget: int,
    uniform: bool = False,
    backend: str = "batch",
    n_jobs: int = 1,
) -> PowerLawFit:
    """Measure a size series and fit its power law."""
    means = []
    kept_sizes = []
    for n in sizes:
        point = measure(
            protocol, n, bound, seeds=range(runs), budget=budget,
            uniform=uniform, backend=backend, n_jobs=n_jobs,
        )
        if point.summary.mean > 0:
            kept_sizes.append(n)
            means.append(point.summary.mean)
    return fit_power_law(kept_sizes, means, protocol.display_name)


def run_time_study(
    bound: int = 10,
    runs: int = 20,
    budget: int = 10_000_000,
    backend: str = "batch",
    n_jobs: int = 1,
) -> list[PowerLawFit]:
    """Fit growth exponents for every positive protocol (N < P regimes
    where applicable)."""
    sizes = list(range(3, bound + 1))
    series = [
        (AsymmetricNamingProtocol(bound), sizes, False),
        (SymmetricGlobalNamingProtocol(bound), sizes, False),
        (LeaderUniformNamingProtocol(bound), sizes, True),
        (SelfStabilizingNamingProtocol(bound), sizes, False),
        (GlobalNamingProtocol(bound), [n for n in sizes if n < bound], False),
    ]
    return [
        measure_series(
            protocol, series_sizes, bound, runs, budget,
            uniform=uniform, backend=backend, n_jobs=n_jobs,
        )
        for protocol, series_sizes, uniform in series
    ]


def protocol3_blowup(
    max_bound: int = 4,
    runs: int = 10,
    budget: int = 30_000_000,
    backend: str = "batch",
    n_jobs: int = 1,
) -> list[tuple[int, float]]:
    """Measured N = P sweep cost for Protocol 3 at tiny bounds: the
    super-exponential wall in numbers."""
    points = []
    for bound in range(2, max_bound + 1):
        point = measure(
            GlobalNamingProtocol(bound),
            bound,
            bound,
            seeds=range(runs),
            budget=budget,
            backend=backend,
            n_jobs=n_jobs,
        )
        points.append((bound, point.summary.mean))
    return points


def render_fits(fits: list[PowerLawFit]) -> str:
    """Render the power-law fits as an aligned text table."""
    rows = [
        (
            f.protocol,
            f"N in {f.sizes[0]}..{f.sizes[-1]}",
            f"{f.exponent:.2f}",
            f"{f.coefficient:.2f}",
            f"{f.r_squared:.3f}",
        )
        for f in fits
    ]
    return render_table(
        ("protocol", "range", "exponent b", "coefficient a", "R^2"),
        rows,
        title="power-law fits: interactions ~ a * N^b (exp-s6)",
    )


def main(argv: list[str] | None = None) -> int:
    """Run exp-s6 from the command line."""
    parser = argparse.ArgumentParser(
        description="Empirical time-complexity study (the paper's stated "
        "future work)."
    )
    parser.add_argument("--bound", type=int, default=10)
    parser.add_argument("--runs", type=int, default=20)
    parser.add_argument(
        "--blowup",
        action="store_true",
        help="also measure Protocol 3's N = P sweep cost (slow)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="batch",
        help="simulation engine (batch runs all seeds in lockstep)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-seed runs",
    )
    args = parser.parse_args(argv)
    fits = run_time_study(
        bound=args.bound, runs=args.runs, backend=args.backend,
        n_jobs=args.jobs,
    )
    print(render_fits(fits))
    if args.blowup:
        print()
        print("Protocol 3, N = P sweep (mean interactions):")
        for bound, mean in protocol3_blowup(
            backend=args.backend, n_jobs=args.jobs
        ):
            print(f"  P = {bound}: {mean:,.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
