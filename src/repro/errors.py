"""Exception hierarchy for the reproduction library.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ProtocolError(ReproError):
    """A protocol definition is malformed (non-deterministic, out-of-range
    states, broken symmetry, ...)."""


class InfeasibleSpecError(ReproError):
    """A model specification for which the paper proves naming impossible.

    Attributes
    ----------
    proposition:
        The label of the paper statement establishing impossibility
        (e.g. ``"Proposition 1"``).
    """

    def __init__(self, message: str, proposition: str = "") -> None:
        super().__init__(message)
        self.proposition = proposition

    def __reduce__(self):
        # Default exception pickling only preserves ``args``; rebuild
        # with the keyword attribute so it survives process boundaries.
        return type(self), (self.args[0], self.proposition)


class ConfigurationError(ReproError):
    """A configuration is inconsistent with the population it describes."""


class SchedulerError(ReproError):
    """A scheduler was asked to do something it cannot
    (e.g. schedule pairs in a population of size one)."""


class SimulationError(ReproError):
    """The simulation loop detected an inconsistency at run time."""


class ConvergenceError(SimulationError):
    """A simulation failed to converge within its interaction budget."""

    def __init__(self, message: str, interactions: int = 0) -> None:
        super().__init__(message)
        self.interactions = interactions

    def __reduce__(self):
        # Default exception pickling only preserves ``args``; rebuild
        # with the keyword attribute so ``interactions`` survives the
        # worker-to-parent hop of ``run_ensemble(n_jobs > 1)``.
        return type(self), (self.args[0], self.interactions)


class VerificationError(ReproError):
    """A model-checking or enumeration routine received invalid input."""


class SanitizerError(SimulationError):
    """The runtime sanitizer (``sanitize=True``) caught an invariant
    violation inside a simulation backend.

    Attributes
    ----------
    backend:
        Name of the backend whose run tripped the check
        (``"reference"``/``"fast"``/``"counts"``/``"batch"``/
        ``"leap"``/``"bleap"``).
    invariant:
        Machine-readable id of the violated invariant, one of
        ``"population-size"``, ``"negative-count"``, ``"state-range"``,
        ``"post-silence-change"``.
    interaction:
        The interaction (or kernel-step) index at which the violation was
        detected, when known.
    """

    def __init__(
        self,
        message: str,
        backend: str = "",
        invariant: str = "",
        interaction: int | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.invariant = invariant
        self.interaction = interaction

    def __reduce__(self):
        # Default exception pickling only preserves ``args``: a
        # SanitizerError raised inside a ``run_ensemble(n_jobs > 1)``
        # worker would reach the parent with ``backend``/``invariant``
        # blanked.  Rebuild with the keyword attributes instead.
        return type(self), (
            self.args[0],
            self.backend,
            self.invariant,
            self.interaction,
        )


class ServeError(ReproError):
    """Base class for errors raised by the serving layer (``repro.serve``)."""


class ServeSaturatedError(ServeError):
    """The serve pool's bounded job queue is full and ``block=False``.

    Attributes
    ----------
    pending:
        Number of jobs in flight when the submission was refused.
    max_pending:
        The pool's configured backpressure bound.
    """

    def __init__(
        self, message: str, pending: int = 0, max_pending: int = 0
    ) -> None:
        super().__init__(message)
        self.pending = pending
        self.max_pending = max_pending

    def __reduce__(self):
        # Default exception pickling only preserves ``args``; rebuild
        # with the keyword attributes so they survive process hops.
        return type(self), (self.args[0], self.pending, self.max_pending)


class WorkerCrashError(ServeError):
    """A serve-pool worker process died while executing a job.

    The pool recovers (the broken executor is discarded and rebuilt on
    the next submission); this error reports which job lost its results,
    structurally, instead of surfacing the executor's raw
    ``BrokenProcessPool`` or hanging.

    Attributes
    ----------
    job_id:
        The pool-assigned id of the job whose results were lost.
    seeds:
        The seeds the crashed job covered (tuple, possibly empty when
        unknown).
    reason:
        The underlying executor failure, as text.
    """

    def __init__(
        self,
        message: str,
        job_id: int = -1,
        seeds: tuple = (),
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.seeds = tuple(seeds)
        self.reason = reason

    def __reduce__(self):
        # Default exception pickling only preserves ``args``; rebuild
        # with the keyword attributes so they survive process hops.
        return type(self), (
            self.args[0],
            self.job_id,
            self.seeds,
            self.reason,
        )


class BackendFallbackWarning(RuntimeWarning):
    """An accelerated simulation backend silently delegated a run to a
    slower backend.

    Emitted (via :func:`repro.engine.fast.warn_fallback`) by the
    accelerated backends (``fast``, ``counts``, ``batch``, ``leap``,
    ``bleap``) when a run cannot be served by their optimized paths - e.g.
    uncompilable state spaces, configuration-inspecting schedulers,
    fault hooks, or initial states outside the declared space.  Results
    are unaffected: the delegate backend is exact.

    The *reason* for the fallback is part of the warning text and is
    also carried structurally so tests and tooling can assert on it
    without parsing the message:

    Attributes
    ----------
    backend:
        Name of the backend that could not serve the run natively.
    delegate:
        Name of the backend the run was handed to.
    reason:
        Human-readable explanation of why the native path was refused.
    """

    def __init__(
        self,
        message: str = "",
        backend: str = "",
        delegate: str = "",
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.delegate = delegate
        self.reason = reason

    def __reduce__(self):
        # Default warning pickling only preserves ``args``: a fallback
        # warning escalated to an error inside a ``run_ensemble(n_jobs >
        # 1)`` worker (``-W error``/``simplefilter("error")``) would
        # cross the process boundary with ``backend``/``delegate``/
        # ``reason`` blanked.  Rebuild with the keyword attributes.
        return type(self), (
            self.args[0] if self.args else "",
            self.backend,
            self.delegate,
            self.reason,
        )
