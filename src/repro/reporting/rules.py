"""Human-readable rendering of protocol transition tables.

The paper presents protocols as lists of rules (``(s, P) -> (s, s+1 mod
P)``) or as pseudo-code; this module renders any implemented protocol back
into the rule-list form, for documentation, the ``show`` CLI command and
debugging.  Only non-null rules are listed (null transitions are the
default, as in the paper).
"""

from __future__ import annotations

from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State, is_leader_state


def _fmt(state: State) -> str:
    if is_leader_state(state):
        fields = getattr(state, "__dataclass_fields__", {})
        if fields:
            inner = ",".join(
                f"{name}={getattr(state, name)}" for name in fields
            )
            return f"L({inner})"
        return "L"
    return repr(state)


def non_null_rules(
    protocol: PopulationProtocol,
    max_leader_states: int | None = 32,
) -> list[tuple[tuple[State, State], tuple[State, State]]]:
    """All non-null rules over the protocol's declared state spaces.

    Leader-state enumeration is capped (leader spaces can be exponential);
    pass ``None`` to disable the cap.
    """
    mobile = sorted(protocol.mobile_state_space(), key=repr)
    leaders = sorted(protocol.leader_state_space(), key=repr)
    if max_leader_states is not None:
        leaders = leaders[:max_leader_states]
    rules = []
    pairs = [(p, q) for p in mobile for q in mobile]
    pairs += [(l, m) for l in leaders for m in mobile]
    pairs += [(m, l) for l in leaders for m in mobile]
    for p, q in pairs:
        p2, q2 = protocol.transition(p, q)
        if (p2, q2) != (p, q):
            rules.append(((p, q), (p2, q2)))
    return rules


def render_rules(
    protocol: PopulationProtocol,
    max_rules: int = 200,
    max_leader_states: int | None = 32,
) -> str:
    """Render the protocol's non-null rules, one per line."""
    rules = non_null_rules(protocol, max_leader_states=max_leader_states)
    lines = [
        f"{protocol.display_name}",
        f"mobile states : {protocol.num_mobile_states} "
        f"({sorted(protocol.mobile_state_space(), key=repr)})",
        f"symmetric     : {protocol.symmetric}",
        f"needs leader  : {protocol.requires_leader}",
        f"non-null rules ({len(rules)}"
        f"{'+' if len(rules) > max_rules else ''} shown up to "
        f"{max_rules}):",
    ]
    for (p, q), (p2, q2) in rules[:max_rules]:
        lines.append(
            f"  ({_fmt(p)}, {_fmt(q)}) -> ({_fmt(p2)}, {_fmt(q2)})"
        )
    if len(rules) > max_rules:
        lines.append(f"  ... {len(rules) - max_rules} more")
    return "\n".join(lines)
