"""JSON export for experiment results.

Every experiment's row type is a (possibly nested) dataclass; this module
serializes them generically so harness outputs can be archived, diffed
across runs or consumed by external plotting, via the experiments' CLI
``--json`` options or programmatically.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment results into JSON-compatible data.

    Handles dataclasses, enums, sets/frozensets (sorted), tuples and the
    engine's configuration objects (rendered as state lists via ``repr``
    for leader states).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((to_jsonable(v) for v in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def dumps(value: Any, indent: int = 2) -> str:
    """Serialize experiment results to a JSON string."""
    return json.dumps(to_jsonable(value), indent=indent, sort_keys=True)


def dump(value: Any, path: str | Path, indent: int = 2) -> Path:
    """Write experiment results to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(dumps(value, indent=indent) + "\n", encoding="utf-8")
    return path
