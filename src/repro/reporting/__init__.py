"""Reporting helpers: rule-table rendering and JSON export."""

from repro.reporting.jsonio import dump, dumps, to_jsonable
from repro.reporting.rules import non_null_rules, render_rules

__all__ = [
    "dump",
    "dumps",
    "non_null_rules",
    "render_rules",
    "to_jsonable",
]
