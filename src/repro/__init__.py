"""repro: a reproduction of "Space-Optimal Naming in Population Protocols"
(Burman, Beauquier, Sohier; PODC 2018 brief announcement / HAL full text).

The package provides:

* the population-protocol execution model (:mod:`repro.engine`) with fair,
  randomized and adversarial schedulers (:mod:`repro.schedulers`);
* the paper's five space-optimal naming protocols and their counting
  substrate (:mod:`repro.core`), addressable through
  :func:`repro.core.registry.protocol_for` by model specification;
* exact model checkers for weak and global fairness and exhaustive
  lower-bound enumeration (:mod:`repro.analysis`);
* transient-fault injection for self-stabilization studies
  (:mod:`repro.faults`);
* the experiment harness regenerating the paper's Table 1 and the
  supplementary measurements (:mod:`repro.experiments`);
* a warm serving layer (:mod:`repro.serve`): a persistent worker pool
  with a content-addressed compiled-protocol cache and bit-identical
  result memoization for many-small-job workloads.

Quickstart::

    from repro import (
        AsymmetricNamingProtocol, NamingProblem, Population,
        Configuration, RandomPairScheduler, run_protocol,
    )

    protocol = AsymmetricNamingProtocol(bound=8)
    population = Population(n_mobile=8)
    scheduler = RandomPairScheduler(population, seed=1)
    initial = Configuration.uniform(population, 0)
    result = run_protocol(
        protocol, population, scheduler, initial, NamingProblem()
    )
    print(result.names())
"""

from repro.core import (
    SINK_STATE,
    AsymmetricNamingProtocol,
    CellResult,
    CountingProtocol,
    Fairness,
    GlobalNamingProtocol,
    LeaderKind,
    LeaderUniformNamingProtocol,
    MobileInit,
    ModelSpec,
    SelfStabilizingNamingProtocol,
    Symmetry,
    SymmetricGlobalNamingProtocol,
    WithIdleLeader,
    all_specs,
    optimal_states,
    protocol_for,
    table1_cell,
    table1_rows,
)
from repro.engine import (
    Configuration,
    CountSimulator,
    CountingProblem,
    FastSimulator,
    NamingProblem,
    Population,
    PopulationProtocol,
    RunStats,
    SimulationResult,
    Simulator,
    Trace,
    make_simulator,
    run_ensemble,
    run_protocol,
    verify_protocol,
)
from repro.errors import (
    BackendFallbackWarning,
    ConfigurationError,
    ConvergenceError,
    InfeasibleSpecError,
    ProtocolError,
    ReproError,
    SanitizerError,
    SchedulerError,
    ServeError,
    ServeSaturatedError,
    SimulationError,
    VerificationError,
    WorkerCrashError,
)
from repro.schedulers import (
    EventuallyFairScheduler,
    HomonymPreservingScheduler,
    MatchingScheduler,
    RandomPairScheduler,
    RoundRobinScheduler,
)
from repro.serve import (
    ArtifactCache,
    JobHandle,
    JobProgress,
    JobSpec,
    ServePool,
)

__version__ = "1.10.0"

__all__ = [
    "SINK_STATE",
    "ArtifactCache",
    "AsymmetricNamingProtocol",
    "BackendFallbackWarning",
    "CellResult",
    "Configuration",
    "ConfigurationError",
    "ConvergenceError",
    "CountSimulator",
    "CountingProblem",
    "CountingProtocol",
    "EventuallyFairScheduler",
    "Fairness",
    "FastSimulator",
    "GlobalNamingProtocol",
    "HomonymPreservingScheduler",
    "InfeasibleSpecError",
    "JobHandle",
    "JobProgress",
    "JobSpec",
    "LeaderKind",
    "LeaderUniformNamingProtocol",
    "MatchingScheduler",
    "MobileInit",
    "ModelSpec",
    "NamingProblem",
    "Population",
    "PopulationProtocol",
    "ProtocolError",
    "RandomPairScheduler",
    "ReproError",
    "RoundRobinScheduler",
    "RunStats",
    "SanitizerError",
    "SchedulerError",
    "SelfStabilizingNamingProtocol",
    "ServeError",
    "ServePool",
    "ServeSaturatedError",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "Symmetry",
    "SymmetricGlobalNamingProtocol",
    "Trace",
    "VerificationError",
    "WithIdleLeader",
    "WorkerCrashError",
    "all_specs",
    "make_simulator",
    "optimal_states",
    "protocol_for",
    "run_ensemble",
    "run_protocol",
    "table1_cell",
    "table1_rows",
    "verify_protocol",
    "__version__",
]
