"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``        regenerate the paper's Table 1 (the headline experiment)
``convergence``   supplementary exp-s1: convergence cost vs population size
``recovery``      supplementary exp-s2: self-stabilizing fault recovery
``ablation``      supplementary exp-s4: scheduler ablation matrix
``lower-bounds``  supplementary exp-s3: exhaustive lower-bound verification
``bench``         simulation-backend micro-benchmark (reference/fast/
                  counts, plus batch-ensemble, leap and bleap sections)
``serve-bench``   serving-layer stress benchmark (warm pool vs cold
                  per-call setup, result-memo replay)
``lint``          static well-formedness audit of all registered protocols
``check``         symbolic model checker: verify naming properties on the
                  counts quotient, with replay-validated counterexamples
``simulate``      run one naming protocol chosen by model parameters
"""

from __future__ import annotations

import argparse
import sys

from repro.core.registry import protocol_for
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    table1_cell,
)
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.fast import BACKENDS, make_simulator
from repro.engine.trace import Trace
from repro.errors import InfeasibleSpecError
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler

_FAIRNESS = {f.value: f for f in Fairness}
_SYMMETRY = {s.value: s for s in Symmetry}
_LEADER = {
    "none": LeaderKind.NONE,
    "non-initialized": LeaderKind.NON_INITIALIZED,
    "initialized": LeaderKind.INITIALIZED,
}
_INIT = {i.value: i for i in MobileInit}


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.reporting.rules import render_rules

    spec = ModelSpec(
        _FAIRNESS[args.fairness],
        _SYMMETRY[args.symmetry],
        _LEADER[args.leader],
        _INIT[args.init],
    )
    try:
        protocol = protocol_for(spec, args.bound)
    except InfeasibleSpecError as exc:
        print(f"infeasible model: {exc}")
        return 2
    cell = table1_cell(spec)
    print(f"model : {spec.describe()}")
    print(f"paper : {cell.protocol_ref}, optimal "
          f"{cell.optimal_states(args.bound)} states")
    print()
    print(render_rules(protocol, max_rules=args.max_rules))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import random

    spec = ModelSpec(
        _FAIRNESS[args.fairness],
        _SYMMETRY[args.symmetry],
        _LEADER[args.leader],
        _INIT[args.init],
    )
    try:
        protocol = protocol_for(spec, args.bound)
    except InfeasibleSpecError as exc:
        print(f"infeasible model: {exc}")
        return 2
    cell = table1_cell(spec)
    population = Population(args.n, protocol.requires_leader)
    if spec.fairness is Fairness.WEAK:
        scheduler = RoundRobinScheduler(
            population, seed=args.seed, shuffle_each_cycle=True
        )
    else:
        scheduler = RandomPairScheduler(population, seed=args.seed)

    rng = random.Random(args.seed)
    mobile_space = sorted(protocol.mobile_state_space())
    if spec.mobile_init is MobileInit.UNIFORM:
        value = protocol.initial_mobile_state()
        mobiles = [value if value is not None else mobile_space[0]] * args.n
    else:
        mobiles = [rng.choice(mobile_space) for _ in range(args.n)]
    leader = None
    if population.has_leader:
        if spec.leader is LeaderKind.INITIALIZED:
            leader = protocol.initial_leader_state()
        else:
            leader = rng.choice(
                sorted(protocol.leader_state_space(), key=repr)
            )
    initial = Configuration.from_states(population, mobiles, leader)

    trace = Trace(capacity=args.trace) if args.trace else None
    simulator = make_simulator(
        args.backend,
        protocol,
        population,
        scheduler,
        NamingProblem(),
        leap_eps=args.leap_eps,
    )
    result = simulator.run(
        initial, max_interactions=args.budget, trace=trace
    )

    print(f"model     : {spec.describe()}")
    print(f"protocol  : {protocol.display_name} ({cell.protocol_ref})")
    print(
        f"states    : {protocol.num_mobile_states} per mobile agent "
        f"(paper optimum: {cell.optimal_states(args.bound)})"
    )
    print(f"population: N = {args.n}, P = {args.bound}")
    print(f"start     : {initial.mobile_states}")
    print(f"result    : {result}")
    if args.verbose and result.stats is not None:
        print(f"perf      : {result.stats} [{args.backend} backend]")
    if trace is not None:
        print()
        print(trace.describe(limit=args.trace))
    return 0 if result.converged else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (``python -m repro``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Space-Optimal Naming in Population "
            "Protocols' (Burman, Beauquier, Sohier; PODC 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", add_help=False)
    sub.add_parser("convergence", add_help=False)
    sub.add_parser("recovery", add_help=False)
    sub.add_parser("ablation", add_help=False)
    sub.add_parser("lower-bounds", add_help=False)
    sub.add_parser("scaling", add_help=False)
    sub.add_parser("time-study", add_help=False)
    sub.add_parser("tradeoffs", add_help=False)
    sub.add_parser("report", add_help=False)
    sub.add_parser("exact-times", add_help=False)
    sub.add_parser("bench", add_help=False)
    sub.add_parser("serve-bench", add_help=False)
    sub.add_parser("lint", add_help=False)
    sub.add_parser("check", add_help=False)

    show = sub.add_parser(
        "show", help="print a protocol's transition rules by model"
    )
    show.add_argument(
        "--fairness", choices=sorted(_FAIRNESS), default="global"
    )
    show.add_argument(
        "--symmetry", choices=sorted(_SYMMETRY), default="symmetric"
    )
    show.add_argument("--leader", choices=sorted(_LEADER), default="none")
    show.add_argument("--init", choices=sorted(_INIT), default="arbitrary")
    show.add_argument("--bound", "-P", type=int, default=4)
    show.add_argument("--max-rules", type=int, default=60)

    simulate = sub.add_parser(
        "simulate", help="run one naming protocol by model parameters"
    )
    simulate.add_argument(
        "--fairness", choices=sorted(_FAIRNESS), default="global"
    )
    simulate.add_argument(
        "--symmetry", choices=sorted(_SYMMETRY), default="symmetric"
    )
    simulate.add_argument(
        "--leader", choices=sorted(_LEADER), default="none"
    )
    simulate.add_argument(
        "--init", choices=sorted(_INIT), default="arbitrary"
    )
    simulate.add_argument("--bound", "-P", type=int, default=8)
    simulate.add_argument("--n", "-N", type=int, default=6)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--budget", type=int, default=2_000_000)
    simulate.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="reference",
        help=(
            "simulation engine: fast is stream-identical to reference; "
            "counts is count-based and statistically equivalent; leap "
            "aggregates many interactions per step (approximate, "
            "tunable via --leap-eps); bleap is the batched tau-leaping "
            "ensemble engine (a single run is a width-1 batch); fluid "
            "fast-forwards the mean-field ODE and hands the endgame to "
            "leap (large populations)"
        ),
    )
    simulate.add_argument(
        "--leap-eps",
        type=float,
        default=None,
        metavar="EPS",
        help=(
            "leap/bleap backends only: per-window relative-change bound "
            "of the adaptive tau selection (smaller = more accurate, "
            "slower; default 0.03)"
        ),
    )
    simulate.add_argument(
        "--trace",
        type=int,
        default=0,
        metavar="K",
        help="print the last K non-null interactions",
    )
    simulate.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="also print run performance stats (wall time, rate, nulls)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: dispatch to experiments or the simulate/show
    commands; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    known_commands = {
        "table1",
        "convergence",
        "recovery",
        "ablation",
        "lower-bounds",
        "scaling",
        "time-study",
        "tradeoffs",
        "report",
        "exact-times",
        "bench",
        "serve-bench",
        "lint",
        "check",
        "simulate",
        "show",
    }
    if argv and argv[0] in known_commands and argv[0] not in (
        "simulate",
        "show",
    ):
        # Delegate to the experiment module's own argparse CLI.
        command, rest = argv[0], argv[1:]
        if command == "table1":
            from repro.experiments.table1 import main as run

            return run(rest)
        if command == "convergence":
            from repro.experiments.convergence import main as run

            return run(rest)
        if command == "recovery":
            from repro.experiments.recovery import main as run

            return run(rest)
        if command == "ablation":
            from repro.experiments.ablation import main as run

            return run(rest)
        if command == "scaling":
            from repro.experiments.scaling import main as run

            return run(rest)
        if command == "time-study":
            from repro.experiments.time_study import main as run

            return run(rest)
        if command == "tradeoffs":
            from repro.experiments.tradeoffs import main as run

            return run(rest)
        if command == "report":
            from repro.experiments.full_report import main as run

            return run(rest)
        if command == "exact-times":
            from repro.experiments.exact_times import main as run

            return run(rest)
        if command == "bench":
            from repro.experiments.bench import main as run

            return run(rest)
        if command == "serve-bench":
            from repro.serve.bench import main as run

            return run(rest)
        if command == "lint":
            from repro.lint.cli import main as run

            return run(rest)
        if command == "check":
            from repro.analysis.check import main as run

            return run(rest)
        from repro.experiments.lower_bounds import main as run

        return run(rest)
    args = parser.parse_args(argv)
    if args.command == "show":
        return _cmd_show(args)
    return _cmd_simulate(args)


if __name__ == "__main__":
    raise SystemExit(main())
