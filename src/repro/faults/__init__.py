"""Transient-fault injection for self-stabilization experiments."""

from repro.faults.injection import (
    Corruption,
    FaultEvent,
    FaultPlan,
    corrupt_agents,
    corrupt_all_mobile_to,
    corrupt_leader_to,
    corrupt_random_mobile,
    scramble_everything,
)

__all__ = [
    "Corruption",
    "FaultEvent",
    "FaultPlan",
    "corrupt_agents",
    "corrupt_all_mobile_to",
    "corrupt_leader_to",
    "corrupt_random_mobile",
    "scramble_everything",
]
