"""Transient-fault injection.

Self-stabilization (the paper's fault-tolerance notion) means convergence
from *arbitrary* configurations - equivalently, recovery after transient
memory corruption.  A :class:`FaultPlan` schedules corruption events along
a simulation; each event rewrites part of the configuration.  The recovery
experiments corrupt converged populations and measure how many further
interactions re-convergence takes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import ReproError

#: A corruption: maps the configuration at the fault instant to a new one.
Corruption = Callable[[Configuration], Configuration]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled corruption at a given interaction index."""

    at_interaction: int
    corruption: Corruption
    label: str = "fault"


@dataclass
class FaultPlan:
    """A set of corruption events, consumable as a simulator fault hook."""

    events: list[FaultEvent] = field(default_factory=list)
    applied: list[str] = field(default_factory=list)

    def add(self, event: FaultEvent) -> None:
        """Schedule one corruption event (kept sorted by time)."""
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_interaction)

    def hook(
        self, interaction: int, config: Configuration
    ) -> Configuration | None:
        """Simulator fault hook: apply all events due at this interaction."""
        due = [e for e in self.events if e.at_interaction == interaction]
        if not due:
            return None
        for event in due:
            config = event.corruption(config)
            self.applied.append(event.label)
        return config

    __call__ = hook


# ----------------------------------------------------------------------
# Corruption builders
# ----------------------------------------------------------------------


def corrupt_agents(
    agents: Sequence[int], states: Sequence[State]
) -> Corruption:
    """Set the given agents to the given states."""
    if len(agents) != len(states):
        raise ReproError(
            f"{len(agents)} agents but {len(states)} replacement states"
        )
    updates = dict(zip(agents, states))

    def corruption(config: Configuration) -> Configuration:
        return config.replace(updates)

    return corruption


def corrupt_all_mobile_to(
    population: Population, state: State
) -> Corruption:
    """Adversarial worst case: every mobile agent collapses to one state."""

    def corruption(config: Configuration) -> Configuration:
        return config.replace(
            {agent: state for agent in population.mobile_agents}
        )

    return corruption


def corrupt_random_mobile(
    population: Population,
    protocol: PopulationProtocol,
    count: int,
    seed: int,
) -> Corruption:
    """Corrupt ``count`` randomly chosen mobile agents to random legal
    states."""

    def corruption(config: Configuration) -> Configuration:
        rng = random.Random(seed)
        space = sorted(protocol.mobile_state_space())
        victims = rng.sample(population.mobile_agents, count)
        return config.replace(
            {agent: rng.choice(space) for agent in victims}
        )

    return corruption


def corrupt_leader_to(population: Population, state: State) -> Corruption:
    """Overwrite the leader's memory (e.g. a bogus count or pointer)."""
    leader = population.leader
    if leader is None:
        raise ReproError("population has no leader to corrupt")

    def corruption(config: Configuration) -> Configuration:
        return config.replace({leader: state})

    return corruption


def scramble_everything(
    population: Population,
    protocol: PopulationProtocol,
    seed: int,
    leader_states: Sequence[State] | None = None,
) -> Corruption:
    """Replace every agent's state (leader included when possible) with a
    uniformly random legal state - a total memory wipe."""

    def corruption(config: Configuration) -> Configuration:
        rng = random.Random(seed)
        space = sorted(protocol.mobile_state_space())
        updates: dict[int, State] = {
            agent: rng.choice(space) for agent in population.mobile_agents
        }
        if population.has_leader:
            leaders = (
                list(leader_states)
                if leader_states is not None
                else sorted(protocol.leader_state_space(), key=repr)
            )
            if leaders:
                updates[population.leader] = rng.choice(leaders)
        return config.replace(updates)

    return corruption
