"""Mapping every feasible model specification to its space-optimal protocol.

This is the library's front door: given a :class:`~repro.core.spec.ModelSpec`
and the bound ``P``, :func:`protocol_for` returns the paper's space-optimal
naming protocol for that cell of Table 1, or raises
:class:`~repro.errors.InfeasibleSpecError` citing the impossibility result.
"""

from __future__ import annotations

from repro.core.adapters import WithIdleLeader
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    table1_cell,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.protocol import PopulationProtocol
from repro.errors import InfeasibleSpecError


def protocol_for(spec: ModelSpec, bound: int) -> PopulationProtocol:
    """The paper's space-optimal naming protocol for ``spec`` with bound
    ``P = bound``.

    Raises
    ------
    InfeasibleSpecError
        For the impossible cell (symmetric rules, weak fairness, no
        leader), citing Proposition 1.
    """
    cell = table1_cell(spec)
    if not cell.feasible:
        raise InfeasibleSpecError(
            f"naming is impossible for: {spec.describe()} "
            f"(paper: {cell.lower_bound_ref})",
            proposition=cell.lower_bound_ref or "",
        )

    if spec.symmetry is Symmetry.ASYMMETRIC:
        protocol: PopulationProtocol = AsymmetricNamingProtocol(bound)
        if spec.leader is not LeaderKind.NONE:
            protocol = WithIdleLeader(protocol)
        return protocol

    if spec.leader is LeaderKind.NONE:
        # Symmetric + global fairness (weak is infeasible, handled above).
        return SymmetricGlobalNamingProtocol(bound)

    if spec.leader is LeaderKind.NON_INITIALIZED:
        if spec.fairness is Fairness.WEAK:
            return SelfStabilizingNamingProtocol(bound)
        # Global fairness: the paper reuses the leaderless Prop. 13
        # protocol, the leader being ignored.
        return WithIdleLeader(SymmetricGlobalNamingProtocol(bound))

    # Initialized leader.
    if spec.fairness is Fairness.WEAK:
        if spec.mobile_init is MobileInit.UNIFORM:
            return LeaderUniformNamingProtocol(bound)
        return SelfStabilizingNamingProtocol(bound)
    return GlobalNamingProtocol(bound)


def optimal_states(spec: ModelSpec, bound: int) -> int:
    """The paper's optimal number of states per mobile agent for ``spec``.

    Raises :class:`InfeasibleSpecError` for the impossible cell.
    """
    cell = table1_cell(spec)
    states = cell.optimal_states(bound)
    if states is None:
        raise InfeasibleSpecError(
            f"naming is impossible for: {spec.describe()}",
            proposition=cell.lower_bound_ref or "",
        )
    return states
