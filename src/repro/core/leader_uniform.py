"""Proposition 14: symmetric naming with an initialized leader and
uniformly initialized mobile agents - ``P`` states, weak fairness.

Mobile agents start in the designated state ``P``; the leader carries a
counter initialized to 1.  Whenever the leader meets an agent still in
state ``P`` and the counter is below ``P``, the agent takes the counter as
its name and the counter advances.  The ``k``-th renamed agent is named
``k``; for ``N = P`` the last agent keeps the name ``P`` itself, so all
names are distinct with only ``P`` states per mobile agent.

This beats the ``P + 1`` lower bound of the non-initialized cases
(Theorem 11) precisely because uniform initialization removes the "hidden
homonym" adversary, and it shows the initialization exception discussed
with Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.protocol import PopulationProtocol
from repro.engine.state import LeaderState, State, is_leader_state
from repro.errors import ProtocolError


@dataclass(frozen=True)
class CounterLeaderState(LeaderState):
    """The leader's single variable: the next name to hand out."""

    counter: int


class LeaderUniformNamingProtocol(PopulationProtocol):
    """The initialized-leader, uniform-start protocol of Proposition 14.

    Mobile states ``{1, ..., P}``; the uniform initial mobile state is
    ``P`` and the leader starts with counter 1.  Correct under weak (hence
    also global) fairness for any ``N <= P``.
    """

    display_name = "leader + uniform init naming (Prop. 14)"
    symmetric = True
    requires_leader = True

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ProtocolError(f"the bound P must be positive, got {bound}")
        self.bound = bound
        self._mobile = frozenset(range(1, bound + 1))
        self._leader = frozenset(
            CounterLeaderState(c) for c in range(1, bound + 1)
        )

    def transition(self, p: State, q: State) -> tuple[State, State]:
        if is_leader_state(p) and not is_leader_state(q):
            leader, mobile = p, q
            leader2, mobile2 = self._leader_rule(leader, mobile)
            return leader2, mobile2
        if is_leader_state(q) and not is_leader_state(p):
            mobile, leader = p, q
            leader2, mobile2 = self._leader_rule(leader, mobile)
            return mobile2, leader2
        return p, q  # mobile-mobile meetings are all null

    def _leader_rule(
        self, leader: CounterLeaderState, mobile: int
    ) -> tuple[CounterLeaderState, int]:
        if mobile == self.bound and leader.counter < self.bound:
            return CounterLeaderState(leader.counter + 1), leader.counter
        return leader, mobile

    def mobile_state_space(self) -> frozenset[State]:
        return self._mobile

    def leader_state_space(self) -> frozenset[State]:
        return self._leader

    def initial_mobile_state(self) -> State:
        return self.bound

    def initial_leader_state(self) -> State:
        return CounterLeaderState(1)
