"""Proposition 13: symmetric, leaderless, self-stabilizing naming under
global fairness with ``P + 1`` states.

The protocol's three rule families over states ``{0, ..., P}`` (``P`` is
the extra non-name state):

1. ``s != P:  (s, P) -> (s, s + 1 mod P)``  - a ``P``-agent adopts the
   successor of a named agent's name;
2. ``s != P:  (s, s) -> (P, P)``            - homonyms dissolve to ``P``;
3. ``        (P, P) -> (1, 1)``             - two ``P``-agents restart at 1.

Under global fairness a correct naming configuration (all names in
``{0, ..., P-1}`` distinct, nobody in state ``P``) is reachable from every
configuration and is silent, hence eventually reached.  The paper requires
``N > 2``: with exactly two agents the uniform configurations ``(s, s)``,
``(P, P)`` and ``(1, 1)`` form a closed cycle that never breaks symmetry
(the test suite demonstrates this failure).

By Proposition 2, ``P + 1`` states are necessary here, so the protocol is
space optimal.
"""

from __future__ import annotations

from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import ProtocolError


class SymmetricGlobalNamingProtocol(PopulationProtocol):
    """The leaderless symmetric protocol of Proposition 13.

    Mobile states ``{0, ..., P}``; ``P`` is the non-name "reset" state.
    Valid for populations of size ``2 < N <= P`` under global fairness,
    from arbitrary initial states (self-stabilizing).
    """

    display_name = "symmetric leaderless naming (Prop. 13)"
    symmetric = True
    requires_leader = False

    def __init__(self, bound: int) -> None:
        if bound < 2:
            raise ProtocolError(
                f"the bound P must be at least 2 for rule 3 to make sense, "
                f"got {bound}"
            )
        self.bound = bound
        self._states = frozenset(range(bound + 1))

    @property
    def reset_state(self) -> int:
        """The extra non-name state (called ``P`` in the paper)."""
        return self.bound

    def transition(self, p: State, q: State) -> tuple[State, State]:
        reset = self.bound
        if p == reset and q == reset:  # rule 3
            return 1, 1
        if p == q:  # rule 2 (p, q != P here)
            return reset, reset
        if q == reset:  # rule 1, responder adopts successor of p
            return p, (p + 1) % self.bound
        if p == reset:  # rule 1, symmetric orientation
            return (q + 1) % self.bound, q
        return p, q

    def mobile_state_space(self) -> frozenset[State]:
        return self._states
