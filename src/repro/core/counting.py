"""Protocol 1: space-optimal counting under weak fairness (from [11],
Beauquier-Burman-Claviere-Sohier, DISC 2015).

This is the substrate both leader-based naming protocols (Protocols 2 and 3)
build on.  The base station BST repeatedly guesses the population size
(variable ``n``), naming zero-state agents along the universal sequence
``U* = U_{P-1}`` (variable ``k`` points into it); interacting homonyms
dissolve to the special state 0, signalling BST that the current guess
failed.  Theorem 15: under weak fairness, with arbitrarily initialized
mobile agents and an initialized BST, ``n`` converges to ``N`` for any
``N <= P``, and for ``N < P`` the agents are moreover left with distinct
names in ``{1, ..., N}``.

Implementation notes
--------------------
* ``U*(k)`` is computed with the ruler-function closed form
  (:func:`repro.core.usequence.u_element`); nothing exponential is stored.
* When the guess increments to its final value the pointer ``k`` may step
  just past ``U_{P-1}``; the ruler value there is ``P``, which does not fit
  the ``P``-state mobile space ``{0, ..., P-1}``.  The agent is then left
  in state 0 - harmless for counting (the guess has already converged), and
  exactly the hook Protocol 3 exploits for the ``N = P`` naming case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.usequence import sequence_length, u_element
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import LeaderState, State, is_leader_state
from repro.errors import ProtocolError

#: The paper's special mobile state: "unnamed / homonym detected".
SINK_STATE = 0


@dataclass(frozen=True)
class CountingLeaderState(LeaderState):
    """BST variables of Protocol 1: the guess ``n`` and the pointer ``k``."""

    n: int
    k: int


def protocol1_leader_step(
    n: int, k: int, name: int, max_name: int, k_cap: int
) -> tuple[int, int, int]:
    """One BST interaction of the Protocol 1 core (lines 3-9).

    Shared by Protocols 1, 2 and 3, which differ only in the line-2 guard
    they apply *before* calling this (``n < P`` vs ``n <= P``), in
    ``max_name`` (``P - 1`` vs ``P``) and in what they wrap around the core.

    ``k_cap`` is the top of the pointer's declared domain (``2^{P-1}`` for
    Protocol 1/3, ``2^P`` for Protocol 2); the increment of line 4
    saturates there.  Along well-initialized executions the cap is never
    hit (the guess freezes first), so this only pins down the behaviour on
    the arbitrary initial BST states self-stabilization must tolerate - in
    that regime any saturated pointer already exceeds every ``l_n``, so the
    guess still races to the reset threshold exactly as in the paper.

    Returns the updated ``(n, k, name)``; callers must only invoke it when
    the line-2 guard (``name == 0`` or ``name > n``) holds.
    """
    if name == SINK_STATE:
        k = min(k + 1, k_cap)  # line 4: advance along U*
    elif name > n:
        k = sequence_length(n) + 1  # line 6: population larger than n
    if k > sequence_length(n):
        n += 1  # line 8
    value = u_element(k) if k >= 1 else SINK_STATE
    # Line 9, guarded against the one-past-the-end overflow (see module
    # docstring): a value outside the mobile space leaves the agent unnamed.
    name = value if value <= max_name else SINK_STATE
    return n, k, name


class CountingProtocol(PopulationProtocol):
    """Protocol 1: counting (and, for ``N < P``, naming) under weak fairness.

    Mobile states ``{0, ..., P-1}`` (arbitrary initialization); BST state
    ``(n, k)`` initialized to ``(0, 0)``.

    Parameters
    ----------
    bound:
        The known upper bound ``P`` on the number of mobile agents.
    """

    display_name = "space-optimal counting, Protocol 1 [11]"
    symmetric = True
    requires_leader = True

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ProtocolError(f"the bound P must be positive, got {bound}")
        self.bound = bound
        self._mobile = frozenset(range(bound))

    # -- state spaces ---------------------------------------------------

    def mobile_state_space(self) -> frozenset[State]:
        return self._mobile

    def leader_state_space(self) -> frozenset[State]:
        """Reachable BST states: ``n`` in ``[0, P]``, ``k`` in
        ``[0, 2^{P-1}]``.  Exponential in ``P``; enumerate only for small
        bounds (verification and model checking)."""
        k_max = sequence_length(self.bound - 1) + 1 if self.bound > 1 else 1
        return frozenset(
            CountingLeaderState(n, k)
            for n in range(self.bound + 1)
            for k in range(k_max + 1)
        )

    def leader_space_size(self) -> int:
        """``(P + 1) * (k_max + 1)`` in closed form (no enumeration)."""
        k_max = sequence_length(self.bound - 1) + 1 if self.bound > 1 else 1
        return (self.bound + 1) * (k_max + 1)

    def initial_leader_state(self) -> State:
        return CountingLeaderState(0, 0)

    # -- transition function -------------------------------------------

    def transition(self, p: State, q: State) -> tuple[State, State]:
        if is_leader_state(p) and not is_leader_state(q):
            leader, name = self._bst_rule(p, q)
            return leader, name
        if is_leader_state(q) and not is_leader_state(p):
            leader, name = self._bst_rule(q, p)
            return name, leader
        return self._mobile_rule(p, q)

    def _bst_rule(
        self, leader: CountingLeaderState, name: int
    ) -> tuple[CountingLeaderState, int]:
        """Lines 1-9 of Protocol 1."""
        n, k = leader.n, leader.k
        if n < self.bound and (name == SINK_STATE or name > n):
            k_cap = sequence_length(self.bound - 1) + 1 if self.bound > 1 else 1
            n, k, name = protocol1_leader_step(
                n, k, name, self.bound - 1, k_cap
            )
            return CountingLeaderState(n, k), name
        return leader, name

    def _mobile_rule(self, p: int, q: int) -> tuple[int, int]:
        """Lines 10-12: interacting homonyms dissolve to the sink."""
        if p == q and p != SINK_STATE:
            return SINK_STATE, SINK_STATE
        return p, q
