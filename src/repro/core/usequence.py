"""The universal naming sequence ``U*`` of Protocol 1 (from [11]).

The counting/naming protocols assign names to zero-state agents one by one,
following a fixed sequence defined recursively:

    ``U_1 = 1``            and        ``U_n = U_{n-1}, n, U_{n-1}``

so ``|U_n| = l_n = 2^n - 1``.  Protocol 1 (counting, ``P`` states) uses
``U* = U_{P-1}``; Protocol 2 (self-stabilizing naming, ``P + 1`` states)
uses ``U* = U_P``.

Materializing ``U_P`` takes ``2^P - 1`` entries, which is hopeless for even
moderate ``P``; but the sequence is exactly the *ruler function*: the
``k``-th element (1-indexed) is one plus the number of trailing zeros in the
binary representation of ``k``, i.e. the index of the lowest set bit.  The
implementation below exploits that closed form, so indexed access is O(1)
and no storage is needed; the recursive definition is kept (for small ``n``)
as a cross-check used by the test suite.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ReproError


def sequence_length(n: int) -> int:
    """``l_n = 2^n - 1``, the length of ``U_n``."""
    if n < 0:
        raise ReproError(f"l_n is defined for n >= 0, got {n}")
    return (1 << n) - 1


def u_element(k: int) -> int:
    """The ``k``-th (1-indexed) element of ``U_n`` for any ``n`` with
    ``l_n >= k``.

    By the recursive structure, ``U_n`` is a prefix-consistent family: the
    first ``l_{n-1}`` entries of ``U_n`` are exactly ``U_{n-1}``, so the
    value at position ``k`` does not depend on ``n``.  The closed form is
    the ruler function: ``1 + (number of trailing zeros of k)``.
    """
    if k < 1:
        raise ReproError(f"U* is 1-indexed, got k = {k}")
    return (k & -k).bit_length()


def u_sequence(n: int) -> list[int]:
    """Materialize ``U_n`` from the recursive definition.

    Exponential in ``n``; intended for tests and tiny ``n`` only.
    """
    if n < 0:
        raise ReproError(f"U_n is defined for n >= 0, got {n}")
    if n == 0:
        return []
    seq = [1]
    for level in range(2, n + 1):
        seq = seq + [level] + seq
    return seq


def iter_u(n: int) -> Iterator[int]:
    """Iterate over ``U_n`` lazily (no exponential storage)."""
    for k in range(1, sequence_length(n) + 1):
        yield u_element(k)


def occurrences(value: int, n: int) -> int:
    """How many times ``value`` occurs in ``U_n``.

    The value ``v`` occurs once in ``U_v`` and doubles with each further
    level: ``2^{n - v}`` occurrences in ``U_n`` (0 when ``v > n``).
    """
    if value < 1:
        raise ReproError(f"U_n contains only positive values, got {value}")
    if value > n:
        return 0
    return 1 << (n - value)


def first_occurrence(value: int) -> int:
    """The 1-indexed position of the first occurrence of ``value``.

    The middle of ``U_value``, i.e. ``2^{value-1}``; this is the position
    ``l_{value-1} + 1`` the protocols jump to when evidence of a larger
    population arrives (Protocol 1, line 6).
    """
    if value < 1:
        raise ReproError(f"U_n contains only positive values, got {value}")
    return 1 << (value - 1)
