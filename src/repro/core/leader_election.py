"""Self-stabilizing leader election as a by-product of naming.

The paper's introduction observes that naming is "frequently performed as
a by-product or as an important design module" of other self-stabilizing
tasks, leader election among them; conversely, Cai-Izumi-Wada [19] prove
that self-stabilizing leader election needs exactly ``N`` states and the
exact knowledge of ``N`` - the same ``N`` states the asymmetric naming
protocol uses when ``P = N``.

This module makes the reduction concrete: run Proposition 12's naming rule
with ``P = N`` (exact size knowledge, as [19] requires), and read "I hold
name 0" as "I am the leader".  Once names stabilize they are a permutation
of ``{0, ..., N-1}``, so exactly one agent ever holds 0 - a space-optimal
(``N``-state) self-stabilizing leader election, matching [19]'s bound.
"""

from __future__ import annotations

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import Problem, is_silent
from repro.engine.protocol import PopulationProtocol
from repro.errors import ProtocolError

#: The name designating the elected leader.
LEADER_NAME = 0


class NamingLeaderElectionProtocol(AsymmetricNamingProtocol):
    """Proposition 12's rule used for leader election with exact size
    knowledge (``P = N``), after [19].

    The transition structure is identical; only the interpretation
    changes: :meth:`is_elected` reads the leadership predicate off a
    state.
    """

    display_name = "naming-based leader election ([19] via Prop. 12)"

    def __init__(self, population_size: int) -> None:
        if population_size < 1:
            raise ProtocolError(
                f"population size must be positive, got {population_size}"
            )
        super().__init__(bound=population_size)

    @staticmethod
    def is_elected(state: int) -> bool:
        """Whether an agent in ``state`` considers itself the leader."""
        return state == LEADER_NAME


class LeaderElectionProblem(Problem):
    """Exactly one agent elected, forever.

    Satisfied when exactly one mobile agent holds :data:`LEADER_NAME`;
    stable when the configuration is silent (for the naming-based
    protocol, silence coincides with all-distinct names).
    """

    display_name = "leader election"

    def is_satisfied(self, config: Configuration) -> bool:
        elected = sum(
            1 for s in config.mobile_states if s == LEADER_NAME
        )
        return elected == 1

    def is_stable(
        self, protocol: PopulationProtocol, config: Configuration
    ) -> bool:
        return is_silent(protocol, config)


def elected_agents(
    population: Population, config: Configuration
) -> list[int]:
    """Ids of the mobile agents currently claiming leadership."""
    return [
        agent
        for agent in population.mobile_agents
        if config.state_of(agent) == LEADER_NAME
    ]
