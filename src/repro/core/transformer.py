"""The asymmetric-to-symmetric transformer (paper footnote 5, after [17]).

Footnote 5 notes that an asymmetric protocol can be transformed into a
symmetric one at the price of *doubling* the state space and *requiring
global fairness* - which is exactly why the transformer is "frequently
inadequate for obtaining a space efficient symmetric solution": naming a
``P``-bound population through it costs ``2P`` states where Proposition 13
pays only ``P + 1``.

Construction.  Each mobile state ``q`` is tagged with a coin bit:
``(q, 0)`` or ``(q, 1)``.

* Agents meeting with *equal* bits cannot elect an initiator; they both
  flip their coin (a symmetric rule) and wait for a luckier meeting.
* Agents meeting with *different* bits use the bit as the tie-breaker: the
  0-tagged agent plays the initiator of the wrapped asymmetric protocol,
  both keep their bits.

Under global fairness every pair reaches a differing-bit meeting from any
recurrent configuration, so the wrapped protocol's transitions keep firing
until it converges.  Like Proposition 13's protocol, the construction
breaks down for ``N = 2`` started fully symmetric (two agents flipping in
lock-step never diverge) - the test suite demonstrates both this failure
and the ``N > 2`` success with the exact model checker, reproducing the
footnote's space comparison quantitatively.
"""

from __future__ import annotations

from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import ProtocolError

#: Tagged states are pairs ``(inner_state, coin_bit)``.
TaggedState = tuple


class SymmetrizedProtocol(PopulationProtocol):
    """Run a leaderless asymmetric protocol with symmetric rules, paying a
    factor-two state blow-up and a global-fairness requirement.

    Parameters
    ----------
    inner:
        The wrapped (typically asymmetric) leaderless protocol.
    """

    symmetric = True
    requires_leader = False

    def __init__(self, inner: PopulationProtocol) -> None:
        if inner.requires_leader:
            raise ProtocolError(
                "the transformer of [17] is defined for leaderless protocols"
            )
        self._inner = inner
        self.display_name = f"symmetrized({inner.display_name})"

    @property
    def inner(self) -> PopulationProtocol:
        """The wrapped asymmetric protocol."""
        return self._inner

    def transition(self, p: State, q: State) -> tuple[State, State]:
        (ps, pb) = p
        (qs, qb) = q
        if pb == qb:
            # Equal coins: no initiator can be elected; both flip.
            return (ps, 1 - pb), (qs, 1 - qb)
        # Different coins: the 0-tagged agent initiates.
        if pb == 0:
            ps2, qs2 = self._inner.transition(ps, qs)
        else:
            qs2, ps2 = self._inner.transition(qs, ps)
        return (ps2, pb), (qs2, qb)

    def mobile_state_space(self) -> frozenset[State]:
        return frozenset(
            (s, bit)
            for s in self._inner.mobile_state_space()
            for bit in (0, 1)
        )

    def initial_mobile_state(self) -> State | None:
        inner_initial = self._inner.initial_mobile_state()
        if inner_initial is None:
            return None
        return (inner_initial, 0)

    @staticmethod
    def project(state: TaggedState) -> State:
        """Strip the coin bit: the wrapped protocol's state (the name)."""
        return state[0]


class ProjectedNamingProblem:
    """Naming on the *projected* states of a symmetrized protocol.

    The coin bits keep flipping forever, so the raw configuration is never
    silent; naming is judged on the inner states: they must be distinct
    and be preserved by every realizable transition.
    """

    display_name = "naming (projected through the coin tag)"

    def is_satisfied(self, config) -> bool:
        """Whether the projected names are pairwise distinct."""
        names = [SymmetrizedProtocol.project(s) for s in config.mobile_states]
        return len(set(names)) == len(names)

    def is_stable(self, protocol, config) -> bool:
        """Names can never change again iff the *inner* protocol is null
        on every ordered pair of inner states two distinct agents hold.

        This is deliberately coin-agnostic: coin flips permute which
        orientations are realizable right now, so a check over the tagged
        pairs present in one configuration would not be a proof.  The
        inner multiset itself is preserved by flips, hence checking all
        ordered inner pairs once certifies stability forever.
        """
        inner = protocol.inner
        names = [SymmetrizedProtocol.project(s) for s in config.mobile_states]
        from collections import Counter
        from itertools import permutations

        counts = Counter(names)
        for a, b in permutations(counts, 2):
            if inner.transition(a, b) != (a, b):
                return False
        for a, c in counts.items():
            if c >= 2 and inner.transition(a, a) != (a, a):
                return False
        return True

    def is_solved(self, protocol, config) -> bool:
        """Certified convergence: distinct projected names, stable."""
        return self.is_satisfied(config) and self.is_stable(protocol, config)
