"""Model specifications and the Table 1 feasibility oracle.

The paper analyses naming under every combination of four model parameters
(Section 1.2, Table 1).  :class:`ModelSpec` names one combination;
:func:`table1_cell` returns the paper's verdict for it - feasible or not,
the exact optimal number of states per mobile agent, and the propositions
establishing the protocol and the matching lower bound.

The oracle is *data*, transcribed from the paper; the experiment harness
(:mod:`repro.experiments.table1`) regenerates the same verdicts
empirically, which is the reproduction's headline check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class Fairness(enum.Enum):
    """The scheduler's fairness guarantee."""

    WEAK = "weak"
    GLOBAL = "global"


class Symmetry(enum.Enum):
    """Whether transition rules may distinguish initiator from responder."""

    SYMMETRIC = "symmetric"
    ASYMMETRIC = "asymmetric"


class LeaderKind(enum.Enum):
    """Presence and initialization of the distinguishable agent."""

    NONE = "no leader"
    NON_INITIALIZED = "non-initialized leader"
    INITIALIZED = "initialized leader"


class MobileInit(enum.Enum):
    """Initialization assumption on the mobile agents."""

    ARBITRARY = "arbitrary"  # self-stabilizing setting
    UNIFORM = "uniform"


@dataclass(frozen=True)
class ModelSpec:
    """One combination of the paper's four model parameters."""

    fairness: Fairness
    symmetry: Symmetry
    leader: LeaderKind
    mobile_init: MobileInit

    def describe(self) -> str:
        """One-line human-readable description of the combination."""
        return (
            f"{self.symmetry.value} rules, {self.fairness.value} fairness, "
            f"{self.leader.value}, {self.mobile_init.value} mobile init"
        )


@dataclass(frozen=True)
class CellResult:
    """The paper's verdict for one :class:`ModelSpec`.

    ``extra_states`` is the optimal state count minus ``P`` (0 or 1);
    ``None`` when naming is infeasible.
    """

    feasible: bool
    extra_states: int | None
    protocol_ref: str | None
    lower_bound_ref: str | None
    notes: str = ""

    def optimal_states(self, bound: int) -> int | None:
        """Optimal states per mobile agent for upper bound ``P = bound``."""
        if self.extra_states is None:
            return None
        return bound + self.extra_states


def table1_cell(spec: ModelSpec) -> CellResult:
    """The paper's Table 1 verdict for ``spec``."""
    if spec.symmetry is Symmetry.ASYMMETRIC:
        # Right-hand column: one asymmetric rule suffices everywhere.
        return CellResult(
            feasible=True,
            extra_states=0,
            protocol_ref="Proposition 12",
            lower_bound_ref="trivial (P names need P states)",
            notes="self-stabilizing, leaderless, weak or global fairness",
        )

    if spec.leader is LeaderKind.NONE:
        if spec.fairness is Fairness.WEAK:
            return CellResult(
                feasible=False,
                extra_states=None,
                protocol_ref=None,
                lower_bound_ref="Proposition 1",
                notes="no symmetric protocol can break symmetry without a "
                "leader under weak fairness",
            )
        return CellResult(
            feasible=True,
            extra_states=1,
            protocol_ref="Proposition 13",
            lower_bound_ref="Proposition 2",
            notes="requires N > 2; self-stabilizing",
        )

    if spec.leader is LeaderKind.NON_INITIALIZED:
        if spec.fairness is Fairness.WEAK:
            return CellResult(
                feasible=True,
                extra_states=1,
                protocol_ref="Proposition 16",
                lower_bound_ref="Proposition 4",
                notes="self-stabilizing (leader included)",
            )
        return CellResult(
            feasible=True,
            extra_states=1,
            protocol_ref="Proposition 13",
            lower_bound_ref="Proposition 4",
            notes="paper reuses the leaderless protocol; requires N > 2",
        )

    # Initialized leader.
    if spec.fairness is Fairness.WEAK:
        if spec.mobile_init is MobileInit.UNIFORM:
            return CellResult(
                feasible=True,
                extra_states=0,
                protocol_ref="Proposition 14",
                lower_bound_ref="trivial (P names need P states)",
                notes="the Table 1 initialization exception",
            )
        return CellResult(
            feasible=True,
            extra_states=1,
            protocol_ref="Proposition 16",
            lower_bound_ref="Theorem 11",
            notes="the paper's most intricate lower bound",
        )
    return CellResult(
        feasible=True,
        extra_states=0,
        protocol_ref="Proposition 17",
        lower_bound_ref="trivial (P names need P states)",
        notes="ordered-sweep protocol; N = P case needs global fairness",
    )


def all_specs() -> Iterator[ModelSpec]:
    """Every combination of the four model parameters (24 in total)."""
    for fairness in Fairness:
        for symmetry in Symmetry:
            for leader in LeaderKind:
                for init in MobileInit:
                    yield ModelSpec(fairness, symmetry, leader, init)


def table1_rows() -> list[tuple[ModelSpec, CellResult]]:
    """All specs with their verdicts, in a stable presentation order."""
    return [(spec, table1_cell(spec)) for spec in all_specs()]
