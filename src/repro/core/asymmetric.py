"""Proposition 12: asymmetric, leaderless, self-stabilizing naming.

One asymmetric rule suffices:

    ``(s, s) -> (s, s + 1 mod P)``

Starting from *any* configuration of at most ``P`` agents, every weakly or
globally fair execution converges to distinct names.  The proof defines a
lexicographic potential - the pair (number of *holes*, total *hole
distance*) - that strictly decreases with every non-null transition; the
potential lives in :mod:`repro.analysis.potential` and is exercised by the
property-based tests.

This is space optimal (``P`` states for at most ``P`` agents is the trivial
lower bound) and needs no leader and no initialization under either
fairness: the strongest positive cell of Table 1 for asymmetric rules.
"""

from __future__ import annotations

from repro.engine.protocol import PopulationProtocol
from repro.engine.state import State
from repro.errors import ProtocolError


class AsymmetricNamingProtocol(PopulationProtocol):
    """The single-rule asymmetric naming protocol of Proposition 12.

    Mobile states are ``{0, ..., P-1}``; when two homonyms meet, the
    responder advances by one modulo ``P``.

    Parameters
    ----------
    bound:
        The known upper bound ``P`` on the population size.
    """

    display_name = "asymmetric naming (Prop. 12)"
    symmetric = False
    requires_leader = False

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ProtocolError(f"the bound P must be positive, got {bound}")
        self.bound = bound
        self._states = frozenset(range(bound))

    def transition(self, p: State, q: State) -> tuple[State, State]:
        if p == q:
            return p, (q + 1) % self.bound
        return p, q

    def mobile_state_space(self) -> frozenset[State]:
        return self._states
