"""The paper's protocols, model specifications and the Table 1 oracle."""

from repro.core.adapters import IdleLeaderState, WithIdleLeader
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import (
    SINK_STATE,
    CountingLeaderState,
    CountingProtocol,
)
from repro.core.global_naming import GlobalLeaderState, GlobalNamingProtocol
from repro.core.leader_uniform import (
    CounterLeaderState,
    LeaderUniformNamingProtocol,
)
from repro.core.leader_election import (
    LEADER_NAME,
    LeaderElectionProblem,
    NamingLeaderElectionProtocol,
    elected_agents,
)
from repro.core.registry import optimal_states, protocol_for
from repro.core.transformer import ProjectedNamingProblem, SymmetrizedProtocol
from repro.core.selfstab_naming import (
    SelfStabLeaderState,
    SelfStabilizingNamingProtocol,
)
from repro.core.spec import (
    CellResult,
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    all_specs,
    table1_cell,
    table1_rows,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.core.usequence import (
    first_occurrence,
    iter_u,
    occurrences,
    sequence_length,
    u_element,
    u_sequence,
)

__all__ = [
    "SINK_STATE",
    "AsymmetricNamingProtocol",
    "CellResult",
    "CounterLeaderState",
    "CountingLeaderState",
    "CountingProtocol",
    "Fairness",
    "GlobalLeaderState",
    "GlobalNamingProtocol",
    "IdleLeaderState",
    "LEADER_NAME",
    "LeaderElectionProblem",
    "LeaderKind",
    "LeaderUniformNamingProtocol",
    "NamingLeaderElectionProtocol",
    "ProjectedNamingProblem",
    "SymmetrizedProtocol",
    "elected_agents",
    "MobileInit",
    "ModelSpec",
    "SelfStabLeaderState",
    "SelfStabilizingNamingProtocol",
    "Symmetry",
    "SymmetricGlobalNamingProtocol",
    "WithIdleLeader",
    "all_specs",
    "first_occurrence",
    "iter_u",
    "occurrences",
    "optimal_states",
    "protocol_for",
    "sequence_length",
    "table1_cell",
    "table1_rows",
    "u_element",
    "u_sequence",
]
