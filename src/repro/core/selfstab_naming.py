"""Protocol 2 / Proposition 16: self-stabilizing symmetric naming under
weak fairness with a (possibly arbitrarily initialized) leader, using
``P + 1`` states per mobile agent.

This is Protocol 1 with three changes:

* mobile states gain one extra value (space ``{0, ..., P}``), so the
  universal sequence becomes ``U* = U_P`` and naming also succeeds for
  ``N = P`` (Theorem 15's observation);
* the line-2 guard relaxes from ``n < P`` to ``n <= P``;
* a *reset* (lines 11-12): when the guess has overshot (``n > P``) and an
  unnamed agent shows up, BST restarts with ``n = k = 0``.  An arbitrarily
  corrupted BST state therefore self-corrects: either naming completes
  without a reset, or the guess grows past ``P`` and exactly one reset
  replays the well-initialized behaviour.

By Theorem 11 this is space optimal: no ``P``-state symmetric protocol can
name arbitrarily initialized agents under weak fairness, even with an
initialized leader.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counting import SINK_STATE, protocol1_leader_step
from repro.core.usequence import sequence_length
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import LeaderState, State, is_leader_state
from repro.errors import ProtocolError


@dataclass(frozen=True)
class SelfStabLeaderState(LeaderState):
    """BST variables of Protocol 2: ``n`` in ``[0, P+1]``, ``k`` in
    ``[0, 2^P]`` - both may start arbitrarily (self-stabilization)."""

    n: int
    k: int


class SelfStabilizingNamingProtocol(PopulationProtocol):
    """Protocol 2: self-stabilizing naming, weak fairness, ``P + 1`` states.

    Mobile states ``{0, ..., P}``, arbitrary initialization of everything
    (mobile agents *and* BST).

    Parameters
    ----------
    bound:
        The known upper bound ``P`` on the number of mobile agents.
    """

    display_name = "self-stabilizing naming, Protocol 2 (Prop. 16)"
    symmetric = True
    requires_leader = True

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ProtocolError(f"the bound P must be positive, got {bound}")
        self.bound = bound
        self._mobile = frozenset(range(bound + 1))

    # -- state spaces ---------------------------------------------------

    def mobile_state_space(self) -> frozenset[State]:
        return self._mobile

    def leader_state_space(self) -> frozenset[State]:
        """All legal BST states (any may occur initially).  Exponential in
        ``P``; enumerate only for small bounds."""
        k_max = sequence_length(self.bound) + 1
        return frozenset(
            SelfStabLeaderState(n, k)
            for n in range(self.bound + 2)
            for k in range(k_max + 1)
        )

    def leader_space_size(self) -> int:
        """``(P + 2) * (l_P + 2)`` in closed form (no enumeration)."""
        return (self.bound + 2) * (sequence_length(self.bound) + 2)

    def initial_leader_state(self) -> SelfStabLeaderState:
        """The ``(0, 0)`` state a freshly deployed BST would use.

        Self-stabilization means correctness does *not* depend on it: the
        protocol converges from every leader state (the test suite checks
        all of them exhaustively for small bounds).
        """
        return SelfStabLeaderState(0, 0)

    # -- transition function -------------------------------------------

    def transition(self, p: State, q: State) -> tuple[State, State]:
        if is_leader_state(p) and not is_leader_state(q):
            leader, name = self._bst_rule(p, q)
            return leader, name
        if is_leader_state(q) and not is_leader_state(p):
            leader, name = self._bst_rule(q, p)
            return name, leader
        return self._mobile_rule(p, q)

    def _bst_rule(
        self, leader: SelfStabLeaderState, name: int
    ) -> tuple[SelfStabLeaderState, int]:
        n, k = leader.n, leader.k
        if n <= self.bound and (name == SINK_STATE or name > n):
            # Lines 2-9: the Protocol 1 core with U* = U_P.
            k_cap = sequence_length(self.bound) + 1
            n, k, name = protocol1_leader_step(n, k, name, self.bound, k_cap)
            return SelfStabLeaderState(n, k), name
        if n > self.bound and name == SINK_STATE:
            # Lines 11-12: naming has failed; reset and restart.
            return SelfStabLeaderState(0, 0), name
        return leader, name

    def _mobile_rule(self, p: int, q: int) -> tuple[int, int]:
        """Lines 14-16: interacting homonyms dissolve to the sink."""
        if p == q and p != SINK_STATE:
            return SINK_STATE, SINK_STATE
        return p, q
