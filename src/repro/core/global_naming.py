"""Protocol 3 / Proposition 17: symmetric naming under global fairness
with an initialized leader and only ``P`` states per mobile agent.

For ``N < P`` this is exactly Protocol 1, which already names the agents
(Theorem 15).  The ``N = P`` case - impossible to name under weak fairness
with ``P`` states (Theorem 11) - is handled by lines 11-16: once the guess
has reached ``P``, BST keeps a pointer ``name_ptr``; meeting an agent named
exactly ``name_ptr`` advances the pointer, meeting anything else renames
that agent to ``name_ptr`` and resets the pointer.  Only the *ordered
sweep* - BST meeting agents named ``0, 1, ..., P-1`` consecutively - drives
the pointer to ``P``, after which every interaction is null: all ``P``
names ``{0, ..., P-1}`` are then in use and distinct.  The ordered sweep is
reachable from every configuration, so global fairness guarantees it
eventually happens.

The sweep's cost under the randomized scheduler grows like ``P^P`` leader
meetings, the price of squeezing into ``P`` states; experiments keep
``N = P`` instances small (the paper makes no time claims).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counting import SINK_STATE, protocol1_leader_step
from repro.core.usequence import sequence_length
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import LeaderState, State, is_leader_state
from repro.errors import ProtocolError


@dataclass(frozen=True)
class GlobalLeaderState(LeaderState):
    """BST variables of Protocol 3: the Protocol 1 pair ``(n, k)`` plus the
    sweep pointer ``name_ptr`` in ``[0, P]``."""

    n: int
    k: int
    name_ptr: int


class GlobalNamingProtocol(PopulationProtocol):
    """Protocol 3: naming under global fairness, initialized leader,
    ``P`` states per (arbitrarily initialized) mobile agent.

    Parameters
    ----------
    bound:
        The known upper bound ``P`` on the number of mobile agents.
    """

    display_name = "global-fairness naming, Protocol 3 (Prop. 17)"
    symmetric = True
    requires_leader = True

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ProtocolError(f"the bound P must be positive, got {bound}")
        self.bound = bound
        self._mobile = frozenset(range(bound))

    # -- state spaces ---------------------------------------------------

    def mobile_state_space(self) -> frozenset[State]:
        return self._mobile

    def leader_state_space(self) -> frozenset[State]:
        """Reachable BST states.  Exponential in ``P``; enumerate only for
        small bounds."""
        k_max = sequence_length(self.bound - 1) + 1 if self.bound > 1 else 1
        return frozenset(
            GlobalLeaderState(n, k, ptr)
            for n in range(self.bound + 1)
            for k in range(k_max + 1)
            for ptr in range(self.bound + 1)
        )

    def leader_space_size(self) -> int:
        """``(P + 1)^2 * (k_max + 1)`` in closed form (no enumeration)."""
        k_max = sequence_length(self.bound - 1) + 1 if self.bound > 1 else 1
        return (self.bound + 1) * (k_max + 1) * (self.bound + 1)

    def initial_leader_state(self) -> State:
        return GlobalLeaderState(0, 0, 0)

    # -- transition function -------------------------------------------

    def transition(self, p: State, q: State) -> tuple[State, State]:
        if is_leader_state(p) and not is_leader_state(q):
            leader, name = self._bst_rule(p, q)
            return leader, name
        if is_leader_state(q) and not is_leader_state(p):
            leader, name = self._bst_rule(q, p)
            return name, leader
        return self._mobile_rule(p, q)

    def _bst_rule(
        self, leader: GlobalLeaderState, name: int
    ) -> tuple[GlobalLeaderState, int]:
        n, k, ptr = leader.n, leader.k, leader.name_ptr
        if n < self.bound and (name == SINK_STATE or name > n):
            # Lines 2-9: the Protocol 1 core (counting / naming for N < P).
            k_cap = sequence_length(self.bound - 1) + 1 if self.bound > 1 else 1
            n, k, name = protocol1_leader_step(
                n, k, name, self.bound - 1, k_cap
            )
            return GlobalLeaderState(n, k, ptr), name
        if n == self.bound and ptr < self.bound:
            # Lines 11-16: the ordered sweep for the N = P case.
            if name == ptr:
                return GlobalLeaderState(n, k, ptr + 1), name
            return GlobalLeaderState(n, k, 0), ptr
        return leader, name

    def _mobile_rule(self, p: int, q: int) -> tuple[int, int]:
        """Lines 18-20: interacting homonyms dissolve to the sink."""
        if p == q and p != SINK_STATE:
            return SINK_STATE, SINK_STATE
        return p, q
