"""Protocol adapters.

The paper sometimes places a protocol in a model richer than it needs -
e.g. Table 1 cites the *leaderless* Propositions 12 and 13 for cells whose
model includes a leader (the protocol simply ignores it).  The adapter
below makes that literal: it wraps a leaderless protocol with a one-state
idle leader whose interactions are all null, so the wrapped protocol runs
on a leadered population without changing any mobile behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.protocol import PopulationProtocol
from repro.engine.state import LeaderState, State, is_leader_state
from repro.errors import ProtocolError


@dataclass(frozen=True)
class IdleLeaderState(LeaderState):
    """The single state of an idle (ignored) leader."""


class WithIdleLeader(PopulationProtocol):
    """Run a leaderless protocol in a population that has a leader.

    The leader holds the unique :class:`IdleLeaderState` and every
    interaction involving it is null; mobile-mobile interactions defer to
    the wrapped protocol.  Symmetry is inherited (null leader rules are
    trivially symmetric).
    """

    def __init__(self, inner: PopulationProtocol) -> None:
        if inner.requires_leader:
            raise ProtocolError(
                f"{inner.display_name} already uses a leader; "
                "WithIdleLeader only wraps leaderless protocols"
            )
        self._inner = inner
        self.display_name = f"{inner.display_name} + idle leader"
        self.symmetric = inner.symmetric
        self.requires_leader = True

    @property
    def inner(self) -> PopulationProtocol:
        """The wrapped leaderless protocol."""
        return self._inner

    def transition(self, p: State, q: State) -> tuple[State, State]:
        if is_leader_state(p) or is_leader_state(q):
            return p, q
        return self._inner.transition(p, q)

    def mobile_state_space(self) -> frozenset[State]:
        return self._inner.mobile_state_space()

    def leader_state_space(self) -> frozenset[State]:
        return frozenset({IdleLeaderState()})

    def initial_mobile_state(self) -> State | None:
        return self._inner.initial_mobile_state()

    def initial_leader_state(self) -> State:
        return IdleLeaderState()
