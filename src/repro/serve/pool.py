"""The persistent serve pool: sharded workers that outlive calls.

``run_ensemble(n_jobs=...)`` creates a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per call and pickles
the whole protocol into every task.  :class:`ServePool` keeps one
executor alive across calls and ships protocols **by content hash**
instead: ``submit`` publishes the pickled protocol and its compiled
artifacts (transition table, counts plan, leap delta matrices) into the
pool's :class:`~repro.serve.cache.ArtifactCache` once per fingerprint,
and each worker resolves the hash against its process-local registry or
the shared disk layer, seeding the engine caches
(:func:`repro.engine.fast.seed_compiled_table`,
:func:`repro.engine.counts.seed_counts_plan`,
:func:`repro.engine.leap.seed_leap_plan`) so no worker ever recompiles
a protocol another process already compiled.

Jobs are chunked exactly as ``run_ensemble`` chunks them (one chunk per
worker for the lockstep engines, four per worker otherwise) and every
replicate's randomness is a pure function of its own seed, so pool
results are **bit-identical** to a serial ``run_ensemble`` with the same
spec (``tests/serve/test_pool.py`` enforces this).

Operational behavior:

* **Warm-up**: :meth:`ServePool.warm` spins up the workers and runs
  their initializer (imports of the NumPy engine stack) ahead of the
  first job; otherwise the first ``submit`` pays it.
* **Backpressure**: ``max_pending`` bounds the number of unfinished
  jobs.  ``submit(block=True)`` waits for a slot; ``block=False``
  raises :class:`~repro.errors.ServeSaturatedError` immediately.
* **Memoization**: repeated submissions of an identical spec (same
  :func:`~repro.serve.spec.job_key`) replay stored results without
  touching the workers.
* **Crash recovery**: a dying worker breaks the executor;
  affected jobs raise a structured
  :class:`~repro.errors.WorkerCrashError` (never hang), the broken
  executor is discarded, and the next submission starts a fresh one.
* **Zero-copy results**: lockstep jobs return their result rows
  through shared-memory blocks (:mod:`repro.engine.parallel`) instead
  of the executor's pickle pipe - workers write ``(r, S)`` row slices
  in place and ``JobHandle.result()`` materializes them without
  copying.  Each job's blocks live under a lease released after
  assembly (or swept at shutdown); platforms without POSIX shared
  memory warn once and serve over pickle, bit-identically.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
import traceback
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import wait as _wait
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.engine.ensemble import (
    EnsembleResult,
    _chunk_seeds,
    _run_batch_chunk,
    _run_chunk,
)
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulator import SimulationResult
from repro.errors import ServeError, ServeSaturatedError, WorkerCrashError
from repro.serve.cache import DEFAULT_MEMORY_ITEMS, ArtifactCache
from repro.serve.memo import ResultMemo, assemble
from repro.serve.spec import JobSpec, job_key, protocol_fingerprint

#: Artifact kinds used by the pool.
PROTOCOL_KIND = "protocol"
COMPILED_KIND = "compiled"

#: Backends served as one lockstep batch per worker chunk.
_LOCKSTEP_BACKENDS = ("batch", "bleap")

#: Smallest lockstep batch worth splitting off as its own worker chunk.
#: ``run_ensemble`` splits a single ensemble into one chunk per worker
#: because it has nothing else to parallelize over; a serving pool has
#: *other jobs*, so splitting a small job only multiplies per-batch
#: kernel setup without improving utilization.  Chunking is
#: result-invariant either way (each row's randomness is a function of
#: its own seed), so this is purely a throughput policy.
LOCKSTEP_MIN_CHUNK = 16


# ----------------------------------------------------------------------
# Worker-side state and entry points (module-level: must be picklable)
# ----------------------------------------------------------------------

#: The worker's attachment to the shared disk cache (set by the
#: initializer; ``None`` in the submitting process).
_WORKER_CACHE: ArtifactCache | None = None

#: Worker-local fingerprint -> protocol registry, so repeated chunks of
#: the same protocol skip even the disk read.
_WORKER_PROTOCOLS: dict[str, PopulationProtocol] = {}


def _warm_worker(cache_root: str | None) -> None:
    """Process-pool initializer: import the engine stack, attach the cache.

    Importing :mod:`repro.engine` pulls NumPy and registers every
    backend, so the first real chunk does not pay module-import latency;
    attaching the cache lets the worker resolve protocols by hash.
    """
    global _WORKER_CACHE
    import repro.engine  # noqa: F401  (import cost is the warm-up)

    _WORKER_CACHE = (
        ArtifactCache(cache_root) if cache_root is not None else None
    )


def _worker_ready() -> bool:
    """A no-op task used by :meth:`ServePool.warm` as a readiness probe."""
    return True


def _seed_compiled(bundle: tuple) -> None:
    """Seed the engine caches from a published ``(table, plan, leap)``."""
    from repro.engine import counts, fast, leap

    table, counts_plan, leap_plan = bundle
    if table is not None:
        fast.seed_compiled_table(table)
    if counts_plan is not None:
        counts.seed_counts_plan(counts_plan)
    if leap_plan is not None:
        leap.seed_leap_plan(leap_plan)


def _resolve_protocol(
    fingerprint: str | None, payload: PopulationProtocol | None
) -> PopulationProtocol:
    """Turn a task's protocol reference into a protocol instance.

    ``payload`` is only shipped for unfingerprintable protocols; every
    other task carries just the hash, resolved against the worker's
    local registry first and the shared disk cache second.
    """
    if payload is not None:
        return payload
    assert fingerprint is not None
    protocol = _WORKER_PROTOCOLS.get(fingerprint)
    if protocol is not None:
        return protocol
    if _WORKER_CACHE is None:
        raise ServeError(
            "worker has no artifact cache attached; cannot resolve "
            f"protocol {fingerprint[:12]}..."
        )
    loaded = _WORKER_CACHE.get(PROTOCOL_KIND, fingerprint)
    if loaded is None:
        raise ServeError(
            f"protocol {fingerprint[:12]}... not found in the artifact "
            "cache (was it published before submission?)"
        )
    protocol = loaded  # type: ignore[assignment]
    bundle = _WORKER_CACHE.get(COMPILED_KIND, fingerprint)
    if isinstance(bundle, tuple) and len(bundle) == 3:
        _seed_compiled(bundle)
    _WORKER_PROTOCOLS[fingerprint] = protocol
    return protocol


def _serve_chunk(task: tuple) -> "list[SimulationResult] | tuple":
    """Worker entry point: run one seed chunk of a job.

    The task carries the protocol by hash (or by value when it has
    none) plus the scalar run parameters; execution reuses the exact
    ensemble chunk runners, so results match ``run_ensemble``
    bit-for-bit.

    When the submitting pool allocated shared result blocks for the job
    (``counts_meta`` is not ``None``), the chunk first tries the
    zero-copy path: run natively, write the raw rows into the shared
    blocks at ``row_lo``, and return only a small marker tuple (see
    :func:`repro.engine.parallel.run_chunk_into_shm`).  If the chunk's
    lockstep preconditions fail it falls through to the pickled runner,
    so markers and pickled lists mix freely across a job's chunks.
    """
    (
        fingerprint,
        payload,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        sanitize,
        seeds,
        row_lo,
        counts_meta,
        scalars_meta,
    ) = task
    protocol = _resolve_protocol(fingerprint, payload)
    if counts_meta is not None:
        from repro.engine.parallel import run_chunk_into_shm

        marker = run_chunk_into_shm(
            protocol,
            population,
            scheduler_factory,
            initial_factory,
            problem,
            max_interactions,
            backend,
            check_interval,
            sanitize,
            None,  # fault_hook: not part of the serving surface
            seeds,
            row_lo,
            counts_meta,
            scalars_meta,
        )
        if marker is not None:
            return marker
    common = (
        protocol,
        population,
        scheduler_factory,
        initial_factory,
        problem,
        max_interactions,
        backend,
        check_interval,
        False,  # raise_on_timeout: convergence is enforced at assembly
        None,  # fault_hook: not part of the serving surface
        sanitize,
    )
    runner = (
        _run_batch_chunk if backend in _LOCKSTEP_BACKENDS else _run_chunk
    )
    return runner((common, list(seeds)))


# ----------------------------------------------------------------------
# Job handles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JobProgress:
    """A point-in-time progress snapshot of a submitted job."""

    seeds_done: int
    seeds_total: int
    chunks_done: int
    chunks_total: int

    @property
    def done(self) -> bool:
        """Whether every chunk has completed."""
        return self.chunks_done >= self.chunks_total

    @property
    def fraction(self) -> float:
        """Completed fraction of the job's seeds, in ``[0, 1]``."""
        if self.seeds_total == 0:
            return 1.0
        return self.seeds_done / self.seeds_total


class JobHandle:
    """A submitted job: progress inspection and result retrieval.

    Returned by :meth:`ServePool.submit`.  ``result()`` blocks until
    every chunk has finished (or ``timeout`` elapses) and assembles the
    per-seed results in seed order; :meth:`progress` and :meth:`stream`
    expose chunk completion as it happens.  Memo-served jobs are born
    complete.
    """

    def __init__(
        self,
        pool: "ServePool",
        spec: JobSpec,
        key: str | None,
        job_id: int,
        futures: list[Future],
        chunks: list[list[int]],
        memo_results: list[SimulationResult] | None = None,
        shm: tuple | None = None,
    ) -> None:
        self._pool = pool
        self.spec = spec
        self.key = key
        self.job_id = job_id
        self._futures = futures
        self._chunks = chunks
        self._results = memo_results
        #: Shared-memory result transport context, when the pool
        #: allocated one for this job:
        #: ``(lease, counts_block, scalars_block, offsets, table,
        #: n_mobile)``.  The lease is released exactly once - after
        #: assembly in :meth:`result`, on the crash path, or by the
        #: pool's shutdown sweep, whichever comes first.
        self._shm = shm
        #: Whether this handle was served from the result memo.
        self.from_memo = memo_results is not None
        self._open_chunks = len(futures)
        if not self.from_memo:
            for future in futures:
                future.add_done_callback(self._chunk_done)
            if not futures:
                pool._job_finished()

    # -- progress ------------------------------------------------------

    def _chunk_done(self, _future: Future) -> None:
        with self._pool._lock:
            self._open_chunks -= 1
            finished = self._open_chunks == 0
        if finished:
            self._pool._job_finished()

    def progress(self) -> JobProgress:
        """The job's current :class:`JobProgress` snapshot."""
        if self.from_memo:
            n = len(self.spec.seeds)
            return JobProgress(n, n, 1, 1)
        done_chunks = [f.done() for f in self._futures]
        seeds_done = sum(
            len(chunk)
            for chunk, chunk_is_done in zip(self._chunks, done_chunks)
            if chunk_is_done
        )
        return JobProgress(
            seeds_done=seeds_done,
            seeds_total=len(self.spec.seeds),
            chunks_done=sum(done_chunks),
            chunks_total=max(1, len(self._futures)),
        )

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        if self._results is not None:
            return True
        return all(f.done() for f in self._futures)

    def stream(self, poll: float = 0.02) -> Iterator[JobProgress]:
        """Yield a :class:`JobProgress` on every chunk completion.

        Polls at ``poll``-second granularity and always yields the final
        (complete) snapshot last, so consumers can drive progress bars
        with ``for p in handle.stream(): ...``.
        """
        last = -1
        while True:
            snapshot = self.progress()
            if snapshot.chunks_done != last:
                last = snapshot.chunks_done
                yield snapshot
            if snapshot.done:
                return
            time.sleep(poll)

    # -- results -------------------------------------------------------

    def result(self, timeout: float | None = None) -> EnsembleResult:
        """Block for completion and assemble the ensemble, seed-ordered.

        Raises :class:`TimeoutError` when ``timeout`` elapses first,
        :class:`~repro.errors.WorkerCrashError` when a worker process
        died under the job, and re-raises any structured simulation
        error a chunk raised (``SanitizerError``, ...).  On success the
        per-seed results are memoized (when the job has a key) and the
        assembled :class:`EnsembleResult` is bit-identical to a serial
        ``run_ensemble`` of the same spec.
        """
        if self._results is None:
            done, not_done = _wait(self._futures, timeout=timeout)
            if not_done:
                raise TimeoutError(
                    f"job {self.job_id} incomplete after {timeout} s: "
                    f"{len(not_done)} of {len(self._futures)} chunks "
                    "still running"
                )
            chunk_results: list = []
            for future in self._futures:
                try:
                    chunk_results.append(future.result())
                except BrokenExecutor as exc:
                    if self._shm is not None:
                        self._pool._release_lease(self._shm[0])
                    self._pool._handle_crash()
                    raise WorkerCrashError(
                        f"a worker process died while serving job "
                        f"{self.job_id}; the pool recovered but the "
                        "job's results are lost - resubmit it",
                        job_id=self.job_id,
                        seeds=self.spec.seeds,
                        reason=repr(exc),
                    ) from exc
            if self._shm is not None:
                self._results = self._materialize_shm(chunk_results)
            else:
                self._results = [
                    r for chunk in chunk_results for r in chunk
                ]
            if self.key is not None and self._pool.memo is not None:
                self._pool.memo.store(self.key, self._results)
        return assemble(self.spec, self._results)

    def _materialize_shm(self, chunk_results: list) -> list[SimulationResult]:
        """Assemble per-chunk outcomes from the job's shared blocks.

        Chunks that took the zero-copy path returned only markers; their
        rows are read straight out of the shared blocks and materialized
        through the same :func:`~repro.engine.batch.materialize_raw` the
        serial path uses - ``JobHandle.result()`` never copies the large
        arrays.  Pickled chunks (precondition fallbacks) splice in
        as-is.  The job's lease is released afterwards, win or lose.
        """
        from repro.engine.batch import N_SCALARS, LockstepRaw, materialize_raw

        lease, counts, scalars, offsets, table, n_mobile = self._shm
        if lease.released:
            raise ServeError(
                f"job {self.job_id}'s shared result blocks were already "
                "released (pool shut down before result() was called); "
                "resubmit the job"
            )
        try:
            results: list[SimulationResult] = []
            shards = len(self._chunks)
            shm_bytes = lease.nbytes
            per_row_saved = (counts.meta.shape[1] + N_SCALARS) * 8
            for outcome, off in zip(chunk_results, offsets):
                if (
                    isinstance(outcome, tuple)
                    and outcome
                    and outcome[0] == "shm"
                ):
                    _, n_rows, wall_seconds, has_leap = outcome
                    raw = LockstepRaw(
                        counts=counts.array[off : off + n_rows],
                        scalars=scalars.array[off : off + n_rows],
                        has_leap=has_leap,
                        wall_seconds=wall_seconds,
                    )
                    results.extend(
                        materialize_raw(
                            table,
                            n_mobile,
                            self.spec.population,
                            self.spec.protocol.display_name,
                            raw,
                            self.spec.max_interactions,
                            False,  # raise_on_timeout: assembly enforces
                            shards=shards,
                            shm_bytes=shm_bytes,
                            copy_bytes_saved=per_row_saved,
                        )
                    )
                    raw = None  # drop the views before the lease release
                else:
                    results.extend(outcome)
            return results
        except BaseException as exc:
            # The traceback pins views into the blocks; the release
            # below unmaps them, so drop those frame references first.
            traceback.clear_frames(exc.__traceback__)
            raise
        finally:
            self._pool._release_lease(lease)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


class ServePool:
    """A persistent, cache-backed worker pool for ensemble jobs.

    Parameters
    ----------
    max_workers:
        Worker process count (the shard width).
    cache_dir:
        Root of the shared :class:`ArtifactCache`.  ``None`` creates a
        private temporary directory, removed on :meth:`shutdown`.
    max_pending:
        Backpressure bound: the maximum number of unfinished jobs.
        ``None`` disables backpressure.
    memoize:
        Whether to serve repeated identical specs from the result memo.
    memory_items, disk_bytes:
        Forwarded to the pool's :class:`ArtifactCache`.

    Use as a context manager (``with ServePool() as pool: ...``) or
    call :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        max_workers: int = 2,
        cache_dir: str | os.PathLike | None = None,
        max_pending: int | None = None,
        memoize: bool = True,
        memory_items: int = DEFAULT_MEMORY_ITEMS,
        disk_bytes: int | None = None,
    ) -> None:
        self.max_workers = max(1, max_workers)
        self.max_pending = max_pending
        self._owns_cache_dir = cache_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="repro-serve-"))
            if cache_dir is None
            else Path(cache_dir)
        )
        self.cache = ArtifactCache(
            root, memory_items=memory_items, disk_bytes=disk_bytes
        )
        self.memo: ResultMemo | None = (
            ResultMemo(self.cache) if memoize else None
        )
        self._executor: ProcessPoolExecutor | None = None
        self._published: set[str] = set()
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._unfinished = 0
        self._next_job_id = 0
        self._closed = False
        #: Shared-memory leases of in-flight jobs; each is released by
        #: its :class:`JobHandle` after assembly, or swept by
        #: :meth:`shutdown` if the handle never read its results.
        self._leases: set = set()
        self._warned_no_shm = False
        #: Counters: submissions, memo hits, worker crashes survived.
        self.jobs_submitted = 0
        self.memo_hits = 0
        self.worker_crashes = 0

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """Create (or return) the executor; caller holds the lock."""
        if self._closed:
            raise ServeError("the serve pool has been shut down")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_warm_worker,
                initargs=(str(self.cache.root),),
            )
        return self._executor

    def warm(self) -> None:
        """Start the workers and wait for their initializers.

        Best-effort: submits one readiness probe per worker so that by
        the time ``warm`` returns, the engine stack is imported in (at
        least) the workers that will serve the first jobs.  Calling it
        is optional - an unwarmed pool simply pays the cost on the
        first ``submit``.
        """
        with self._lock:
            executor = self._ensure_executor()
        probes = [
            executor.submit(_worker_ready)
            for _ in range(self.max_workers)
        ]
        for probe in probes:
            probe.result()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers and release the pool's resources.

        Idempotent and safe to call from ``__del__`` or an ``atexit``
        hook: repeated calls (including concurrent ones) are no-ops
        beyond the first, and nothing here assumes the interpreter is
        fully alive.  Outstanding shared-memory leases of jobs whose
        results were never read are swept (``result()`` on such a job
        raises a structured :class:`~repro.errors.ServeError` - read
        results before shutting the pool down).  A pool-owned temporary
        cache directory is deleted; a caller-provided ``cache_dir`` is
        left in place (it may be shared with other pools).
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            executor, self._executor = self._executor, None
            leases, self._leases = list(self._leases), set()
        if executor is not None:
            executor.shutdown(wait=wait)
        for lease in leases:
            lease.release()
        if already_closed:
            return
        if self._owns_cache_dir:
            shutil.rmtree(self.cache.root, ignore_errors=True)

    def __enter__(self) -> "ServePool":
        """Enter: the pool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Exit: shut the pool down, waiting for the workers."""
        self.shutdown(wait=True)

    def __del__(self) -> None:
        # Last-resort cleanup for pools dropped without shutdown().
        # Interpreter teardown may run this with modules half-cleared,
        # so never let anything escape.
        try:
            self.shutdown(wait=False)
        except Exception:
            pass

    # -- submission ----------------------------------------------------

    @property
    def pending_jobs(self) -> int:
        """Number of submitted jobs not yet finished."""
        with self._lock:
            return self._unfinished

    def _job_finished(self) -> None:
        with self._slot_free:
            self._unfinished -= 1
            self._slot_free.notify_all()

    def _handle_crash(self) -> None:
        """Discard a broken executor; the next submit builds a fresh one."""
        with self._lock:
            executor, self._executor = self._executor, None
            self.worker_crashes += 1
        if executor is not None:
            executor.shutdown(wait=False)

    def _release_lease(self, lease) -> None:
        """Release a job's shared blocks and forget the lease.  Idempotent."""
        lease.release()
        with self._lock:
            self._leases.discard(lease)

    def _try_shm_transport(
        self, spec: JobSpec, chunks: list[list[int]]
    ) -> tuple:
        """Allocate shared result blocks for a lockstep job, if possible.

        Returns ``(shm_ctx, per_chunk)`` where ``shm_ctx`` is the
        :class:`JobHandle` context tuple (or ``None``) and ``per_chunk``
        is one ``(row_lo, counts_meta, scalars_meta)`` triple per chunk
        (all ``None`` metas when the job ships pickled).  Obvious
        whole-job precondition misses stay silent - the worker-side
        runner produces the ladder warning; a missing shared-memory
        platform warns once per pool.
        """
        pickled = None, [(0, None, None)] * len(chunks)
        from repro.engine.parallel import (
            SharedBlock,
            ShmLease,
            shm_available,
        )

        available, reason = shm_available()
        if not available:
            with self._lock:
                warn_once, self._warned_no_shm = (
                    not self._warned_no_shm,
                    True,
                )
            if warn_once:
                from repro.engine.fast import warn_fallback

                warn_fallback("serve-shm", "pickle-transport serving", reason)
            return pickled
        from repro.engine.batch import N_SCALARS
        from repro.engine.counts import _np, _plan_for
        from repro.engine.fast import compile_table

        table = compile_table(spec.protocol)
        if table is None or _np is None:
            return pickled
        plan = _plan_for(spec.protocol, table)
        if plan is None or not plan.closed:
            return pickled
        n_rows = sum(len(chunk) for chunk in chunks)
        counts = SharedBlock.create((n_rows, table.n_states), "int64")
        scalars = SharedBlock.create((n_rows, N_SCALARS), "int64")
        lease = ShmLease((counts, scalars))
        with self._lock:
            self._leases.add(lease)
        offsets = []
        row_lo = 0
        for chunk in chunks:
            offsets.append(row_lo)
            row_lo += len(chunk)
        per_chunk = [
            (off, counts.meta, scalars.meta) for off in offsets
        ]
        shm_ctx = (lease, counts, scalars, offsets, table, plan.n_mobile)
        return shm_ctx, per_chunk

    def _publish(self, fingerprint: str, protocol: PopulationProtocol):
        """Publish the protocol + compiled artifacts, once per hash."""
        with self._lock:
            if fingerprint in self._published:
                return
        if not self.cache.contains(PROTOCOL_KIND, fingerprint):
            self.cache.put(PROTOCOL_KIND, fingerprint, protocol)
        if not self.cache.contains(COMPILED_KIND, fingerprint):
            from repro.engine.counts import _np, _plan_for
            from repro.engine.fast import compile_table
            from repro.engine.leap import _leap_plan_for

            table = compile_table(protocol)
            counts_plan = leap_plan = None
            if table is not None and _np is not None:
                counts_plan = _plan_for(protocol, table)
                leap_plan = _leap_plan_for(protocol, counts_plan)
            if table is not None:
                self.cache.put(
                    COMPILED_KIND,
                    fingerprint,
                    (table, counts_plan, leap_plan),
                )
        with self._lock:
            self._published.add(fingerprint)

    def submit(
        self,
        spec: JobSpec,
        block: bool = True,
        timeout: float | None = None,
    ) -> JobHandle:
        """Submit one ensemble job; returns its :class:`JobHandle`.

        Memo hits return a completed handle immediately (no worker
        round-trip, no backpressure accounting).  Otherwise the job's
        seeds are chunked exactly as ``run_ensemble`` would chunk them
        and dispatched to the persistent workers, with the protocol
        shipped by content hash.

        When the pool is saturated (``max_pending`` unfinished jobs),
        ``block=True`` waits up to ``timeout`` seconds for a slot
        (forever when ``None``) and ``block=False`` raises
        :class:`~repro.errors.ServeSaturatedError` immediately; the
        blocking wait raises the same error on timeout.
        """
        key = None
        if self.memo is not None:
            key = job_key(spec)
            if key is not None:
                stored = self.memo.lookup(key)
                if stored is not None and len(stored) == len(spec.seeds):
                    with self._lock:
                        self.jobs_submitted += 1
                        self.memo_hits += 1
                        job_id = self._next_job_id
                        self._next_job_id += 1
                    return JobHandle(
                        self, spec, key, job_id, [], [], stored
                    )
        with self._slot_free:
            if self.max_pending is not None:
                if not block and self._unfinished >= self.max_pending:
                    raise ServeSaturatedError(
                        f"serve pool is saturated: {self._unfinished} "
                        f"jobs pending (max_pending={self.max_pending})",
                        pending=self._unfinished,
                        max_pending=self.max_pending,
                    )
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while self._unfinished >= self.max_pending:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise ServeSaturatedError(
                            "serve pool is saturated: timed out after "
                            f"{timeout} s waiting for a free slot "
                            f"(max_pending={self.max_pending})",
                            pending=self._unfinished,
                            max_pending=self.max_pending,
                        )
                    self._slot_free.wait(remaining)
            executor = self._ensure_executor()
            self._unfinished += 1
            self.jobs_submitted += 1
            job_id = self._next_job_id
            self._next_job_id += 1
        fingerprint = protocol_fingerprint(spec.protocol)
        payload = None
        if fingerprint is None:
            payload = spec.protocol  # ship by value: no content hash
        else:
            self._publish(fingerprint, spec.protocol)
        backend = spec.resolved_backend
        if backend in _LOCKSTEP_BACKENDS:
            n_chunks = min(
                self.max_workers,
                max(1, len(spec.seeds) // LOCKSTEP_MIN_CHUNK),
            )
        else:
            n_chunks = self.max_workers * 4
        chunks = _chunk_seeds(list(spec.seeds), max(1, n_chunks))
        shm_ctx = None
        per_chunk = [(0, None, None)] * len(chunks)
        if backend in _LOCKSTEP_BACKENDS:
            shm_ctx, per_chunk = self._try_shm_transport(spec, chunks)
        try:
            futures = [
                executor.submit(
                    _serve_chunk,
                    (
                        fingerprint,
                        payload,
                        spec.population,
                        spec.scheduler_factory,
                        spec.initial_factory,
                        spec.problem,
                        spec.max_interactions,
                        backend,
                        spec.check_interval,
                        spec.sanitize,
                        tuple(chunk),
                        row_lo,
                        counts_meta,
                        scalars_meta,
                    ),
                )
                for chunk, (row_lo, counts_meta, scalars_meta) in zip(
                    chunks, per_chunk
                )
            ]
        except BrokenExecutor as exc:
            # The executor died between jobs; release the slot, discard
            # it, and surface a structured error so the caller can
            # resubmit against the fresh pool the next submit builds.
            if shm_ctx is not None:
                self._release_lease(shm_ctx[0])
            self._job_finished()
            self._handle_crash()
            raise WorkerCrashError(
                f"the worker pool was broken when job {job_id} was "
                "submitted; it has been rebuilt - resubmit the job",
                job_id=job_id,
                seeds=spec.seeds,
                reason=repr(exc),
            ) from exc
        return JobHandle(self, spec, key, job_id, futures, chunks, shm=shm_ctx)

    # -- auxiliary services -------------------------------------------

    def lint(self, protocol: PopulationProtocol, bound: int | None = None):
        """A content-addressed cached lint report for ``protocol``.

        Delegates to :func:`repro.lint.engine.cached_lint_report` with
        the pool's artifact cache: equal protocol instances - across
        pools sharing a cache dir, across processes - reuse one stored
        report.
        """
        from repro.lint.engine import cached_lint_report

        return cached_lint_report(protocol, bound=bound, cache=self.cache)

    def stats(self) -> dict:
        """Operational counters, including the artifact-cache stats."""
        cache = self.cache.stats
        with self._lock:
            return {
                "jobs_submitted": self.jobs_submitted,
                "memo_hits": self.memo_hits,
                "worker_crashes": self.worker_crashes,
                "pending_jobs": self._unfinished,
                "artifact_memory_hits": cache.memory_hits,
                "artifact_disk_hits": cache.disk_hits,
                "artifact_misses": cache.misses,
            }
