"""The content-addressed artifact cache.

A two-layer store keyed by ``(kind, key)`` where ``key`` is a content
hash (a protocol fingerprint or a job key): an in-memory LRU for the hot
set, backed by a pickle-per-artifact directory tree that is shared
across processes (the serve pool's workers attach to the same root and
load what the submitting process published).  Layout::

    <root>/<kind>/<key[:2]>/<key>.pkl

Writes are atomic (temp file + ``os.replace``), so concurrent readers
never observe a torn artifact; corrupt or unreadable files are treated
as misses and removed.  The disk layer is size-capped by
``disk_bytes``: when an insertion pushes the tree over the cap, the
oldest artifacts (by mtime) are evicted until it fits.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

#: Default number of artifacts held in the in-memory LRU layer.
DEFAULT_MEMORY_ITEMS = 128


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ArtifactCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both layers."""
        return self.memory_hits + self.disk_hits


def _safe_component(name: str) -> str:
    """Validate a path component (kind or key) against traversal."""
    if not name or any(ch in name for ch in "/\\") or name.startswith("."):
        raise ValueError(f"invalid cache path component: {name!r}")
    return name


class ArtifactCache:
    """Disk-backed, memory-fronted content-addressed artifact store.

    Parameters
    ----------
    root:
        Directory of the disk layer (created if missing).  Multiple
        cache instances - in the same process or across worker
        processes - may share one root; the disk layer is their shared
        medium.
    memory_items:
        Capacity of the per-instance in-memory LRU (number of
        artifacts, all kinds pooled).
    disk_bytes:
        Byte cap on the disk tree, enforced after each write by
        evicting the oldest artifacts; ``None`` means unbounded.

    All methods are thread-safe.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        memory_items: int = DEFAULT_MEMORY_ITEMS,
        disk_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.memory_items = max(1, memory_items)
        self.disk_bytes = disk_bytes
        self.stats = CacheStats()
        self._mem: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._lock = threading.Lock()
        self._tmp_counter = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        shard = key[:2] if len(key) > 2 else "xx"
        return (
            self.root
            / _safe_component(kind)
            / _safe_component(shard)
            / f"{_safe_component(key)}.pkl"
        )

    # ------------------------------------------------------------------
    # Store / fetch
    # ------------------------------------------------------------------

    def get(self, kind: str, key: str) -> object | None:
        """Fetch the artifact at ``(kind, key)``, or ``None`` on a miss.

        Memory hits refresh LRU recency; disk hits are promoted into
        the memory layer.  A corrupt disk artifact counts as a miss and
        is deleted.
        """
        mem_key = (kind, key)
        with self._lock:
            if mem_key in self._mem:
                self._mem.move_to_end(mem_key)
                self.stats.memory_hits += 1
                return self._mem[mem_key]
        path = self._path(kind, key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except Exception:
            # Torn write from a crashed process, unpicklable content,
            # version skew: treat as a miss and drop the bad file.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.disk_hits += 1
            self._remember(mem_key, value)
        return value

    def put(self, kind: str, key: str, value: object) -> None:
        """Store ``value`` at ``(kind, key)`` in both layers."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._tmp_counter += 1
            tmp = path.parent / f".{os.getpid()}.{self._tmp_counter}.tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        with self._lock:
            self._remember((kind, key), value)
        self._enforce_disk_budget()

    def contains(self, kind: str, key: str) -> bool:
        """Whether ``(kind, key)`` is present in either layer."""
        with self._lock:
            if (kind, key) in self._mem:
                return True
        return self._path(kind, key).exists()

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _remember(self, mem_key: tuple[str, str], value: object) -> None:
        """Insert into the memory LRU; caller holds the lock."""
        self._mem[mem_key] = value
        self._mem.move_to_end(mem_key)
        while len(self._mem) > self.memory_items:
            self._mem.popitem(last=False)
            self.stats.memory_evictions += 1

    def _enforce_disk_budget(self) -> None:
        """Evict oldest disk artifacts until the tree fits the cap."""
        if self.disk_bytes is None:
            return
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.root.rglob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:  # racing eviction from another process
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.disk_bytes:
            return
        entries.sort()
        for _, size, path in entries:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
            with self._lock:
                self.stats.disk_evictions += 1
            total -= size
            if total <= self.disk_bytes:
                break
