"""Canonical spec hashing: the serving layer's cache keys.

Two keys matter.  :func:`protocol_fingerprint` identifies a protocol by
*content* (canonical state ordering + non-null transition entries, via
:func:`repro.engine.fast.table_fingerprint`), so equal protocol
instances - across processes, across sessions - share compiled
artifacts.  :func:`job_key` extends it to a full ensemble request:
(protocol fingerprint, population, factories, problem, seeds, budget,
resolved backend, sanitize, check interval), which keys result
memoization with bit-identical replay.

Factories and problems are hashed by :func:`callable_token`.  The token
of a module-level function is its dotted path; the token of an instance
is its class's dotted path plus its ``repr`` when the class defines one
(frozen dataclasses do).  Instances of classes with the default
``object.__repr__`` are keyed by class alone - the serving layer
therefore assumes the documented :func:`repro.engine.ensemble.run_ensemble`
factory contract: factories are *pure* functions of ``(population,
seed)``, so two instances of the same factory class are interchangeable.
Stateful factories that want distinct cache identities need only define
``__repr__`` over their distinguishing fields.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass

from repro.engine.ensemble import (
    BLEAP_MIN_POPULATION,
    FLUID_MIN_POPULATION,
    InitialFactory,
    SchedulerFactory,
)
from repro.engine.fast import DEFAULT_COMPILE_LIMIT, table_fingerprint
from repro.engine.population import Population
from repro.engine.problems import Problem
from repro.engine.protocol import PopulationProtocol


def protocol_fingerprint(
    protocol: PopulationProtocol,
    compile_limit: int = DEFAULT_COMPILE_LIMIT,
) -> str | None:
    """Content fingerprint of ``protocol``, or ``None`` if uncompilable.

    Delegates to :func:`repro.engine.fast.table_fingerprint`: the sha256
    of the canonical state ordering and non-null transition entries.
    Protocols whose state spaces cannot be enumerated (or exceed
    ``compile_limit``) have no fingerprint; the serving layer ships them
    by value and skips artifact/result caching for them.
    """
    return table_fingerprint(protocol, compile_limit)


def callable_token(obj: object) -> str:
    """A stable, process-independent identity token for a callable.

    Module-level functions and classes token to ``module:qualname``;
    bound methods append the method name to their owner's token;
    instances token to their class path plus ``repr(obj)`` when the
    class customizes ``__repr__`` (the default ``object.__repr__``
    embeds a memory address and is excluded).  ``None`` tokens to
    ``"none"``.
    """
    if obj is None:
        return "none"
    if inspect.isfunction(obj) or inspect.isbuiltin(obj):
        return f"{obj.__module__}:{obj.__qualname__}"
    if inspect.isclass(obj):
        return f"{obj.__module__}:{obj.__qualname__}"
    if inspect.ismethod(obj):
        return f"{callable_token(obj.__self__)}.{obj.__func__.__name__}"
    cls = type(obj)
    token = f"{cls.__module__}:{cls.__qualname__}"
    if cls.__repr__ is not object.__repr__:
        return f"{token}|{obj!r}"
    return token


def resolve_backend(backend: str, population: Population) -> str:
    """Resolve ``"auto"`` exactly as ``run_ensemble`` does.

    The resolved name enters the job key (memoized results must never be
    replayed across backends) and drives the pool's chunking policy.
    """
    if backend != "auto":
        return backend
    if population.size >= FLUID_MIN_POPULATION:
        return "fluid"
    if population.size >= BLEAP_MIN_POPULATION:
        return "bleap"
    return "batch"


@dataclass(frozen=True)
class JobSpec:
    """One ensemble request, as submitted to a :class:`ServePool`.

    Mirrors the :func:`repro.engine.ensemble.run_ensemble` signature for
    the serving-friendly subset: factories must be picklable and pure in
    ``(population, seed)``, and fault hooks / traces (which defeat both
    caching and the lockstep engines) are not part of the serving
    surface - use ``run_ensemble`` directly for those.

    ``require_convergence`` is enforced at assembly time, in seed order,
    so it does not enter the memoization key: a memoized ensemble
    replays bit-identically and then raises on the same first
    non-converged seed a fresh run would.
    """

    protocol: PopulationProtocol
    population: Population
    scheduler_factory: SchedulerFactory
    initial_factory: InitialFactory
    problem: Problem | None
    seeds: tuple[int, ...]
    max_interactions: int = 1_000_000
    backend: str = "auto"
    check_interval: int | None = None
    sanitize: bool = False
    require_convergence: bool = False

    def __post_init__(self) -> None:
        # Accept any iterable of seeds; store a tuple so the spec stays
        # hashable and the job key deterministic.
        object.__setattr__(self, "seeds", tuple(self.seeds))

    @property
    def resolved_backend(self) -> str:
        """The backend that will actually serve this job."""
        return resolve_backend(self.backend, self.population)


def job_key(spec: JobSpec) -> str | None:
    """The memoization key of ``spec``, or ``None`` when uncacheable.

    sha256 over the protocol's content fingerprint, the population
    shape, the factory/problem tokens, the exact seed tuple, the
    interaction budget, the *resolved* backend, the check interval and
    the sanitize flag.  ``None`` when the protocol has no fingerprint
    (uncompilable state space) - such jobs run uncached.
    """
    fingerprint = protocol_fingerprint(spec.protocol)
    if fingerprint is None:
        return None
    h = hashlib.sha256()
    parts = (
        "repro-job-v1",
        fingerprint,
        f"{spec.population.n_mobile}:{int(spec.population.has_leader)}",
        callable_token(spec.scheduler_factory),
        callable_token(spec.initial_factory),
        callable_token(spec.problem),
        ",".join(str(seed) for seed in spec.seeds),
        str(spec.max_interactions),
        spec.resolved_backend,
        str(spec.check_interval),
        str(int(spec.sanitize)),
    )
    h.update("\x00".join(parts).encode())
    return h.hexdigest()


__all__ = [
    "JobSpec",
    "callable_token",
    "job_key",
    "protocol_fingerprint",
    "resolve_backend",
]
