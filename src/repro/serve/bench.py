"""Stress benchmark ``repro serve-bench``: warm serving vs cold calls.

Simulates a serving workload: many small heterogeneous ensemble jobs
(the paper's asymmetric naming protocol at several bounds, distinct seed
sets) arriving in a burst.  Three passes over the same job list:

* **cold** - the pre-serving baseline: one
  :func:`~repro.engine.ensemble.run_ensemble` call per job, sequential,
  each paying the full per-call setup (a fresh
  :class:`~concurrent.futures.ProcessPoolExecutor`, per-task protocol
  pickling);
* **warm** - one persistent :class:`~repro.serve.pool.ServePool`:
  workers warmed once, protocols shipped by content hash, every job
  submitted up front and collected as it completes;
* **memo** - the same jobs resubmitted to the warm pool, served from
  the result memo without touching the workers.

The warm pass's assembled ensembles are compared against the cold
pass's per job - bit-identical or the bench aborts - so the speedup is
measured over verified-equal work.  ``python -m repro serve-bench``
prints the table and merges a ``"serve"`` section into
``BENCH_simulator.json``; ``--serve-floor R`` turns the run into a perf
gate failing when the cold/warm wall-clock ratio drops below ``R``
(CI gates at 3).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.experiments.report import render_table
from repro.schedulers.random_pair import RandomPairScheduler
from repro.serve.pool import ServePool
from repro.serve.spec import JobSpec

#: Default shape of the simulated serving burst.
DEFAULT_JOBS = 16
DEFAULT_WORKERS = 2
DEFAULT_SEED = 7
DEFAULT_OUT = "BENCH_simulator.json"

#: Per-job shape: small jobs, so per-call setup is the dominant cost -
#: the serving regime this layer exists for.  (At these sizes a cold
#: ``run_ensemble(n_jobs=2)`` call spends more on executor lifecycle and
#: per-task protocol pickling than on simulation.)
JOB_BOUNDS = (4, 6, 8)
JOB_POPULATION = 100
JOB_SEEDS = 6
JOB_BUDGET = 2_500


def _scheduler_factory(population: Population, seed: int):
    """Module-level (picklable) scheduler factory for bench jobs."""
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population: Population, seed: int) -> Configuration:
    """Module-level (picklable) uniform-start initial factory."""
    return Configuration.uniform(population, 0)


def build_jobs(
    n_jobs: int = DEFAULT_JOBS,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> list[JobSpec]:
    """The burst: ``n_jobs`` heterogeneous naming-ensemble jobs.

    Jobs cycle through name-range bounds :data:`JOB_BOUNDS` and carry
    *distinct* seed sets, so no two jobs share a memo key and the warm
    pass cannot shortcut through result memoization - it measures the
    pool, the artifact cache and hash shipping, nothing else.
    """
    budget = max(2_000, int(JOB_BUDGET * scale))
    jobs = []
    for j in range(n_jobs):
        bound = JOB_BOUNDS[j % len(JOB_BOUNDS)]
        seeds = tuple(
            seed + 1_000 * j + r for r in range(JOB_SEEDS)
        )
        jobs.append(
            JobSpec(
                protocol=AsymmetricNamingProtocol(bound),
                population=Population(JOB_POPULATION),
                scheduler_factory=_scheduler_factory,
                initial_factory=_initial_factory,
                problem=NamingProblem(),
                seeds=seeds,
                max_interactions=budget,
                backend="batch",
            )
        )
    return jobs


def run_cold(jobs: list[JobSpec], workers: int) -> tuple[float, list]:
    """Time the cold baseline: sequential per-call ``run_ensemble``.

    Each job pays the full per-call setup the serving layer amortizes -
    a fresh ``ProcessPoolExecutor`` (``n_jobs=workers``, the same
    parallel width the pool gets) plus per-task protocol pickling.
    Returns ``(seconds, ensembles)``.
    """
    ensembles = []
    start = time.perf_counter()
    for spec in jobs:
        ensembles.append(
            run_ensemble(
                spec.protocol,
                spec.population,
                spec.scheduler_factory,
                spec.initial_factory,
                spec.problem,
                list(spec.seeds),
                max_interactions=spec.max_interactions,
                backend=spec.backend,
                n_jobs=workers,
            )
        )
    return time.perf_counter() - start, ensembles


def run_warm(
    pool: ServePool, jobs: list[JobSpec]
) -> tuple[float, list, int]:
    """Time the warm pass: burst-submit every job to a warmed pool.

    Submission happens up front (the pool's backpressure is unbounded
    here), results are collected in order.  Returns ``(seconds,
    ensembles, memo_hits_during_pass)``.
    """
    hits_before = pool.memo_hits
    start = time.perf_counter()
    handles = [pool.submit(spec) for spec in jobs]
    ensembles = [handle.result() for handle in handles]
    return (
        time.perf_counter() - start,
        ensembles,
        pool.memo_hits - hits_before,
    )


def run_serve_bench(
    n_jobs: int = DEFAULT_JOBS,
    workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> dict:
    """Run the three passes and return the ``"serve"`` report section.

    Aborts (``RuntimeError``) if any warm or memoized ensemble differs
    from its cold counterpart - speedups are only reported over
    verified-identical results.
    """
    jobs = build_jobs(n_jobs, seed, scale)
    cold_seconds, cold_results = run_cold(jobs, workers)
    with ServePool(max_workers=workers) as pool:
        pool.warm()
        warm_seconds, warm_results, warm_hits = run_warm(pool, jobs)
        memo_seconds, memo_results, memo_hits = run_warm(pool, jobs)
        stats = pool.stats()
    for j, (cold, warm, memo) in enumerate(
        zip(cold_results, warm_results, memo_results)
    ):
        if warm.results != cold.results or warm.seeds != cold.seeds:
            raise RuntimeError(
                f"serve-bench differential check failed: warm job {j} "
                "differs from the cold run_ensemble baseline"
            )
        if memo.results != cold.results or memo.seeds != cold.seeds:
            raise RuntimeError(
                f"serve-bench differential check failed: memoized job "
                f"{j} differs from the cold run_ensemble baseline"
            )
    if warm_hits != 0:
        raise RuntimeError(
            "serve-bench warm pass hit the result memo; jobs must carry "
            "distinct seed sets"
        )
    return {
        "jobs": n_jobs,
        "workers": workers,
        "seeds_per_job": JOB_SEEDS,
        "population": JOB_POPULATION,
        "bounds": list(JOB_BOUNDS),
        "budget": jobs[0].max_interactions,
        "backend": jobs[0].resolved_backend,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "memo_seconds": round(memo_seconds, 6),
        "warm_speedup": round(cold_seconds / warm_seconds, 3),
        "memo_speedup": round(cold_seconds / memo_seconds, 3),
        "memo_hits": memo_hits,
        "pool_stats": stats,
    }


def merge_report(section: dict, path: str) -> None:
    """Merge the ``"serve"`` section into the bench JSON at ``path``.

    Other sections of an existing report (the ``repro bench`` backend /
    ensemble / leap measurements) are preserved; a missing or corrupt
    file is replaced by a report holding only this section.
    """
    payload: dict = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            payload = loaded
    except (OSError, ValueError):
        payload = {}
    payload["serve"] = section
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_section(section: dict) -> str:
    """Render the three passes as an aligned text table."""
    rows = [
        ("cold", f"{section['cold_seconds'] * 1000:.0f} ms", "1.0x",
         "per-call run_ensemble, fresh executor each job"),
        ("warm", f"{section['warm_seconds'] * 1000:.0f} ms",
         f"{section['warm_speedup']:.1f}x",
         "persistent pool, hash-shipped specs"),
        ("memo", f"{section['memo_seconds'] * 1000:.0f} ms",
         f"{section['memo_speedup']:.1f}x",
         f"result memo ({section['memo_hits']} hits)"),
    ]
    return render_table(
        ("pass", "time", "speedup", "path"),
        rows,
        title=(
            f"serving layer: {section['jobs']} jobs x "
            f"{section['seeds_per_job']} seeds, "
            f"{section['workers']} workers"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    """Run the serving-layer stress benchmark from the command line."""
    parser = argparse.ArgumentParser(
        description="Serving-layer stress benchmark: warm vs cold."
    )
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply every job's interaction budget by this factor",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny burst (3 jobs, minimal budgets) for CI smoke checks",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH")
    parser.add_argument(
        "--serve-floor",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail unless the cold/warm wall-clock ratio is at least "
            "RATIO (the CI perf gate)"
        ),
    )
    args = parser.parse_args(argv)
    n_jobs = 3 if args.smoke else args.jobs
    scale = min(args.scale, 0.1) if args.smoke else args.scale
    section = run_serve_bench(
        n_jobs=n_jobs,
        workers=args.workers,
        seed=args.seed,
        scale=scale,
    )
    print(render_section(section))
    merge_report(section, args.out)
    print(f"wrote {os.path.abspath(args.out)}")
    if args.serve_floor is not None:
        if section["warm_speedup"] < args.serve_floor:
            print(
                f"FAIL: warm speedup {section['warm_speedup']:.2f}x is "
                f"below the floor {args.serve_floor:.2f}x"
            )
            return 1
        print(
            f"OK: warm speedup {section['warm_speedup']:.2f}x meets the "
            f"floor {args.serve_floor:.2f}x"
        )
    return 0
