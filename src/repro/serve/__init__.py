"""The serving layer: amortize per-call setup across many requests.

Every direct :func:`repro.engine.ensemble.run_ensemble` call pays cold
start: a fresh :class:`~concurrent.futures.ProcessPoolExecutor`, a full
protocol pickle per task, and a per-process recompilation of the interned
transition tables and sampling plans.  This package removes all of it for
serving workloads:

* :mod:`repro.serve.cache` - :class:`ArtifactCache`, a content-addressed
  store (disk-backed, in-memory LRU on top) for compiled transition
  tables, precompiled delta matrices, lint reports and memoized results,
  shared across protocol *instances* and worker processes;
* :mod:`repro.serve.spec` - canonical spec hashing:
  :func:`protocol_fingerprint` keys compiled artifacts,
  :func:`job_key` keys memoized results on
  (spec hash, seeds, budget, backend, sanitize);
* :mod:`repro.serve.memo` - :class:`ResultMemo`, bit-identical replay of
  previously served ensembles;
* :mod:`repro.serve.pool` - :class:`ServePool`, a persistent sharded
  worker pool that outlives individual calls, ships specs by hash
  instead of pickling whole objects, warms workers once, and applies
  bounded-queue backpressure; jobs are submitted as :class:`JobSpec` and
  tracked through :class:`JobHandle` (progress streaming +
  ``result()``);
* :mod:`repro.serve.bench` - the ``repro serve-bench`` stress benchmark
  (many concurrent heterogeneous jobs, cold vs warm), recorded in
  ``BENCH_simulator.json`` and CI-gated via ``--serve-floor``.
"""

from repro.serve.cache import ArtifactCache, CacheStats
from repro.serve.memo import ResultMemo, run_memoized
from repro.serve.pool import JobHandle, JobProgress, ServePool
from repro.serve.spec import (
    JobSpec,
    callable_token,
    job_key,
    protocol_fingerprint,
    resolve_backend,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "JobHandle",
    "JobProgress",
    "JobSpec",
    "ResultMemo",
    "ServePool",
    "callable_token",
    "job_key",
    "protocol_fingerprint",
    "resolve_backend",
    "run_memoized",
]
