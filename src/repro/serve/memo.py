"""Result memoization: bit-identical replay of served ensembles.

A memoized job stores its per-seed :class:`SimulationResult` list under
its :func:`repro.serve.spec.job_key` in an :class:`ArtifactCache`
(kind ``"results"``).  Replay assembles the identical
:class:`~repro.engine.ensemble.EnsembleResult` a fresh run would return
for the same (spec, seeds, budget, backend, sanitize) - the engines'
randomness is a pure function of each seed, so equality here is exact,
not statistical (``tests/serve/test_memo.py`` enforces it per backend).

``require_convergence`` is applied at assembly time, in seed order,
after the results exist: a replayed ensemble raises on the same first
non-converged seed a fresh ``run_ensemble`` would, and storing the full
result list keeps the cache usable for later calls that don't require
convergence.
"""

from __future__ import annotations

from repro.engine.ensemble import EnsembleResult, _record, run_ensemble
from repro.engine.simulator import SimulationResult
from repro.serve.cache import ArtifactCache
from repro.serve.spec import JobSpec, job_key

#: The artifact kind under which memoized result lists are stored.
RESULTS_KIND = "results"


def assemble(
    spec: JobSpec, results: list[SimulationResult]
) -> EnsembleResult:
    """Fold per-seed results into an :class:`EnsembleResult`.

    Enforces ``spec.require_convergence`` seed-by-seed in seed order,
    exactly as ``run_ensemble`` does, so replayed and fresh ensembles
    raise identically.
    """
    ensemble = EnsembleResult()
    for seed, result in zip(spec.seeds, results):
        _record(
            ensemble,
            seed,
            result,
            spec.max_interactions,
            spec.require_convergence,
        )
    return ensemble


class ResultMemo:
    """Memoized ensemble results over an :class:`ArtifactCache`."""

    def __init__(self, cache: ArtifactCache) -> None:
        self.cache = cache

    def lookup(self, key: str) -> list[SimulationResult] | None:
        """The stored per-seed results under ``key``, or ``None``."""
        value = self.cache.get(RESULTS_KIND, key)
        if isinstance(value, list):
            return value
        return None

    def store(self, key: str, results: list[SimulationResult]) -> None:
        """Store the per-seed results of a completed job."""
        self.cache.put(RESULTS_KIND, key, list(results))


def run_memoized(
    spec: JobSpec, cache: ArtifactCache
) -> tuple[EnsembleResult, bool]:
    """Serve ``spec`` from the memo, running (serially) on a miss.

    Returns ``(ensemble, hit)``.  Jobs whose protocol has no content
    fingerprint run uncached (``hit`` is always ``False`` for them).
    The pool's submit path does the same dance around its worker
    dispatch; this entry point is the pool-free building block used by
    tests and light-weight callers.
    """
    memo = ResultMemo(cache)
    key = job_key(spec)
    if key is not None:
        stored = memo.lookup(key)
        if stored is not None and len(stored) == len(spec.seeds):
            return assemble(spec, stored), True
    ensemble = run_ensemble(
        spec.protocol,
        spec.population,
        spec.scheduler_factory,
        spec.initial_factory,
        spec.problem,
        list(spec.seeds),
        max_interactions=spec.max_interactions,
        backend=spec.backend,
        check_interval=spec.check_interval,
        sanitize=spec.sanitize,
    )
    if key is not None:
        memo.store(key, ensemble.results)
    return assemble(spec, ensemble.results), False
