"""Setup shim for offline environments lacking PEP 660 support.

All metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e . --no-use-pep517`` editable path.
"""

from setuptools import setup

setup()
