"""Benchmark: the exact model checkers (the verification substrate).

Times graph exploration, the global-fairness sink-SCC check and the
weak-fairness SCC-coverage check on the paper's protocols, at the instance
sizes the reproduction verifies exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis.model_checker import check_naming_global
from repro.analysis.reachability import (
    arbitrary_initial_configurations,
    explore,
)
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.population import Population


def test_bench_explore_protocol2_p3_n3(benchmark):
    protocol = SelfStabilizingNamingProtocol(3)
    pop = Population(3, has_leader=True)
    initial = list(arbitrary_initial_configurations(protocol, pop))

    def build():
        graph = explore(protocol, pop, initial)
        assert len(graph.nodes) >= len(initial)
        return graph

    graph = benchmark(build)
    assert graph.edge_count() > 0


def test_bench_global_check_prop13_n4_p4(benchmark):
    protocol = SymmetricGlobalNamingProtocol(4)
    pop = Population(4)
    initial = list(arbitrary_initial_configurations(protocol, pop))

    def check():
        verdict = check_naming_global(protocol, pop, initial)
        assert verdict.solves
        return verdict

    benchmark(check)


def test_bench_global_check_protocol3_full_population(benchmark):
    protocol = GlobalNamingProtocol(4)
    pop = Population(4, has_leader=True)
    initial = list(
        arbitrary_initial_configurations(
            protocol, pop, leader_states=[protocol.initial_leader_state()]
        )
    )

    def check():
        verdict = check_naming_global(protocol, pop, initial)
        assert verdict.solves
        return verdict

    benchmark.pedantic(check, rounds=3, iterations=1)


def test_bench_weak_check_protocol2_selfstab(benchmark):
    protocol = SelfStabilizingNamingProtocol(3)
    pop = Population(3, has_leader=True)
    initial = list(arbitrary_initial_configurations(protocol, pop))

    def check():
        verdict = check_naming_weak(protocol, pop, initial)
        assert verdict.solves
        return verdict

    benchmark.pedantic(check, rounds=3, iterations=1)


def test_bench_weak_check_asymmetric(benchmark):
    protocol = AsymmetricNamingProtocol(4)
    pop = Population(4)
    initial = list(arbitrary_initial_configurations(protocol, pop))

    def check():
        verdict = check_naming_weak(protocol, pop, initial)
        assert verdict.solves
        return verdict

    benchmark(check)


def test_bench_weak_check_finds_livelock(benchmark):
    """Refutation speed: Prop. 13's protocol is NOT weakly-fair correct."""
    protocol = SymmetricGlobalNamingProtocol(3)
    pop = Population(3)
    initial = list(arbitrary_initial_configurations(protocol, pop))

    def check():
        verdict = check_naming_weak(protocol, pop, initial)
        assert not verdict.solves
        return verdict

    benchmark(check)


def test_bench_quotient_prop13_n6_p6(benchmark):
    """The quotient checker at a size the labelled checker cannot touch:
    Proposition 13 at N = P = 6 (5^6 = 15625 labelled mobile vectors
    collapse into a few hundred multisets)."""
    from repro.analysis.quotient import (
        arbitrary_quotient_initials,
        check_naming_global_quotient,
    )

    protocol = SymmetricGlobalNamingProtocol(6)
    initial = arbitrary_quotient_initials(protocol, 6)

    def check():
        verdict = check_naming_global_quotient(protocol, initial)
        assert verdict.solves
        return verdict

    benchmark(check)


def test_bench_quotient_protocol3_n5_p5(benchmark):
    """Protocol 3 at N = P = 5: unreachable by simulation (the ordered
    sweep explodes super-exponentially) - decided exactly in milliseconds
    on the quotient."""
    from repro.analysis.quotient import (
        arbitrary_quotient_initials,
        check_naming_global_quotient,
    )

    protocol = GlobalNamingProtocol(5)
    initial = arbitrary_quotient_initials(
        protocol, 5, [protocol.initial_leader_state()]
    )

    def check():
        verdict = check_naming_global_quotient(protocol, initial)
        assert verdict.solves
        return verdict

    benchmark(check)


def test_bench_quotient_transformer_projection(benchmark):
    """Exact verification of the footnote-5 transformer through the
    name projection (N = 4, 2P = 8 tagged states)."""
    from repro.analysis.quotient import (
        arbitrary_quotient_initials,
        check_naming_global_quotient,
    )
    from repro.core.transformer import SymmetrizedProtocol

    protocol = SymmetrizedProtocol(AsymmetricNamingProtocol(4))
    initial = arbitrary_quotient_initials(protocol, 4)

    def check():
        verdict = check_naming_global_quotient(
            protocol, initial, name_of=SymmetrizedProtocol.project
        )
        assert verdict.solves
        return verdict

    benchmark(check)
