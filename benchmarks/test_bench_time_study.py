"""Benchmark exp-s6: the empirical time-complexity study.

Prints the power-law fits (the paper's stated future work, first
empirical step) and times the fitting pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments.time_study import (
    protocol3_blowup,
    render_fits,
    run_time_study,
)


@pytest.fixture(scope="module")
def printed_fits():
    fits = run_time_study(bound=10, runs=20, budget=10_000_000)
    print()
    print(render_fits(fits))
    by_name = {f.protocol: f for f in fits}
    selfstab = next(v for k, v in by_name.items() if "Protocol 2" in k)
    initialized = next(v for k, v in by_name.items() if "Prop. 14" in k)
    assert selfstab.exponent > initialized.exponent
    assert all(f.exponent > 0 for f in fits)
    return fits


def test_bench_time_study(benchmark, printed_fits):
    def study():
        fits = run_time_study(bound=8, runs=10, budget=5_000_000)
        assert len(fits) == 5
        return fits

    benchmark.pedantic(study, rounds=2, iterations=1)


def test_bench_protocol3_blowup(benchmark, printed_fits):
    """The N = P sweep wall, in numbers (P = 2..4 only; P = 5 would take
    hours under the randomized scheduler - which is the point)."""

    def blowup():
        points = protocol3_blowup(max_bound=4, runs=5, budget=30_000_000)
        print()
        print("Protocol 3, N = P sweep (mean interactions):")
        for bound, mean in points:
            print(f"  P = {bound}: {mean:,.0f}")
        means = [m for _, m in points]
        assert means == sorted(means)  # strictly worsening
        assert means[-1] / max(means[0], 1) > 100  # super-exponential wall
        return points

    benchmark.pedantic(blowup, rounds=1, iterations=1)
