"""Benchmark exp-s7: the space/assumptions/cost synthesis table."""

from __future__ import annotations

import pytest

from repro.experiments.tradeoffs import render_rows, run_tradeoffs


@pytest.fixture(scope="module")
def printed_tradeoffs():
    rows = run_tradeoffs(bound=8, n_mobile=6, runs=12, budget=5_000_000)
    print()
    print(render_rows(rows, bound=8))
    by_ref = {r.reference: r for r in rows}
    assert by_ref["Prop. 12"].states == 8
    assert by_ref["Prop. 16"].states == 9
    return rows


def test_bench_tradeoffs_table(benchmark, printed_tradeoffs):
    def synthesize():
        rows = run_tradeoffs(bound=6, n_mobile=5, runs=6, budget=3_000_000)
        assert len(rows) == 5
        return rows

    benchmark.pedantic(synthesize, rounds=2, iterations=1)
