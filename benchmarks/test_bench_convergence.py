"""Benchmark exp-s1: convergence cost of every positive protocol.

The paper makes no time claims (it is an exact space study); these benches
record what the space-optimal protocols cost under the standard randomized
scheduler, and pin the qualitative shape: cost grows with ``N``, the
``P + 1``-state self-stabilizing protocols pay more than the initialized
ones, and Protocol 3's ``N = P`` sweep is in a different league (hence
benched only at a tiny bound).
"""

from __future__ import annotations

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.experiments.convergence import measure, render_points

RUNS = range(10)
BUDGET = 5_000_000


def _assert_shape(points) -> None:
    """The qualitative claims the series table must exhibit."""
    by_protocol: dict[str, dict[int, float]] = {}
    for p in points:
        by_protocol.setdefault(p.protocol, {})[p.n_mobile] = p.summary.mean
    # Cost grows with N for every protocol.
    for protocol, series in by_protocol.items():
        sizes = sorted(series)
        assert series[sizes[-1]] > series[sizes[0]], protocol
    # Self-stabilizing naming (Protocol 2) pays at least as much as the
    # initialized uniform-start protocol (Prop. 14) at larger N.
    selfstab = next(v for k, v in by_protocol.items() if "Protocol 2" in k)
    initialized = next(v for k, v in by_protocol.items() if "Prop. 14" in k)
    shared = sorted(set(selfstab) & set(initialized))
    assert shared
    assert all(selfstab[n] >= initialized[n] for n in shared[2:])


@pytest.fixture(scope="module")
def printed_series():
    """Print the full convergence table once (the exp-s1 artifact) and
    check its qualitative shape."""
    from repro.experiments.convergence import run_convergence

    points = run_convergence(bound=8, runs=10, budget=BUDGET)
    print()
    print(render_points(points))
    _assert_shape(points)
    return points


def test_bench_series_artifact(benchmark, printed_series):
    """Regenerate the whole exp-s1 series table."""
    from repro.experiments.convergence import run_convergence

    points = benchmark.pedantic(
        lambda: run_convergence(bound=6, runs=5, budget=BUDGET),
        rounds=1,
        iterations=1,
    )
    assert points


@pytest.mark.parametrize("n", [4, 8])
def test_bench_asymmetric(benchmark, n):
    point = benchmark.pedantic(
        lambda: measure(
            AsymmetricNamingProtocol(8), n, 8, RUNS, BUDGET
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == len(RUNS)


@pytest.mark.parametrize("n", [4, 8])
def test_bench_symmetric_global(benchmark, n):
    point = benchmark.pedantic(
        lambda: measure(
            SymmetricGlobalNamingProtocol(8), n, 8, RUNS, BUDGET
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == len(RUNS)


@pytest.mark.parametrize("n", [4, 8])
def test_bench_leader_uniform(benchmark, n):
    point = benchmark.pedantic(
        lambda: measure(
            LeaderUniformNamingProtocol(8), n, 8, RUNS, BUDGET, uniform=True
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == len(RUNS)


@pytest.mark.parametrize("n", [4, 8])
def test_bench_selfstab(benchmark, n):
    point = benchmark.pedantic(
        lambda: measure(
            SelfStabilizingNamingProtocol(8), n, 8, RUNS, BUDGET
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == len(RUNS)


def test_bench_protocol3_small_population(benchmark):
    point = benchmark.pedantic(
        lambda: measure(GlobalNamingProtocol(8), 5, 8, RUNS, BUDGET),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == len(RUNS)


def test_bench_protocol3_full_population_tiny_bound(benchmark):
    """N = P = 3: the ordered sweep at the largest practical size for a
    randomized schedule (super-exponential growth beyond)."""
    point = benchmark.pedantic(
        lambda: measure(GlobalNamingProtocol(3), 3, 3, RUNS, BUDGET),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == len(RUNS)


