"""Benchmark exp-s2: self-stabilizing recovery after transient faults.

Times the corruption-to-reconvergence cycle for each self-stabilizing
protocol and prints the recovery table the paper's motivation implies
("the less volatile memory ... the less vulnerable to corruptions").
"""

from __future__ import annotations

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.selfstab_naming import (
    SelfStabLeaderState,
    SelfStabilizingNamingProtocol,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.population import Population
from repro.experiments.recovery import (
    measure_recovery,
    render_points,
    run_recovery,
)
from repro.faults.injection import (
    corrupt_all_mobile_to,
    corrupt_leader_to,
    corrupt_random_mobile,
)

BUDGET = 3_000_000


@pytest.fixture(scope="module")
def printed_recovery():
    points = run_recovery(bound=8, n_mobile=6, runs=10, budget=BUDGET)
    print()
    print(render_points(points))
    # Shape: a benign leader corruption is free, a full mobile collapse
    # is not.
    benign = [p for p in points if "benign" in p.corruption]
    collapse = [p for p in points if "one name" in p.corruption]
    assert benign and all(p.summary.maximum == 0 for p in benign)
    assert collapse and all(p.summary.mean > 0 for p in collapse)
    return points


def test_bench_recovery_artifact(benchmark, printed_recovery):
    points = benchmark.pedantic(
        lambda: run_recovery(bound=6, n_mobile=5, runs=5, budget=BUDGET),
        rounds=1,
        iterations=1,
    )
    assert points


def test_bench_asymmetric_full_collapse(benchmark):
    protocol = AsymmetricNamingProtocol(8)
    population = Population(6)
    point = benchmark.pedantic(
        lambda: measure_recovery(
            protocol,
            population,
            corrupt_all_mobile_to(population, 0),
            "collapse",
            range(10),
            BUDGET,
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.mean > 0


def test_bench_prop13_reset_state_collapse(benchmark):
    protocol = SymmetricGlobalNamingProtocol(8)
    population = Population(6)
    point = benchmark.pedantic(
        lambda: measure_recovery(
            protocol,
            population,
            corrupt_all_mobile_to(population, 8),
            "reset-state collapse",
            range(10),
            BUDGET,
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.mean > 0


def test_bench_protocol2_partial_scramble(benchmark):
    protocol = SelfStabilizingNamingProtocol(8)
    population = Population(6, has_leader=True)
    point = benchmark.pedantic(
        lambda: measure_recovery(
            protocol,
            population,
            corrupt_random_mobile(population, protocol, 3, seed=13),
            "scramble 3 of 6",
            range(10),
            BUDGET,
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == 10


def test_bench_protocol2_leader_amnesia(benchmark):
    protocol = SelfStabilizingNamingProtocol(8)
    population = Population(6, has_leader=True)
    point = benchmark.pedantic(
        lambda: measure_recovery(
            protocol,
            population,
            corrupt_leader_to(population, SelfStabLeaderState(0, 0)),
            "leader amnesia",
            range(10),
            BUDGET,
        ),
        rounds=1,
        iterations=1,
    )
    assert point.summary.count == 10
