"""Benchmark exp-s5: exact-verification scaling.

Prints the full scaling table once and times the flagship checks
individually (the quotient abstraction's payoff in numbers).
"""

from __future__ import annotations

import pytest

from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
)
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.experiments.scaling import render_points, run_scaling


@pytest.fixture(scope="module")
def printed_scaling():
    points = run_scaling(max_quotient_n=6)
    print()
    print(render_points(points))
    assert all(p.solves for p in points)
    return points


def test_bench_scaling_artifact(benchmark, printed_scaling):
    def rerun():
        points = run_scaling(max_quotient_n=5)
        assert all(p.solves for p in points)
        return points

    benchmark.pedantic(rerun, rounds=2, iterations=1)


@pytest.mark.parametrize("n", [4, 5, 6, 7])
def test_bench_quotient_prop13_growth(benchmark, n):
    """Quotient-check cost as N = P grows for Proposition 13."""
    protocol = SymmetricGlobalNamingProtocol(n)
    initial = arbitrary_quotient_initials(protocol, n)

    def check():
        verdict = check_naming_global_quotient(protocol, initial)
        assert verdict.solves
        return verdict

    benchmark.pedantic(check, rounds=3, iterations=1)


def test_bench_quotient_protocol3_n5(benchmark):
    protocol = GlobalNamingProtocol(5)
    initial = arbitrary_quotient_initials(
        protocol, 5, [protocol.initial_leader_state()]
    )

    def check():
        verdict = check_naming_global_quotient(protocol, initial)
        assert verdict.solves
        return verdict

    benchmark.pedantic(check, rounds=3, iterations=1)
