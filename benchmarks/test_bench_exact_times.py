"""Benchmark exp-s8: exact expected convergence times by linear algebra.

Prints the exact-vs-simulated table (including the Protocol 3 wall out to
``N = P = 6``: ~2.5e14 expected interactions, solved in milliseconds) and
times the lumped-chain solves.
"""

from __future__ import annotations

import pytest

from repro.analysis.markov import expected_convergence_time, naming_absorbing
from repro.core.global_naming import GlobalNamingProtocol
from repro.experiments.exact_times import (
    render_points,
    run_exact_times,
    validate,
)


@pytest.fixture(scope="module")
def printed_exact_times():
    points = run_exact_times(validation_runs=120, max_protocol3_bound=6)
    print()
    print(render_points(points))
    assert validate(points, tolerance=0.15)
    return points


def test_bench_exact_times_battery(benchmark, printed_exact_times):
    def battery():
        points = run_exact_times(
            validation_runs=100, max_protocol3_bound=5
        )
        # Small-mean rows have high relative variance; the module fixture
        # already validated at 15% with 120 runs.
        assert validate(points, tolerance=0.35)
        return points

    benchmark.pedantic(battery, rounds=2, iterations=1)


@pytest.mark.parametrize("bound", [4, 5, 6])
def test_bench_protocol3_exact_solve(benchmark, bound):
    """The linear solve quantifying the N = P wall, per bound."""
    protocol = GlobalNamingProtocol(bound)
    start = ((0,) * bound, protocol.initial_leader_state())

    def solve():
        times = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol),
            max_nodes=200_000,
        )
        assert times[start] > 0
        return times[start]

    benchmark.pedantic(solve, rounds=3, iterations=1)
