"""Benchmark: regenerating the paper's Table 1 (the paper's only table).

``pytest benchmarks/ --benchmark-only`` runs every cell group and prints
the regenerated verdicts; the assertions guarantee the benchmark is also a
correctness check - a timing for a wrong table would be worthless.

The paper reports no figures and no timings, so the interesting output is
the table itself (printed once per session by the report fixture) plus the
cost of producing each kind of evidence.
"""

from __future__ import annotations

import pytest

from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    all_specs,
    table1_cell,
)
from repro.experiments.table1 import (
    _feasible_cell,
    _infeasible_cell,
    render_rows,
    run_table1,
)

BOUND = 5


@pytest.fixture(scope="module")
def printed_table():
    rows = run_table1(bound=BOUND, seed=1, budget=300_000, samples=2)
    print()
    print(render_rows(rows, BOUND))
    assert all(row.match for row in rows)
    return rows


def test_bench_full_table1_regeneration(benchmark, printed_table):
    """One full 24-cell regeneration (simulations + exact checks)."""

    def regenerate():
        rows = run_table1(bound=BOUND, seed=1, budget=300_000, samples=2)
        assert all(row.match for row in rows)
        return rows

    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    assert len(rows) == 24


@pytest.mark.parametrize(
    "symmetry,fairness,leader",
    [
        (Symmetry.ASYMMETRIC, Fairness.WEAK, LeaderKind.NONE),
        (Symmetry.ASYMMETRIC, Fairness.GLOBAL, LeaderKind.INITIALIZED),
        (Symmetry.SYMMETRIC, Fairness.GLOBAL, LeaderKind.NONE),
        (Symmetry.SYMMETRIC, Fairness.GLOBAL, LeaderKind.INITIALIZED),
        (Symmetry.SYMMETRIC, Fairness.WEAK, LeaderKind.NON_INITIALIZED),
        (Symmetry.SYMMETRIC, Fairness.WEAK, LeaderKind.INITIALIZED),
    ],
    ids=lambda v: getattr(v, "value", v),
)
def test_bench_feasible_cell(benchmark, symmetry, fairness, leader):
    """Evidence generation for one feasible Table 1 cell."""
    spec = ModelSpec(fairness, symmetry, leader, MobileInit.ARBITRARY)
    assert table1_cell(spec).feasible

    def run_cell():
        row = _feasible_cell(spec, BOUND, seed=3, budget=300_000, samples=2)
        assert row.match, row.evidence
        return row

    benchmark.pedantic(run_cell, rounds=3, iterations=1)


def test_bench_infeasible_cell(benchmark):
    """Evidence for the impossible cell: Prop. 1 adversary + exhaustion."""
    spec = ModelSpec(
        Fairness.WEAK,
        Symmetry.SYMMETRIC,
        LeaderKind.NONE,
        MobileInit.ARBITRARY,
    )

    def run_cell():
        row = _infeasible_cell(
            spec, BOUND, seed=3, budget=120_000, thorough=True
        )
        assert row.match, row.evidence
        return row

    benchmark.pedantic(run_cell, rounds=3, iterations=1)


def test_bench_state_count_audit(benchmark):
    """The exact space-complexity audit across all 22 feasible cells."""
    from repro.core.registry import optimal_states, protocol_for

    feasible = [s for s in all_specs() if table1_cell(s).feasible]

    def audit():
        for spec in feasible:
            protocol = protocol_for(spec, BOUND)
            assert protocol.num_mobile_states == optimal_states(spec, BOUND)
        return len(feasible)

    count = benchmark(audit)
    assert count == 22
