"""Benchmark exp-s4: scheduler ablation.

Times the ablation matrix (which scheduler classes each protocol survives)
and the raw throughput of each scheduler implementation - the engine-level
cost of an interaction proposal.
"""

from __future__ import annotations

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.experiments.ablation import render_points, run_ablation
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.matching import MatchingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler


@pytest.fixture(scope="module")
def printed_ablation():
    points = run_ablation(bound=6, seed=7, budget=300_000)
    print()
    print(render_points(points))
    assert all(p.matches for p in points)
    return points


def test_bench_ablation_matrix(benchmark, printed_ablation):
    def matrix():
        points = run_ablation(bound=4, seed=7, budget=100_000)
        assert all(p.matches for p in points)
        return points

    benchmark.pedantic(matrix, rounds=2, iterations=1)


@pytest.mark.parametrize(
    "scheduler_factory",
    [
        lambda pop: RandomPairScheduler(pop, seed=1),
        lambda pop: RoundRobinScheduler(pop, seed=1),
        lambda pop: MatchingScheduler(pop, seed=1),
    ],
    ids=["random", "round-robin", "matching"],
)
def test_bench_scheduler_throughput(benchmark, scheduler_factory):
    """Proposals per second for each stateless-ish scheduler."""
    pop = Population(16)
    scheduler = scheduler_factory(pop)
    config = Configuration.uniform(pop, 0)

    def burst():
        for _ in range(1000):
            scheduler.next_pair(config)

    benchmark(burst)


def test_bench_adversary_throughput(benchmark):
    """The homonym-preserving adversary pays per-proposal search costs."""
    protocol = AsymmetricNamingProtocol(8)
    pop = Population(8)
    scheduler = HomonymPreservingScheduler(pop, protocol, seed=1)
    config = Configuration.uniform(pop, 0)

    def burst():
        for _ in range(100):
            scheduler.next_pair(config)

    benchmark(burst)


def test_bench_simulation_throughput(benchmark):
    """Raw interactions per second of the full simulation loop."""
    protocol = SelfStabilizingNamingProtocol(8)
    pop = Population(8, has_leader=True)
    initial = Configuration.uniform(pop, 1, protocol.initial_leader_state())

    def run():
        scheduler = RandomPairScheduler(pop, seed=3)
        simulator = Simulator(protocol, pop, scheduler, problem=None)
        result = simulator.run(initial, max_interactions=20_000)
        return result.interactions

    interactions = benchmark(run)
    assert interactions == 20_000
