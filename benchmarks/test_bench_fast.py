"""Benchmarks for the fast simulation backend.

Head-to-head interactions/second of the reference simulator versus
:class:`repro.engine.fast.FastSimulator` on the same seeds, plus the cost
of compiling a transition table and of batched pair sampling.  Compare
groups with ``pytest benchmarks/test_bench_fast.py --benchmark-group-by
=func``.
"""

from __future__ import annotations

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.fast import BACKENDS, TransitionTable, make_simulator
from repro.engine.population import Population
from repro.experiments.bench import ChurnProtocol
from repro.schedulers.random_pair import RandomPairScheduler


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("n", [10, 100])
def test_bench_backend_throughput(benchmark, backend, n):
    """Full-loop interactions/second for each backend (no problem)."""
    protocol = AsymmetricNamingProtocol(8)
    pop = Population(n)
    initial = Configuration.uniform(pop, 0)

    def run():
        scheduler = RandomPairScheduler(pop, seed=3)
        simulator = make_simulator(backend, protocol, pop, scheduler, None)
        return simulator.run(initial, max_interactions=20_000).interactions

    assert benchmark(run) == 20_000


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_bench_backend_churn(benchmark, backend):
    """Worst case for the reference loop: every interaction is non-null."""
    protocol = ChurnProtocol()
    pop = Population(100)
    initial = Configuration.uniform(pop, 0)

    def run():
        scheduler = RandomPairScheduler(pop, seed=5)
        simulator = make_simulator(backend, protocol, pop, scheduler, None)
        return simulator.run(initial, max_interactions=20_000).interactions

    assert benchmark(run) == 20_000


def test_bench_table_compile(benchmark):
    """One-off cost of compiling a protocol's transition table."""
    protocol = AsymmetricNamingProtocol(16)
    mobile = frozenset(protocol.mobile_state_space())
    leader = frozenset(protocol.leader_state_space())

    table = benchmark(lambda: TransitionTable(protocol, mobile, leader))
    assert table.n_states == len(mobile | leader)


@pytest.mark.parametrize("n", [10, 100])
def test_bench_batched_sampling(benchmark, n):
    """Batched pair sampling versus the population size."""
    pop = Population(n)
    scheduler = RandomPairScheduler(pop, seed=7)

    pairs = benchmark(lambda: scheduler.next_pairs(None, 1000))
    assert len(pairs) == 1000
