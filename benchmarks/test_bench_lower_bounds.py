"""Benchmark exp-s3: exhaustive lower-bound verification.

Times the machine verification of the paper's impossibility results by
protocol enumeration: Proposition 2 at P = 2 and P = 3, Proposition 1 (the
weak-fairness variant), Proposition 4 and Theorem 11 with bounded leader
spaces, plus the asymmetric positive contrast (Proposition 12's rule is
rediscovered by the search).
"""

from __future__ import annotations

import pytest

from repro.analysis.enumeration import (
    asymmetric_leaderless_protocols,
    search,
    symmetric_leaderless_protocols,
    symmetric_leadered_protocols,
)
from repro.core.spec import Fairness, MobileInit
from repro.experiments.lower_bounds import default_checks, render_checks


@pytest.fixture(scope="module")
def printed_battery():
    checks = default_checks(include_p3=False)
    print()
    print(render_checks(checks))
    assert all(c.matches for c in checks)
    return checks


def test_bench_quick_battery(benchmark, printed_battery):
    """The full quick battery (everything except the P=3 sweep)."""

    def battery():
        checks = default_checks(include_p3=False)
        assert all(c.matches for c in checks)
        return checks

    benchmark.pedantic(battery, rounds=1, iterations=1)


def test_bench_prop2_p2_global(benchmark):
    def sweep():
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.GLOBAL,
        )
        assert outcome.total == 16 and not outcome.any_solves
        return outcome

    benchmark(sweep)


def test_bench_prop1_p2_weak(benchmark):
    def sweep():
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.WEAK,
            mobile_init=MobileInit.UNIFORM,
        )
        assert not outcome.any_solves
        return outcome

    benchmark(sweep)


def test_bench_asymmetric_contrast_p2(benchmark):
    def sweep():
        outcome = search(
            asymmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.WEAK,
        )
        assert outcome.total == 256 and outcome.any_solves
        return outcome

    benchmark.pedantic(sweep, rounds=3, iterations=1)


def test_bench_theorem11_p2_l2(benchmark):
    def sweep():
        outcome = search(
            symmetric_leadered_protocols(2, 2),
            sizes=[2],
            fairness=Fairness.WEAK,
        )
        assert outcome.total == 4096 and not outcome.any_solves
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)


def test_bench_prop4_p2_l2_global(benchmark):
    def sweep():
        outcome = search(
            symmetric_leadered_protocols(2, 2),
            sizes=[2],
            fairness=Fairness.GLOBAL,
            arbitrary_leader=True,
        )
        assert not outcome.any_solves
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)


def test_bench_prop2_p3_global_full_sweep(benchmark):
    """The flagship sweep: all 19683 three-state symmetric leaderless
    protocols refuted at N in {3, 2} - Proposition 2 at P = 3, verified
    by exhaustion."""

    def sweep():
        outcome = search(
            symmetric_leaderless_protocols(3),
            sizes=[3, 2],
            fairness=Fairness.GLOBAL,
        )
        assert outcome.total == 19683 and not outcome.any_solves
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
