"""Property-based tests for the Proposition 12 potential argument."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.potential import holes, potential, potential_upper_bound
from repro.core.asymmetric import AsymmetricNamingProtocol


def configurations(max_bound=8, max_agents=8):
    return st.integers(min_value=2, max_value=max_bound).flatmap(
        lambda bound: st.tuples(
            st.just(bound),
            st.lists(
                st.integers(min_value=0, max_value=bound - 1),
                min_size=1,
                max_size=min(bound, max_agents),
            ),
        )
    )


class TestPotentialInvariants:
    @given(configurations())
    def test_potential_bounded(self, case):
        bound, states = case
        assert (0, 0) <= potential(states, bound)
        assert potential(states, bound) <= potential_upper_bound(bound)

    @given(configurations())
    def test_zero_potential_iff_no_holes(self, case):
        bound, states = case
        value = potential(states, bound)
        assert (value == (0, 0)) == (not holes(states, bound))

    @given(configurations())
    def test_distinct_full_occupancy_has_zero_potential(self, case):
        bound, states = case
        if len(set(states)) == bound:
            assert potential(states, bound) == (0, 0)


class TestStrictDecrease:
    """The proof's core: every non-null transition of the asymmetric rule
    strictly decreases the potential, on arbitrary configurations."""

    @settings(max_examples=300)
    @given(configurations(), st.randoms(use_true_random=False))
    def test_random_transition_decreases(self, case, rnd):
        bound, states = case
        protocol = AsymmetricNamingProtocol(bound)
        duplicates = [
            s for s in set(states) if states.count(s) >= 2
        ]
        if not duplicates:
            return  # silent configuration: nothing to check
        s = rnd.choice(duplicates)
        before = potential(states, bound)
        mutated = list(states)
        mutated[mutated.index(s)] = protocol.transition(s, s)[1]
        after = potential(mutated, bound)
        assert after < before

    @settings(max_examples=100)
    @given(configurations())
    def test_execution_terminates_within_potential_budget(self, case):
        """Driving homonym transitions to exhaustion takes at most
        (holes + distance) steps and ends with distinct states whenever
        the population fits the bound."""
        bound, states = case
        protocol = AsymmetricNamingProtocol(bound)
        states = list(states)
        budget = bound + bound * (bound - 1) + 1
        for _ in range(budget):
            duplicates = [s for s in set(states) if states.count(s) >= 2]
            if not duplicates:
                break
            s = duplicates[0]
            states[states.index(s)] = protocol.transition(s, s)[1]
        assert len(set(states)) == len(states)
