"""Property-based fairness validation of the deterministic schedulers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness_audit import audit_scheduler
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.schedulers.matching import MatchingScheduler, round_robin_matchings
from repro.schedulers.round_robin import (
    InterleavedRoundRobinScheduler,
    RoundRobinScheduler,
)


class TestRoundRobinFairness:
    @settings(max_examples=25)
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=4),
    )
    def test_perfect_balance_over_whole_cycles(self, n, cycles):
        population = Population(n)
        scheduler = RoundRobinScheduler(population)
        config = Configuration.uniform(population, 0)
        audit = audit_scheduler(
            scheduler, config, cycles * scheduler.cycle_length
        )
        assert audit.imbalance() == 1.0

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=10))
    def test_worst_gap_bounded_by_cycle(self, n):
        population = Population(n)
        scheduler = RoundRobinScheduler(population)
        config = Configuration.uniform(population, 0)
        audit = audit_scheduler(
            scheduler, config, 3 * scheduler.cycle_length
        )
        assert audit.worst_gap() <= scheduler.cycle_length


class TestInterleavedFairness:
    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=10))
    def test_every_pair_met_each_half_cycle(self, n):
        population = Population(n)
        scheduler = InterleavedRoundRobinScheduler(population)
        config = Configuration.uniform(population, 0)
        audit = audit_scheduler(
            scheduler, config, 2 * population.pair_count()
        )
        assert not audit.starving_pairs()
        assert audit.imbalance() == 1.0


class TestMatchingFairness:
    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=12))
    def test_rotation_covers_each_pair_once(self, n):
        rounds = round_robin_matchings(n)
        seen = [frozenset(p) for matching in rounds for p in matching]
        assert len(seen) == len(set(seen)) == n * (n - 1) // 2

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=9))
    def test_scheduler_balanced_over_rotations(self, n):
        population = Population(n)
        scheduler = MatchingScheduler(population)
        config = Configuration.uniform(population, 0)
        audit = audit_scheduler(
            scheduler, config, 2 * population.pair_count()
        )
        assert audit.imbalance() == 1.0
