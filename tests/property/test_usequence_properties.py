"""Property-based tests for the universal sequence U*."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.usequence import (
    first_occurrence,
    occurrences,
    sequence_length,
    u_element,
    u_sequence,
)


class TestClosedFormProperties:
    @given(st.integers(min_value=1, max_value=10))
    def test_ruler_equals_recursion(self, n):
        seq = u_sequence(n)
        assert [u_element(k) for k in range(1, len(seq) + 1)] == seq

    @given(st.integers(min_value=1, max_value=2**20))
    def test_element_always_positive(self, k):
        assert u_element(k) >= 1

    @given(st.integers(min_value=1, max_value=2**20))
    def test_element_bounded_by_log(self, k):
        assert u_element(k) <= k.bit_length()

    @given(st.integers(min_value=1, max_value=2**16))
    def test_odd_positions_hold_one(self, k):
        if k % 2 == 1:
            assert u_element(k) == 1

    @given(st.integers(min_value=1, max_value=2**10))
    def test_self_similarity(self, k):
        """U is self-similar: position 2k holds u(k) + 1."""
        assert u_element(2 * k) == u_element(k) + 1


class TestStructuralProperties:
    @given(st.integers(min_value=1, max_value=12))
    def test_length_formula(self, n):
        assert sequence_length(n) == 2**n - 1

    @given(st.integers(min_value=1, max_value=10))
    def test_total_occurrences_fill_sequence(self, n):
        assert (
            sum(occurrences(v, n) for v in range(1, n + 1))
            == sequence_length(n)
        )

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    def test_occurrence_halving(self, value, n):
        """Each value is exactly twice as frequent as the next one up."""
        if value + 1 <= n:
            assert occurrences(value, n) == 2 * occurrences(value + 1, n)

    @given(st.integers(min_value=1, max_value=30))
    def test_first_occurrence_is_earliest(self, value):
        k = first_occurrence(value)
        assert u_element(k) == value
        # No earlier position holds it (powers of two structure).
        if value >= 2:
            assert all(
                u_element(j) != value for j in range(1, min(k, 1024))
            )


class TestNamingSufficiency:
    """The property Protocol 1 relies on: along any window of U_n there
    are enough fresh names for n agents."""

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=8))
    def test_every_value_up_to_n_occurs(self, n):
        seq = u_sequence(n)
        assert set(seq) == set(range(1, n + 1))

    @settings(max_examples=30)
    @given(st.integers(min_value=2, max_value=8))
    def test_prefix_contains_whole_previous_level(self, n):
        seq = u_sequence(n)
        prefix = seq[: sequence_length(n - 1)]
        assert set(prefix) == set(range(1, n))
