"""Property-based tests for configurations and populations."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.configuration import Configuration
from repro.engine.population import Population

state_lists = st.lists(
    st.integers(min_value=0, max_value=9), min_size=1, max_size=10
)


class TestConfigurationProperties:
    @given(state_lists)
    def test_multiset_preserved_under_permutation(self, states):
        import random

        shuffled = list(states)
        random.Random(0).shuffle(shuffled)
        a = Configuration(tuple(states))
        b = Configuration(tuple(shuffled))
        assert a.is_equivalent(b)
        assert a.canonical() == b.canonical()

    @given(state_lists)
    def test_names_distinct_iff_no_homonyms(self, states):
        config = Configuration(tuple(states))
        assert config.names_distinct() == (not config.homonym_states())

    @given(state_lists)
    def test_homonym_agents_consistent_with_states(self, states):
        config = Configuration(tuple(states))
        counts = Counter(states)
        expected = [i for i, s in enumerate(states) if counts[s] >= 2]
        assert config.homonym_agents() == expected

    @given(state_lists, st.data())
    def test_replace_roundtrip(self, states, data):
        config = Configuration(tuple(states))
        index = data.draw(
            st.integers(min_value=0, max_value=len(states) - 1)
        )
        new_state = data.draw(st.integers(min_value=0, max_value=9))
        updated = config.replace({index: new_state})
        assert updated.state_of(index) == new_state
        restored = updated.replace({index: states[index]})
        assert restored == config

    @given(state_lists, st.data())
    def test_apply_changes_exactly_two_agents(self, states, data):
        if len(states) < 2:
            return
        config = Configuration(tuple(states))
        i = data.draw(st.integers(min_value=0, max_value=len(states) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(states) - 1))
        if i == j:
            return
        after = config.apply(i, j, (99, 98))
        for k, state in enumerate(after.states):
            if k == i:
                assert state == 99
            elif k == j:
                assert state == 98
            else:
                assert state == states[k]


class TestPopulationProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.booleans(),
    )
    def test_pair_count_matches_formula(self, n, leader):
        pop = Population(n, has_leader=leader)
        size = pop.size
        if size >= 2:
            assert pop.pair_count() == size * (size - 1) // 2
            assert len(list(pop.ordered_pairs())) == size * (size - 1)

    @given(st.integers(min_value=1, max_value=20), st.booleans())
    def test_agents_are_contiguous(self, n, leader):
        pop = Population(n, has_leader=leader)
        assert pop.agents == tuple(range(pop.size))
