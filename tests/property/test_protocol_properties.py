"""Property-based tests on protocol invariants: closure, symmetry, name
uniqueness at convergence, monotone counting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.engine.state import is_leader_state
from repro.schedulers.random_pair import RandomPairScheduler

SYMMETRIC_FACTORIES = [
    SymmetricGlobalNamingProtocol,
    CountingProtocol,
    SelfStabilizingNamingProtocol,
    GlobalNamingProtocol,
]


class TestTransitionClosure:
    @settings(max_examples=60)
    @given(
        st.sampled_from(SYMMETRIC_FACTORIES),
        st.integers(min_value=2, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_random_pairs_stay_in_space(self, factory, bound, rnd):
        protocol = factory(bound)
        mobile = sorted(protocol.mobile_state_space())
        leaders = sorted(protocol.leader_state_space(), key=repr)
        p = rnd.choice(mobile + leaders)
        q = rnd.choice(mobile)
        if is_leader_state(p) and rnd.random() < 0.5:
            p, q = q, p
        p2, q2 = protocol.transition(p, q)
        space = protocol.all_states()
        assert p2 in space and q2 in space
        assert is_leader_state(p2) == is_leader_state(p)
        assert is_leader_state(q2) == is_leader_state(q)

    @settings(max_examples=60)
    @given(
        st.sampled_from(SYMMETRIC_FACTORIES),
        st.integers(min_value=2, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_symmetry_on_random_pairs(self, factory, bound, rnd):
        protocol = factory(bound)
        mobile = sorted(protocol.mobile_state_space())
        leaders = sorted(protocol.leader_state_space(), key=repr)
        p = rnd.choice(mobile + leaders)
        q = rnd.choice(mobile)
        p2, q2 = protocol.transition(p, q)
        q3, p3 = protocol.transition(q, p)
        assert (p2, q2) == (p3, q3)


class TestConvergenceProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2**31),
        st.data(),
    )
    def test_asymmetric_names_any_start(self, n, seed, data):
        bound = data.draw(st.integers(min_value=n, max_value=n + 3))
        states = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=bound - 1),
                min_size=n,
                max_size=n,
            )
        )
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(n)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=seed), NamingProblem()
        )
        result = simulator.run(
            Configuration.from_states(pop, states),
            max_interactions=1_000_000,
        )
        assert result.converged
        names = result.names()
        assert len(set(names)) == n
        assert set(names) <= set(range(bound))

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**31),
        st.data(),
    )
    def test_selfstab_names_any_start_any_leader(self, n, seed, data):
        bound = data.draw(st.integers(min_value=n, max_value=n + 2))
        protocol = SelfStabilizingNamingProtocol(bound)
        states = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=bound),
                min_size=n,
                max_size=n,
            )
        )
        from repro.core.selfstab_naming import SelfStabLeaderState

        leader = SelfStabLeaderState(
            data.draw(st.integers(min_value=0, max_value=bound + 1)),
            data.draw(st.integers(min_value=0, max_value=2**bound)),
        )
        pop = Population(n, has_leader=True)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=seed), NamingProblem()
        )
        result = simulator.run(
            Configuration.from_states(pop, states, leader),
            max_interactions=2_000_000,
        )
        assert result.converged
        assert len(set(result.names())) == n


class TestCountingMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_guess_never_decreases_and_never_overshoots(self, n, seed):
        bound = 5
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        scheduler = RandomPairScheduler(pop, seed=seed)
        config = Configuration.uniform(
            pop, 1, protocol.initial_leader_state()
        )
        previous = 0
        for _ in range(3000):
            x, y = scheduler.next_pair(config)
            p, q = config.state_of(x), config.state_of(y)
            config = config.apply(x, y, protocol.transition(p, q))
            guess = config.leader_state.n
            assert guess >= previous
            assert guess <= n  # never overshoots the true size
            previous = guess
