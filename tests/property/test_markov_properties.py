"""Property-based validation of the lumped-chain expected times.

Two independent consistency checks on random protocols:

* the returned expectations satisfy the one-step Bellman equations
  ``t(s) = 1 + sum_s' P(s -> s') t(s')`` (recomputed from scratch);
* absorbed classes report zero.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.markov import (
    _transition_distribution,
    expected_convergence_time,
    naming_absorbing,
)
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError


@st.composite
def convergent_protocols(draw):
    """Random 2-state leaderless protocols; not all converge - the test
    filters on solvability via the exception contract."""
    states = [0, 1]
    table = {}
    for p in states:
        for q in states:
            out = (
                draw(st.sampled_from(states)),
                draw(st.sampled_from(states)),
            )
            if out != (p, q):
                table[(p, q)] = out
    return TableProtocol(table, states, display_name="fuzz")


class TestBellmanConsistency:
    @settings(max_examples=120, deadline=None)
    @given(convergent_protocols(), st.integers(min_value=2, max_value=4))
    def test_one_step_equations_hold(self, protocol, n):
        from itertools import combinations_with_replacement

        starts = [
            (tuple(sorted(m)), None)
            for m in combinations_with_replacement([0, 1], n)
        ]
        absorbing = naming_absorbing(protocol)
        try:
            times = expected_convergence_time(protocol, starts, absorbing)
        except VerificationError:
            return  # the protocol does not converge from every class
        for node, expectation in times.items():
            if absorbing(node):
                assert expectation == 0.0
                continue
            distribution = _transition_distribution(
                protocol, node, has_leader=False
            )
            total_probability = sum(distribution.values())
            assert abs(total_probability - 1.0) < 1e-9
            bellman = 1.0 + sum(
                weight * times[target]
                for target, weight in distribution.items()
            )
            assert abs(bellman - expectation) < 1e-6 * max(1.0, expectation)

    @settings(max_examples=60, deadline=None)
    @given(convergent_protocols())
    def test_expectations_nonnegative(self, protocol):
        starts = [((0, 0), None), ((0, 1), None), ((1, 1), None)]
        try:
            times = expected_convergence_time(
                protocol, starts, naming_absorbing(protocol)
            )
        except VerificationError:
            return
        assert all(value >= 0 for value in times.values())
