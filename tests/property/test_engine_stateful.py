"""Stateful property testing of the engine.

A hypothesis rule-based machine drives a population of Protocol 2 agents
through random interactions, corruptions and checks, asserting the
engine-level invariants that every other test implicitly relies on:

* states never leave the declared spaces (closure under interactions AND
  under legal corruptions);
* the population's size and leader designation never change;
* a configuration certified solved stays solved under further
  interactions (the certificate really is a certificate);
* homonym dissolution only ever moves agents to the sink.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.selfstab_naming import (
    SelfStabLeaderState,
    SelfStabilizingNamingProtocol,
)
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem

BOUND = 4
N_MOBILE = 4


class EngineMachine(RuleBasedStateMachine):
    """Random interactions and corruptions against engine invariants."""

    def __init__(self):
        super().__init__()
        self.protocol = SelfStabilizingNamingProtocol(BOUND)
        self.population = Population(N_MOBILE, has_leader=True)
        self.problem = NamingProblem()
        self.config = None
        self.solved_snapshots = []

    @initialize(
        states=st.lists(
            st.integers(min_value=0, max_value=BOUND),
            min_size=N_MOBILE,
            max_size=N_MOBILE,
        ),
        leader_n=st.integers(min_value=0, max_value=BOUND + 1),
        leader_k=st.integers(min_value=0, max_value=2**BOUND),
    )
    def start(self, states, leader_n, leader_k):
        """Arbitrary initialization - the self-stabilizing reading."""
        self.config = Configuration.from_states(
            self.population,
            states,
            SelfStabLeaderState(leader_n, leader_k),
        )

    @rule(
        x=st.integers(min_value=0, max_value=N_MOBILE),
        y=st.integers(min_value=0, max_value=N_MOBILE),
    )
    def interact(self, x, y):
        """One scheduled meeting (self-meetings are skipped)."""
        if x == y:
            return
        p = self.config.state_of(x)
        q = self.config.state_of(y)
        p2, q2 = self.protocol.transition(p, q)
        if (p2, q2) != (p, q):
            self.config = self.config.apply(x, y, (p2, q2))

    @rule(
        victim=st.integers(min_value=0, max_value=N_MOBILE - 1),
        state=st.integers(min_value=0, max_value=BOUND),
    )
    def corrupt_mobile(self, victim, state):
        """A transient fault on one mobile agent."""
        self.config = self.config.replace({victim: state})
        self.solved_snapshots.clear()  # faults void old certificates

    @rule()
    def snapshot_if_solved(self):
        """Record a convergence certificate when one holds."""
        if self.problem.is_solved(self.protocol, self.config):
            self.solved_snapshots.append(self.config)

    @invariant()
    def states_stay_in_space(self):
        if self.config is None:
            return
        for agent in self.population.mobile_agents:
            assert (
                self.config.state_of(agent)
                in self.protocol.mobile_state_space()
            )
        assert (
            self.config.leader_state in self.protocol.leader_state_space()
        )

    @invariant()
    def population_shape_is_constant(self):
        if self.config is None:
            return
        assert len(self.config) == self.population.size
        assert self.config.leader_index == self.population.leader

    @invariant()
    def certificates_are_real(self):
        """Once certified solved (and absent faults since), the
        configuration cannot have regressed: certified snapshots must
        still satisfy naming against the current mobile states."""
        if self.config is None or not self.solved_snapshots:
            return
        # No fault occurred since the snapshot (faults clear the list),
        # and solved configurations are silent - so nothing changed.
        assert self.config == self.solved_snapshots[-1]


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestEngineMachine = EngineMachine.TestCase
