"""Property-based cross-validation of the verification machinery.

Random tiny protocols are generated with hypothesis and the three
independent implementations are pitted against each other:

* the labelled global-fairness checker vs. the quotient checker - they
  were derived separately (vector SCCs vs. multiset SCCs) and must agree;
* the weak-fairness checker vs. the counterexample synthesizer - whenever
  the checker says "fails", the synthesizer must produce a schedule that
  replays correctly, and whenever it says "solves", synthesis must fail.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counterexample import (
    synthesize_weak_counterexample,
    verify_counterexample,
)
from repro.analysis.model_checker import check_naming_global
from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError


@st.composite
def random_protocols(draw, num_states=2):
    """A random deterministic leaderless protocol on ``num_states``."""
    states = list(range(num_states))
    table = {}
    for p in states:
        for q in states:
            out = (
                draw(st.sampled_from(states)),
                draw(st.sampled_from(states)),
            )
            if out != (p, q):
                table[(p, q)] = out
    return TableProtocol(table, states, display_name="fuzz")


class TestLabelledVsQuotient:
    @settings(max_examples=150, deadline=None)
    @given(random_protocols(), st.integers(min_value=2, max_value=3))
    def test_global_checkers_agree(self, protocol, n):
        population = Population(n)
        labelled = check_naming_global(
            protocol,
            population,
            arbitrary_initial_configurations(protocol, population),
        )
        quotient = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, n)
        )
        assert labelled.solves == quotient.solves

    @settings(max_examples=50, deadline=None)
    @given(random_protocols(num_states=3))
    def test_three_state_agreement(self, protocol):
        population = Population(2)
        labelled = check_naming_global(
            protocol,
            population,
            arbitrary_initial_configurations(protocol, population),
        )
        quotient = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, 2)
        )
        assert labelled.solves == quotient.solves


class TestWeakCheckerVsSynthesizer:
    @settings(max_examples=100, deadline=None)
    @given(random_protocols(), st.integers(min_value=2, max_value=3))
    def test_verdict_matches_synthesizability(self, protocol, n):
        population = Population(n)
        initial = list(
            arbitrary_initial_configurations(protocol, population)
        )
        verdict = check_naming_weak(protocol, population, initial)
        if verdict.solves:
            try:
                synthesize_weak_counterexample(
                    protocol, population, initial
                )
            except VerificationError:
                return  # expected: no counterexample exists
            raise AssertionError(
                "synthesizer found a counterexample the checker missed"
            )
        cex = synthesize_weak_counterexample(protocol, population, initial)
        assert verify_counterexample(protocol, population, cex), (
            protocol.table,
            cex,
        )


class TestFairnessHierarchy:
    @settings(max_examples=100, deadline=None)
    @given(random_protocols(), st.integers(min_value=2, max_value=3))
    def test_weak_solvability_implies_global_solvability(self, protocol, n):
        """Every globally fair execution that keeps meeting all pairs is
        weakly fair-like on finite graphs: concretely, a sink SCC that
        would break global fairness also yields a weak counterexample.
        The contrapositive - weak-solvers pass the global check - is a
        theorem on finite instances and a strong sanity invariant."""
        population = Population(n)
        initial = list(
            arbitrary_initial_configurations(protocol, population)
        )
        weak = check_naming_weak(protocol, population, initial)
        if weak.solves:
            global_verdict = check_naming_global(
                protocol, population, initial
            )
            assert global_verdict.solves
