"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# Property tests drive whole simulations; wall-clock deadlines and
# too-slow warnings only add flakiness on loaded machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import PopulationProtocol


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def random_configuration(
    protocol: PopulationProtocol,
    population: Population,
    rng: random.Random,
    leader_state: object | None = None,
) -> Configuration:
    """A uniformly random legal configuration for ``protocol``."""
    mobile_space = sorted(protocol.mobile_state_space())
    mobiles = tuple(
        rng.choice(mobile_space) for _ in range(population.n_mobile)
    )
    if population.has_leader:
        if leader_state is None:
            leader_state = rng.choice(
                sorted(protocol.leader_state_space(), key=repr)
            )
        return Configuration.from_states(population, mobiles, leader_state)
    return Configuration.from_states(population, mobiles)


def assert_distinct_names(names: tuple) -> None:
    assert len(set(names)) == len(names), f"homonyms in {names}"
