"""The lint sweep over Table 1 and its CLI: the acceptance gate is that
``repro lint --strict`` exits 0 on everything the registry builds."""

import json

import pytest

from repro.core.spec import all_specs
from repro.lint import RULES, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.diagnostics import Diagnostic, LintReport, Severity


class TestRunLint:
    def test_full_sweep_is_clean(self):
        report = run_lint(bounds=(3, 5, 8))
        assert report.errors == []
        assert report.warnings == []
        assert report.exit_code(strict=True) == 0
        # 24 specs x 3 bounds, including the infeasible cells.
        assert report.cells_checked == 72
        assert report.protocols_checked > 0
        assert set(report.rules_run) == set(RULES)

    def test_no_budget_skips_at_default_bounds(self):
        # The symbolic checker retired the budget skips: at the default
        # bounds every analysis runs to completion (symbolic first,
        # explicit fallback), so the sweep reports zero skipped cells.
        report = run_lint(bounds=(3, 5, 8))
        assert report.budget_skips == []

    def test_tight_budgets_surface_structured_skips(self):
        # Artificially strangled budgets must still degrade gracefully:
        # the skipped analyses surface as INFO diagnostics carrying the
        # machine-readable name of the exhausted budget.
        from repro.lint.rules import LintBudgets

        report = run_lint(
            bounds=(8,),
            budgets=LintBudgets(max_closure_states=2, max_reach_roots=1),
        )
        assert report.budget_skips
        for diag in report.budget_skips:
            assert diag.severity is Severity.INFO
            assert diag.skipped_budget in (
                "max_closure_states",
                "max_reach_roots",
                "max_reach_nodes",
            )
            assert "[budget: " in diag.render()

    def test_protocol_scope_rules_deduplicated(self):
        # The self-stabilizing protocol serves several cells; its
        # protocol-scope findings must not repeat per cell.
        report = run_lint(bounds=(4,), rules=["silent-configs-named"])
        keys = [
            (d.protocol, d.bound, d.rule) for d in report.diagnostics
        ]
        assert len(keys) == len(set(keys))

    def test_spec_subset(self):
        specs = [next(iter(all_specs()))]
        report = run_lint(bounds=(3,), specs=specs)
        assert report.cells_checked == 1


class TestReportRendering:
    def make_report(self):
        return LintReport(
            diagnostics=[
                Diagnostic(
                    rule="closure",
                    severity=Severity.ERROR,
                    message="boom",
                    protocol="p",
                    bound=3,
                    witness=["w"],
                ),
                Diagnostic(
                    rule="reachable-states",
                    severity=Severity.INFO,
                    message="skipped: too big",
                    protocol="p",
                ),
            ],
            cells_checked=1,
            protocols_checked=1,
            bounds=(3,),
            rules_run=("closure",),
        )

    def test_text_rendering_orders_by_severity(self):
        text = self.make_report().render_text()
        assert text.index("error:") < text.index("info:")
        assert "witness" in text
        assert "1 error(s)" in text

    def test_info_can_be_hidden(self):
        text = self.make_report().render_text(show_info=False)
        assert "skipped" not in text

    def test_json_roundtrips(self):
        data = json.loads(self.make_report().render_json())
        assert data["cells_checked"] == 1
        assert data["diagnostics"][0]["severity"] == "error"

    def test_exit_codes(self):
        report = self.make_report()
        assert report.exit_code() == 1
        warning_only = LintReport(
            diagnostics=[
                Diagnostic(
                    rule="dead-table-entries",
                    severity=Severity.WARNING,
                    message="dead",
                    protocol="p",
                )
            ]
        )
        assert warning_only.exit_code() == 0
        assert warning_only.exit_code(strict=True) == 1
        assert LintReport().exit_code(strict=True) == 0


class TestLintCli:
    def test_strict_sweep_exits_zero(self, capsys):
        assert lint_main(["--strict", "--bounds", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert lint_main(["--bounds", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bounds"] == [3]

    def test_rule_selection_and_unknown_rule(self, capsys):
        assert lint_main(["--bounds", "3", "--rules", "symmetry"]) == 0
        assert lint_main(["--rules", "bogus"]) == 2
        assert "unknown lint rule" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_fail_on_skips_gate_passes_at_defaults(self, capsys):
        assert lint_main(["--strict", "--bounds", "3", "8",
                          "--fail-on-skips"]) == 0

    def test_fail_on_skips_gate_fails_when_strangled(self, capsys):
        code = lint_main(
            ["--bounds", "8", "--max-closure-states", "2",
             "--fail-on-skips"]
        )
        assert code == 1
        assert "--fail-on-skips" in capsys.readouterr().out

    def test_dispatch_through_main_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--bounds", "3"]) == 0
        assert "lint:" in capsys.readouterr().out


class TestRegistryConformance:
    def test_infeasible_cells_counted_without_errors(self):
        # The sweep exercises the infeasible (symmetric, weak, no
        # leader) cells; the registry refuses them, so no diagnostics.
        report = run_lint(bounds=(3,), rules=["state-budget"])
        assert [d for d in report.diagnostics if d.rule == "registry"] == []
        assert report.cells_checked == 24
