"""Each lint rule catches its seeded bug and stays quiet on clean
protocols — the acceptance criterion for the static half of the lint
engine."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
)
from repro.engine.protocol import TableProtocol
from repro.lint import LintBudgets, Severity, lint_protocol


def by_rule(report, rule_id):
    return [d for d in report.diagnostics if d.rule == rule_id]


class UniformTableProtocol(TableProtocol):
    """A table protocol with a designated initial mobile state.

    Without one, arbitrary initialization makes every state "initial"
    and nothing is unreachable — so reachability-based rules need this.
    """

    def __init__(self, *args, initial=0, **kwargs):
        super().__init__(*args, **kwargs)
        self._initial = initial

    def initial_mobile_state(self):
        return self._initial


WEAK_ASYM = ModelSpec(
    Fairness.WEAK, Symmetry.ASYMMETRIC, LeaderKind.NONE, MobileInit.ARBITRARY
)
WEAK_SYM_LEADER = ModelSpec(
    Fairness.WEAK,
    Symmetry.SYMMETRIC,
    LeaderKind.NON_INITIALIZED,
    MobileInit.ARBITRARY,
)


class TestClosureRule:
    def test_role_leak_reported_with_witness(self):
        leaky = TableProtocol(
            {(0, 1): (0, 7)},  # 7 is not a declared state
            mobile_states=[0, 1],
            display_name="leaky",
        )
        report = lint_protocol(leaky, rules=["closure"])
        (diag,) = by_rule(report, "closure")
        assert diag.severity is Severity.ERROR
        assert diag.witness[0]["escaped"] == "7"
        assert report.exit_code() == 1

    def test_clean_protocol_quiet(self):
        report = lint_protocol(
            AsymmetricNamingProtocol(4), rules=["closure"]
        )
        assert report.diagnostics == []
        assert report.exit_code() == 0


class TestSymmetryRule:
    def test_asymmetric_under_symmetric_claim(self):
        fake = TableProtocol(
            {(0, 1): (1, 0)},
            mobile_states=[0, 1],
            symmetric=True,
            display_name="fake-symmetric",
        )
        report = lint_protocol(fake, rules=["symmetry"])
        (diag,) = by_rule(report, "symmetry")
        assert diag.severity is Severity.ERROR
        assert diag.witness[0]["pair"] == ["0", "1"]

    def test_symmetric_under_asymmetric_claim_is_fidelity_bug(self):
        secretly = TableProtocol(
            {(0, 1): (1, 1), (1, 0): (1, 1)},
            mobile_states=[0, 1],
            symmetric=False,
            display_name="secretly-symmetric",
        )
        report = lint_protocol(secretly, rules=["symmetry"])
        (diag,) = by_rule(report, "symmetry")
        assert diag.severity is Severity.ERROR
        assert "symmetric column" in diag.message

    def test_both_registered_protocols_clean(self):
        for protocol in (
            AsymmetricNamingProtocol(4),
            SelfStabilizingNamingProtocol(4),
        ):
            report = lint_protocol(protocol, rules=["symmetry"])
            assert report.diagnostics == []


class TestStateBudgetRule:
    def test_over_budget_is_error(self):
        report = lint_protocol(
            AsymmetricNamingProtocol(4),
            spec=WEAK_ASYM,
            bound=3,
            rules=["state-budget"],
        )
        (diag,) = by_rule(report, "state-budget")
        assert diag.severity is Severity.ERROR
        assert diag.witness == {"declared": 4, "optimal": 3}

    def test_under_budget_is_error_too(self):
        report = lint_protocol(
            AsymmetricNamingProtocol(3),
            spec=WEAK_ASYM,
            bound=4,
            rules=["state-budget"],
        )
        (diag,) = by_rule(report, "state-budget")
        assert "lower bound" in diag.message

    def test_exact_budget_quiet_and_spec_free_lint_skips(self):
        on_budget = lint_protocol(
            AsymmetricNamingProtocol(4),
            spec=WEAK_ASYM,
            bound=4,
            rules=["state-budget"],
        )
        assert on_budget.diagnostics == []
        no_spec = lint_protocol(
            AsymmetricNamingProtocol(4), rules=["state-budget"]
        )
        assert no_spec.diagnostics == []


class TestLeaderDisciplineRule:
    def test_leaderless_protocol_under_leader_spec_is_legal(self):
        # The paper reuses leaderless protocols when the leader buys
        # nothing (e.g. initialized leader + weak fairness + arbitrary
        # init is served by the self-stabilizing protocol).
        report = lint_protocol(
            SelfStabilizingNamingProtocol(4),
            spec=WEAK_SYM_LEADER,
            bound=4,
            rules=["leader-discipline"],
        )
        assert report.diagnostics == []

    def test_leader_required_under_leaderless_spec_is_error(self):
        needs_leader = TableProtocol(
            {},
            mobile_states=[0, 1],
            leader_states=["L"],
            symmetric=True,
            display_name="needs-leader",
        )
        report = lint_protocol(
            needs_leader,
            spec=ModelSpec(
                Fairness.GLOBAL,
                Symmetry.SYMMETRIC,
                LeaderKind.NONE,
                MobileInit.ARBITRARY,
            ),
            bound=2,
            rules=["leader-discipline"],
        )
        diags = by_rule(report, "leader-discipline")
        assert any("no leader" in d.message for d in diags)
        assert report.exit_code() == 1

    def test_asymmetric_protocol_under_symmetric_spec_is_error(self):
        report = lint_protocol(
            AsymmetricNamingProtocol(4),
            spec=ModelSpec(
                Fairness.WEAK,
                Symmetry.SYMMETRIC,
                LeaderKind.NON_INITIALIZED,
                MobileInit.ARBITRARY,
            ),
            bound=4,
            rules=["leader-discipline"],
        )
        diags = by_rule(report, "leader-discipline")
        assert any("symmetric" in d.message for d in diags)


class TestReachableStatesRule:
    def test_unreachable_mobile_state_warned(self):
        # All agents start at 0 and no transition ever produces 2.
        wasteful = UniformTableProtocol(
            {(0, 0): (0, 1)},
            mobile_states=[0, 1, 2],
            display_name="wasteful",
        )
        report = lint_protocol(wasteful, rules=["reachable-states"])
        (diag,) = by_rule(report, "reachable-states")
        assert diag.severity is Severity.WARNING
        assert "2" in diag.witness
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_budget_cap_reports_info_not_silence(self):
        report = lint_protocol(
            AsymmetricNamingProtocol(4),
            rules=["reachable-states"],
            budgets=LintBudgets(max_closure_states=2),
        )
        (diag,) = by_rule(report, "reachable-states")
        assert diag.severity is Severity.INFO
        assert "skipped" in diag.message
        assert report.exit_code(strict=True) == 0


class TestDeadTableEntriesRule:
    def test_dead_entries_classified(self):
        dead = TableProtocol(
            {
                (0, 1): (1, 1),
                (2, 2): (2, 2),  # identity: null by definition
                (5, 0): (0, 0),  # key outside the space
            },
            mobile_states=[0, 1, 2],
            display_name="dead-entries",
        )
        report = lint_protocol(dead, rules=["dead-table-entries"])
        (diag,) = by_rule(report, "dead-table-entries")
        reasons = {w["reason"] for w in diag.witness}
        assert any("identity" in r for r in reasons)
        assert any("outside" in r for r in reasons)

    def test_unreachable_key_detected(self):
        # All agents start at 0; state 2 never arises, so the (2, 0)
        # entry can never fire.
        unreachable_key = UniformTableProtocol(
            {(0, 0): (0, 1), (2, 0): (0, 0)},
            mobile_states=[0, 1, 2],
            display_name="unreachable-key",
        )
        report = lint_protocol(
            unreachable_key, rules=["dead-table-entries"]
        )
        (diag,) = by_rule(report, "dead-table-entries")
        assert any("unreachable" in w["reason"] for w in diag.witness)

    def test_non_table_protocols_skip(self):
        report = lint_protocol(
            SelfStabilizingNamingProtocol(4), rules=["dead-table-entries"]
        )
        assert report.diagnostics == []


class TestSilentConfigsNamedRule:
    def test_colliding_sink_is_error(self):
        # All interactions are null, so every initial configuration is
        # silent — including the homonymous ones.
        frozen = TableProtocol(
            {},
            mobile_states=[0, 1, 2],
            display_name="frozen",
        )
        report = lint_protocol(frozen, rules=["silent-configs-named"])
        (diag,) = by_rule(report, "silent-configs-named")
        assert diag.severity is Severity.ERROR
        assert any(len(set(names)) < len(names) for names in diag.witness)

    def test_real_protocol_clean(self):
        report = lint_protocol(
            SelfStabilizingNamingProtocol(3), rules=["silent-configs-named"]
        )
        assert by_rule(report, "silent-configs-named") == []

    def test_exploration_budget_reports_info(self):
        report = lint_protocol(
            SelfStabilizingNamingProtocol(4),
            rules=["silent-configs-named"],
            budgets=LintBudgets(max_reach_roots=1),
        )
        (diag,) = by_rule(report, "silent-configs-named")
        assert diag.severity is Severity.INFO


class TestSinkDisciplineRule:
    def test_self_stabilizing_protocol_satisfies_prop6(self):
        report = lint_protocol(
            SelfStabilizingNamingProtocol(4),
            spec=ModelSpec(
                Fairness.WEAK,
                Symmetry.SYMMETRIC,
                LeaderKind.NON_INITIALIZED,
                MobileInit.ARBITRARY,
            ),
            bound=4,
            rules=["sink-discipline"],
        )
        assert report.diagnostics == []

    def test_two_sink_protocol_violates_prop6(self):
        # Symmetric, but 0-0 and 1-1 pairs both self-loop silently:
        # two sinks, so Proposition 6's unique-sink argument fails.
        two_sinks = TableProtocol(
            {(0, 2): (0, 0), (2, 0): (0, 0), (1, 2): (1, 1), (2, 1): (1, 1)},
            mobile_states=[0, 1, 2],
            symmetric=True,
            display_name="two-sinks",
        )
        report = lint_protocol(
            two_sinks,
            spec=ModelSpec(
                Fairness.WEAK,
                Symmetry.SYMMETRIC,
                LeaderKind.NON_INITIALIZED,
                MobileInit.ARBITRARY,
            ),
            bound=3,
            rules=["sink-discipline"],
        )
        diags = by_rule(report, "sink-discipline")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR

    def test_out_of_premises_specs_skip(self):
        report = lint_protocol(
            SelfStabilizingNamingProtocol(4),
            spec=ModelSpec(
                Fairness.GLOBAL,
                Symmetry.SYMMETRIC,
                LeaderKind.NON_INITIALIZED,
                MobileInit.ARBITRARY,
            ),
            bound=4,
            rules=["sink-discipline"],
        )
        assert report.diagnostics == []


class TestRuleSelection:
    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_protocol(AsymmetricNamingProtocol(3), rules=["bogus"])
