"""Tests for fault injection."""

import pytest

from repro.core.selfstab_naming import (
    SelfStabLeaderState,
    SelfStabilizingNamingProtocol,
)
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.errors import ReproError
from repro.faults.injection import (
    FaultEvent,
    FaultPlan,
    corrupt_agents,
    corrupt_all_mobile_to,
    corrupt_leader_to,
    corrupt_random_mobile,
    scramble_everything,
)
from repro.schedulers.random_pair import RandomPairScheduler

LEADER = SelfStabLeaderState(0, 0)


def leadered_config(mobiles):
    pop = Population(len(mobiles), has_leader=True)
    return pop, Configuration.from_states(pop, mobiles, LEADER)


class TestCorruptions:
    def test_corrupt_agents_sets_states(self):
        _, config = leadered_config((1, 2, 3))
        corrupted = corrupt_agents([0, 2], [9, 8])(config)
        assert corrupted.mobile_states == (9, 2, 8)

    def test_corrupt_agents_length_mismatch(self):
        with pytest.raises(ReproError):
            corrupt_agents([0, 1], [5])

    def test_corrupt_all_mobile(self):
        pop, config = leadered_config((1, 2, 3))
        corrupted = corrupt_all_mobile_to(pop, 0)(config)
        assert corrupted.mobile_states == (0, 0, 0)
        assert corrupted.leader_state == LEADER  # leader untouched

    def test_corrupt_random_mobile_count_and_legality(self):
        pop, config = leadered_config((1, 2, 3, 4))
        protocol = SelfStabilizingNamingProtocol(4)
        corrupted = corrupt_random_mobile(pop, protocol, 2, seed=1)(config)
        changed = sum(
            1
            for a, b in zip(config.mobile_states, corrupted.mobile_states)
            if a != b
        )
        assert changed <= 2
        assert set(corrupted.mobile_states) <= protocol.mobile_state_space()

    def test_corrupt_random_is_deterministic_per_seed(self):
        pop, config = leadered_config((1, 2, 3, 4))
        protocol = SelfStabilizingNamingProtocol(4)
        a = corrupt_random_mobile(pop, protocol, 3, seed=5)(config)
        b = corrupt_random_mobile(pop, protocol, 3, seed=5)(config)
        assert a == b

    def test_corrupt_leader(self):
        pop, config = leadered_config((1, 2))
        bogus = SelfStabLeaderState(9, 9)
        corrupted = corrupt_leader_to(pop, bogus)(config)
        assert corrupted.leader_state == bogus
        assert corrupted.mobile_states == (1, 2)

    def test_corrupt_leader_requires_leader(self):
        pop = Population(2)
        with pytest.raises(ReproError):
            corrupt_leader_to(pop, LEADER)

    def test_scramble_everything(self):
        pop, config = leadered_config((1, 2, 3))
        protocol = SelfStabilizingNamingProtocol(3)
        corrupted = scramble_everything(pop, protocol, seed=3)(config)
        assert set(corrupted.mobile_states) <= protocol.mobile_state_space()
        assert corrupted.leader_state in protocol.leader_state_space()


class TestFaultPlan:
    def test_events_fire_at_their_interaction(self):
        pop, config = leadered_config((1, 2))
        plan = FaultPlan()
        plan.add(
            FaultEvent(3, corrupt_all_mobile_to(pop, 0), label="wipe")
        )
        assert plan.hook(2, config) is None
        result = plan.hook(3, config)
        assert result is not None
        assert result.mobile_states == (0, 0)
        assert plan.applied == ["wipe"]

    def test_multiple_events_same_instant_compose(self):
        pop, config = leadered_config((1, 2))
        plan = FaultPlan()
        plan.add(FaultEvent(0, corrupt_all_mobile_to(pop, 0), "a"))
        plan.add(
            FaultEvent(0, corrupt_leader_to(pop, SelfStabLeaderState(7, 7)), "b")
        )
        result = plan.hook(0, config)
        assert result.mobile_states == (0, 0)
        assert result.leader_state == SelfStabLeaderState(7, 7)
        assert plan.applied == ["a", "b"]

    def test_events_sorted_by_time(self):
        pop, _ = leadered_config((1, 2))
        plan = FaultPlan()
        plan.add(FaultEvent(9, corrupt_all_mobile_to(pop, 0), "late"))
        plan.add(FaultEvent(1, corrupt_all_mobile_to(pop, 0), "early"))
        assert [e.label for e in plan.events] == ["early", "late"]

    def test_plan_is_callable(self):
        pop, config = leadered_config((1, 2))
        plan = FaultPlan()
        assert plan(0, config) is None


class TestEndToEndRecovery:
    def test_self_stabilizing_protocol_recovers_from_plan(self):
        bound = 5
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(5, has_leader=True)
        scheduler = RandomPairScheduler(pop, seed=1)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        plan = FaultPlan()
        plan.add(FaultEvent(1, corrupt_all_mobile_to(pop, 2), "collapse"))
        initial = Configuration.uniform(pop, 0, LEADER)
        result = simulator.run(
            initial, max_interactions=2_000_000, fault_hook=plan.hook
        )
        assert result.faults_injected == 1
        assert result.converged
        assert result.convergence_interaction > 1
        assert len(set(result.names())) == 5
