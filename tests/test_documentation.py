"""Documentation meta-tests: every public item carries a docstring, and
the repository's promised documents exist."""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a docstring"

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: undocumented public items: {undocumented}"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_methods_documented(self, module):
        undocumented = []
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{cls_name}.{name}")
        assert not undocumented, (
            f"{module.__name__}: undocumented methods: {undocumented}"
        )


class TestDocuments:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/paper_map.md",
            "docs/architecture.md",
        ],
    )
    def test_document_exists_and_is_substantial(self, name):
        path = REPO_ROOT / name
        assert path.exists(), name
        assert len(path.read_text(encoding="utf-8")) > 1000, name

    def test_readme_references_companion_documents(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "DESIGN.md" in text
        assert "EXPERIMENTS.md" in text

    def test_experiments_covers_every_experiment_id(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for exp in ("table1", "exp-s1", "exp-s2", "exp-s3", "exp-s4",
                    "exp-s5", "exp-s6", "exp-s7", "exp-s8"):
            assert exp in text, exp
